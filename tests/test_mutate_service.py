"""HTTP contract of the live-dataset serving stack (PR 9).

One real server over a *live* (mutable) dataset, exercising the wire
protocol end to end:

* version-stamped ``/select`` and ``/zoom`` responses (``version`` +
  ``selected_global``) for live datasets, absent for immutable ones;
* ``POST /mutate`` — insert/delete batches, selection repair with
  out-of-band verification, idempotent replay, error mapping;
* ``/zoom`` adapting a client-held ``previous`` selection instead of
  recomputing, with stale-version rejection on live datasets;
* adjacency-cache migration across versions (``engine="grid"`` — the
  grid engine is the one that consults the shared adjacency cache).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import verify_disc
from repro.datasets import uniform_dataset
from repro.service import (
    DatasetRegistry,
    ServiceClient,
    ServiceState,
    SharedCacheManager,
    start_in_thread,
)

N = 500
SEED = 11
RADIUS = 0.12
ENGINE = {"name": "grid", "options": {"cell_size": RADIUS}}


@pytest.fixture()
def service():
    registry = DatasetRegistry()
    base = uniform_dataset(n=N, seed=SEED)
    registry.register_array("frozen", base.points, base.metric)
    registry.register_array("livearr", base.points, base.metric)
    registry.promote_live("livearr")
    state = ServiceState(
        registry, cache=SharedCacheManager(max_entries=16), workers=2
    )
    with start_in_thread(state) as running:
        yield running


@pytest.fixture()
def client(service):
    with ServiceClient(service.host, service.port) as c:
        yield c


def _verify_against_live(service, selected_global, radius):
    """Definition 1 check, out of band, over the live dataset's current
    alive window (selected ids arrive in global id space)."""
    live = service.state.registry.get_live("livearr")
    handle = live.snapshot_handle()
    alive_ids = handle.spec["alive_ids"]
    local_of = {int(g): i for i, g in enumerate(alive_ids)}
    local = [local_of[int(g)] for g in selected_global]
    report = verify_disc(handle.dataset.points, handle.dataset.metric, local, radius)
    assert report.is_disc_diverse, str(report)


class TestVersionStamping:
    def test_live_select_carries_version_and_global_ids(self, client):
        response = client.select("livearr", RADIUS, engine=ENGINE)
        assert response["version"] == 0
        # At version 0 nothing is deleted: global ids == local ids.
        assert response["selected_global"] == response["result"]["selected"]

    def test_immutable_responses_are_unstamped(self, client):
        response = client.select("frozen", RADIUS, engine=ENGINE)
        assert "version" not in response
        assert "selected_global" not in response
        zoomed = client.zoom("frozen", RADIUS, RADIUS / 2, engine=ENGINE)
        assert "version" not in zoomed

    def test_version_advances_with_mutations(self, client, rng):
        client.mutate("livearr", inserts=rng.random((3, 2)).tolist())
        response = client.select("livearr", RADIUS, engine=ENGINE)
        assert response["version"] == 1


class TestMutateEndpoint:
    def test_insert_delete_batch(self, client, rng):
        response = client.mutate(
            "livearr", inserts=rng.random((5, 2)).tolist(), deletes=[0, 1]
        )
        assert response["dataset"] == "livearr"
        assert response["version"] == 1
        assert response["dataset_id"] == "livearr@v1"
        assert response["inserted"] == [N, N + 1, N + 2, N + 3, N + 4]
        assert response["deleted"] == [0, 1]
        assert response["n_alive"] == N + 3
        assert response["n_total"] == N + 5

    def test_mutate_with_repair_and_verify(self, client, service, rng):
        base = client.select("livearr", RADIUS, engine=ENGINE)
        previous = base["selected_global"]
        victims = [int(i) for i in rng.choice(N, size=40, replace=False)]
        response = client.mutate(
            "livearr",
            inserts=rng.random((40, 2)).tolist(),
            deletes=victims,
            repair={"radius": RADIUS, "previous": previous, "verify": True},
        )
        repair = response["repair"]
        assert repair["verified"] is True
        assert repair["radius"] == RADIUS
        assert sorted(repair["kept"] + repair["added"]) == repair["selected"]
        assert 0.0 <= repair["jaccard_previous"] <= 1.0
        _verify_against_live(service, repair["selected"], RADIUS)

    def test_error_mapping(self, client):
        # Immutable dataset -> 400, unknown -> 404, bad batches -> 400.
        assert client.request("POST", "/mutate", {"dataset": "frozen", "deletes": [0]})[0] == 400
        assert client.request("POST", "/mutate", {"dataset": "nope", "deletes": [0]})[0] == 404
        assert client.request("POST", "/mutate", {"dataset": "livearr"})[0] == 400
        assert client.request("POST", "/mutate", {"dataset": "livearr", "deletes": [0, 0]})[0] == 400
        assert client.request("POST", "/mutate", {"dataset": "livearr", "deletes": [N + 99]})[0] == 400
        assert client.request(
            "POST", "/mutate", {"dataset": "livearr", "deletes": [0], "bogus": 1}
        )[0] == 400
        assert client.request(
            "POST",
            "/mutate",
            {"dataset": "livearr", "deletes": [0], "repair": {"previous": [1]}},
        )[0] == 400  # repair requires a radius
        assert client.request("GET", "/mutate")[0] == 405

    def test_idempotency_key_replays_one_batch(self, client):
        payload = {
            "dataset": "livearr",
            "deletes": [7],
            "idempotency_key": "batch-7",
        }
        status, first = client.request("POST", "/mutate", payload)
        assert status == 200
        status, replay = client.request("POST", "/mutate", payload)
        assert status == 200
        # The retry joined the original flight: same version, applied once.
        assert replay["version"] == first["version"] == 1
        assert replay["coalesced"] is True

    def test_distinct_batches_never_coalesce(self, client, rng):
        a = client.mutate("livearr", inserts=rng.random((1, 2)).tolist())
        b = client.mutate("livearr", inserts=rng.random((1, 2)).tolist())
        assert (a["version"], b["version"]) == (1, 2)

    def test_stats_count_mutations(self, client, rng):
        client.mutate("livearr", inserts=rng.random((1, 2)).tolist())
        stats = client.stats()
        assert stats["mutations_applied"] == 1


class TestZoomPrevious:
    def test_zoom_adapts_client_previous(self, client, service):
        base = client.select("livearr", RADIUS, engine=ENGINE)
        previous = {
            "selected": base["result"]["selected"],
            "radius": RADIUS,
            "version": base["version"],
        }
        zoomed = client.zoom(
            "livearr", RADIUS, RADIUS / 2, engine=ENGINE, previous=previous
        )
        assert zoomed["adapted_previous"] is True
        assert set(base["result"]["selected"]) <= set(zoomed["result"]["selected"])
        _verify_against_live(service, zoomed["selected_global"], RADIUS / 2)

    def test_zoom_previous_on_immutable_dataset(self, client):
        base = client.select("frozen", RADIUS, engine=ENGINE)
        fresh = client.zoom("frozen", RADIUS, RADIUS * 2, engine=ENGINE)
        adapted = client.zoom(
            "frozen",
            RADIUS,
            RADIUS * 2,
            engine=ENGINE,
            previous={"selected": base["result"]["selected"], "radius": RADIUS},
        )
        assert adapted["adapted_previous"] is True
        # Zooming out from the same base selection lands on the same
        # coarser selection as the recompute-from-scratch path.
        assert adapted["result"]["selected"] == fresh["result"]["selected"]

    def test_stale_version_rejected(self, client, rng):
        base = client.select("livearr", RADIUS, engine=ENGINE)
        client.mutate("livearr", inserts=rng.random((1, 2)).tolist())
        status, body = client.request(
            "POST",
            "/zoom",
            {
                "dataset": "livearr",
                "radius": RADIUS,
                "to": RADIUS / 2,
                "engine": ENGINE,
                "previous": {
                    "selected": base["result"]["selected"],
                    "version": base["version"],
                },
            },
        )
        assert status == 400
        assert "stale" in body["error"]["message"]

    def test_malformed_previous_rejected(self, client):
        for previous in (
            {"selected": [0, 0]},  # duplicates
            {"selected": [-1]},  # out of range
            {"selected": [0], "bogus": 1},  # unknown field
            {"selected": [0], "radius": RADIUS * 3},  # radius disagreement
        ):
            status, _ = client.request(
                "POST",
                "/zoom",
                {
                    "dataset": "livearr",
                    "radius": RADIUS,
                    "to": RADIUS / 2,
                    "previous": previous,
                },
            )
            assert status == 400, previous


class TestCacheMigration:
    def test_mutation_migrates_touched_buckets(self, client, service, rng):
        cache = service.state.cache
        client.select("livearr", RADIUS, engine=ENGINE)
        builds_before = cache.builds
        response = client.mutate(
            "livearr", inserts=rng.random((4, 2)).tolist(), deletes=[3]
        )
        assert response["migrated_buckets"] == 1
        assert cache.migrations == 1
        client.select("livearr", RADIUS, engine=ENGINE)
        # The post-mutation select hits the migrated snapshot: no new
        # build (incremental or otherwise) is recorded.
        assert cache.builds == builds_before

    def test_untouched_radii_not_migrated(self, client, rng):
        response = client.mutate(
            "livearr", inserts=rng.random((1, 2)).tolist()
        )
        assert response["migrated_buckets"] == 0

"""Concurrent sessions over one SharedCacheManager: parity + single build.

The cross-session cache's contract has two halves:

1. **Correctness** — selections computed through a shared cache are
   byte-identical to serial, private-cache execution (a cache hit feeds
   the same immutable adjacency a fresh build would).
2. **Economy** — concurrent sessions asking for the same radius never
   build the same adjacency twice: the first miss builds, the rest
   coalesce onto it (``builds == unique radii``).

This is the threaded analogue of ``benchmarks/test_session_cache.py``
and the in-process half of what ``tests/test_service.py`` checks over
HTTP.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import DiscSession, disc_select
from repro.datasets import clustered_dataset
from repro.service import SharedCacheManager

N = 3000
SEED = 3
CELL = 0.05
#: A repeated-radius zoom trace (multipliers of CELL).
RADII = [0.05, 0.025, 0.05, 0.075, 0.025, 0.05]
CLIENTS = 4


@pytest.fixture(scope="module")
def data():
    return clustered_dataset(n=N, seed=SEED)


@pytest.fixture(scope="module")
def serial_reference(data):
    """Fresh one-shot selections per radius — the byte-parity oracle."""
    return {
        radius: disc_select(
            data, radius, engine="grid", engine_options={"cell_size": CELL}
        ).selected
        for radius in set(RADII)
    }


def test_concurrent_sessions_share_one_build_per_radius(data, serial_reference):
    manager = SharedCacheManager()
    sessions = [
        DiscSession(
            data,
            engine="grid",
            cell_size=CELL,
            adjacency_cache=manager.view("clustered-parity", data.metric),
        )
        for _ in range(CLIENTS)
    ]
    barrier = threading.Barrier(CLIENTS)
    outputs = [[] for _ in range(CLIENTS)]
    errors = []

    def worker(session, out):
        try:
            for radius in RADII:
                barrier.wait()  # all sessions hit each radius together
                out.append((radius, session.select(radius).selected))
        except BaseException as exc:  # pragma: no cover - surfacing
            errors.append(exc)
            barrier.abort()

    threads = [
        threading.Thread(target=worker, args=(session, out))
        for session, out in zip(sessions, outputs)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors

    # 1. Byte-identical to serial execution, for every session & step.
    for out in outputs:
        assert len(out) == len(RADII)
        for radius, selected in out:
            assert selected == serial_reference[radius], radius

    # 2. Each adjacency was built exactly once across all sessions —
    #    concurrent first-misses coalesced instead of double-building.
    assert manager.builds == len(set(RADII))
    # Everyone else was served from the shared store.
    assert manager.hits + manager.coalesced_builds > 0
    info = manager.cache_info()
    assert info["entries"] == len(set(RADII))


def test_session_attach_reports_shared_cache_info(data):
    manager = SharedCacheManager()
    session = DiscSession(
        data,
        engine="grid",
        cell_size=CELL,
        adjacency_cache=manager.view("clustered-info", data.metric),
    )
    session.select(0.05)
    session.select(0.05)
    info = session.cache_info()
    assert info["dataset"] == "clustered-info"
    assert info["hits"] >= 1
    assert info["shared"]["builds"] == manager.builds
    # And the same radii replayed on a *second* session reuse the
    # first session's adjacency outright: no new build.
    builds_before = manager.builds
    other = DiscSession(
        data,
        engine="grid",
        cell_size=CELL,
        adjacency_cache=manager.view("clustered-info", data.metric),
    )
    assert other.select(0.05).selected == session.select(0.05).selected
    assert manager.builds == builds_before

"""Tests for MaxMin, MaxSum, k-medoids and the quality metrics."""

import numpy as np
import pytest

from repro.baselines import (
    coverage_ratio,
    fmin,
    fsum,
    jaccard_distance,
    kmedoids_objective,
    kmedoids_select,
    maxmin_select,
    maxmin_value,
    maxsum_select,
    maxsum_value,
    representation_error,
    solution_summary,
)
from repro.distance import EUCLIDEAN, HAMMING


class TestMaxMin:
    def test_selects_k_distinct(self, medium_uniform):
        selected = maxmin_select(medium_uniform, EUCLIDEAN, 10)
        assert len(selected) == 10
        assert len(set(selected)) == 10

    def test_corners_of_square(self):
        square = np.array([[0, 0], [1, 0], [0, 1], [1, 1], [0.5, 0.5]], dtype=float)
        selected = maxmin_select(square, EUCLIDEAN, 4, exact_init=True)
        assert set(selected) == {0, 1, 2, 3}

    def test_beats_random_on_fmin(self, medium_uniform, rng):
        greedy_val = maxmin_value(
            medium_uniform, EUCLIDEAN, maxmin_select(medium_uniform, EUCLIDEAN, 12)
        )
        random_val = maxmin_value(
            medium_uniform, EUCLIDEAN,
            list(rng.choice(len(medium_uniform), size=12, replace=False)),
        )
        assert greedy_val > random_val

    def test_k_equals_n(self, small_uniform):
        assert maxmin_select(small_uniform, EUCLIDEAN, len(small_uniform)) == list(
            range(len(small_uniform))
        )

    def test_k_validation(self, small_uniform):
        with pytest.raises(ValueError):
            maxmin_select(small_uniform, EUCLIDEAN, 0)
        with pytest.raises(ValueError):
            maxmin_select(small_uniform, EUCLIDEAN, len(small_uniform) + 1)

    def test_value_of_single_selection(self, small_uniform):
        assert maxmin_value(small_uniform, EUCLIDEAN, [3]) == float("inf")

    def test_seeded_start_is_deterministic(self, medium_uniform):
        a = maxmin_select(medium_uniform, EUCLIDEAN, 5, seed=9)
        b = maxmin_select(medium_uniform, EUCLIDEAN, 5, seed=9)
        assert a == b


class TestMaxSum:
    def test_selects_k_distinct(self, medium_uniform):
        selected = maxsum_select(medium_uniform, EUCLIDEAN, 10)
        assert len(set(selected)) == 10

    def test_prefers_outskirts(self):
        """MaxSum's signature behaviour (Figure 6b): with one far-away
        cluster and one centre point, the centre is never picked."""
        points = np.vstack(
            [
                np.array([[0.5, 0.5]]),
                np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]]),
            ]
        )
        selected = maxsum_select(points, EUCLIDEAN, 4, exact_init=True)
        assert 0 not in selected

    def test_value_monotone_in_k(self, medium_uniform):
        v3 = maxsum_value(
            medium_uniform, EUCLIDEAN, maxsum_select(medium_uniform, EUCLIDEAN, 3)
        )
        v6 = maxsum_value(
            medium_uniform, EUCLIDEAN, maxsum_select(medium_uniform, EUCLIDEAN, 6)
        )
        assert v6 > v3

    def test_value_of_single(self, small_uniform):
        assert maxsum_value(small_uniform, EUCLIDEAN, [0]) == 0.0


class TestKMedoids:
    def test_selects_k_distinct(self, medium_uniform):
        selected = kmedoids_select(medium_uniform, EUCLIDEAN, 8, seed=1)
        assert len(set(selected)) == 8

    def test_finds_cluster_centres(self, small_clustered):
        """With k = 3 on three blobs, each medoid should sit in a
        different blob (blob memberships are index ranges)."""
        selected = kmedoids_select(small_clustered, EUCLIDEAN, 3, seed=0)
        blocks = {0: range(0, 12), 1: range(12, 23), 2: range(23, 33)}
        hit_blocks = {
            b for m in selected for b, r in blocks.items() if m in r
        }
        assert len(hit_blocks) == 3

    def test_objective_beats_random(self, medium_uniform, rng):
        medoid_cost = kmedoids_objective(
            medium_uniform, EUCLIDEAN, kmedoids_select(medium_uniform, EUCLIDEAN, 10, seed=2)
        )
        random_cost = kmedoids_objective(
            medium_uniform, EUCLIDEAN,
            list(rng.choice(len(medium_uniform), size=10, replace=False)),
        )
        assert medoid_cost <= random_cost

    def test_deterministic_by_seed(self, medium_uniform):
        assert kmedoids_select(medium_uniform, EUCLIDEAN, 5, seed=3) == kmedoids_select(
            medium_uniform, EUCLIDEAN, 5, seed=3
        )

    def test_objective_validation(self, small_uniform):
        with pytest.raises(ValueError):
            kmedoids_objective(small_uniform, EUCLIDEAN, [])

    def test_hamming_medoids(self, categorical_points):
        selected = kmedoids_select(categorical_points, HAMMING, 4, seed=0)
        assert len(set(selected)) == 4


class TestQualityMetrics:
    def test_fmin_fsum_consistency(self, small_uniform):
        ids = [0, 5, 9]
        assert fmin(small_uniform, EUCLIDEAN, ids) <= fsum(
            small_uniform, EUCLIDEAN, ids
        )

    def test_coverage_ratio_full_selection(self, small_uniform):
        assert coverage_ratio(
            small_uniform, EUCLIDEAN, range(len(small_uniform)), 0.0
        ) == 1.0

    def test_coverage_ratio_empty(self, small_uniform):
        assert coverage_ratio(small_uniform, EUCLIDEAN, [], 0.5) == 0.0

    def test_representation_error_zero_for_full(self, small_uniform):
        assert representation_error(
            small_uniform, EUCLIDEAN, range(len(small_uniform))
        ) == pytest.approx(0.0)

    def test_jaccard_distance_values(self):
        assert jaccard_distance([1, 2], [1, 2]) == 0.0
        assert jaccard_distance([1, 2], [3, 4]) == 1.0
        assert jaccard_distance([1, 2, 3], [2, 3, 4]) == pytest.approx(0.5)
        assert jaccard_distance([], []) == 0.0

    def test_solution_summary_keys(self, small_uniform):
        summary = solution_summary(small_uniform, EUCLIDEAN, [0, 10, 20], 0.3)
        assert set(summary) == {
            "size", "fmin", "fsum", "coverage", "representation_error",
        }
        assert summary["size"] == 3

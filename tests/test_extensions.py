"""Tests for the Section 8 extensions: weighted, multi-radius, streaming."""

import numpy as np
import pytest

from repro.core import greedy_disc, verify_disc
from repro.core.extensions import (
    StreamingDisC,
    multiradius_disc,
    radii_from_relevance,
    total_weight,
    verify_multiradius,
    weighted_disc,
)
from repro.distance import EUCLIDEAN
from repro.index import BruteForceIndex
from repro.mtree import MTreeIndex


class TestWeightedDisc:
    def test_output_is_disc_diverse(self, medium_uniform, rng):
        weights = rng.random(len(medium_uniform))
        index = BruteForceIndex(medium_uniform, EUCLIDEAN)
        result = weighted_disc(index, 0.12, weights, alpha=0.5)
        report = verify_disc(medium_uniform, EUCLIDEAN, result.selected, 0.12)
        assert report.is_disc_diverse, str(report)

    def test_alpha_one_prefers_heavy_objects(self, medium_uniform, rng):
        """With alpha=1 the heaviest object is always selected first."""
        weights = rng.random(len(medium_uniform))
        index = BruteForceIndex(medium_uniform, EUCLIDEAN)
        result = weighted_disc(index, 0.15, weights, alpha=1.0)
        assert result.selected[0] == int(np.argmax(weights))

    def test_alpha_zero_matches_greedy_disc(self, medium_uniform):
        """alpha=0 is pure coverage greed — identical to Greedy-DisC."""
        weights = np.ones(len(medium_uniform))
        weighted = weighted_disc(
            BruteForceIndex(medium_uniform, EUCLIDEAN), 0.12, weights, alpha=0.0
        )
        plain = greedy_disc(BruteForceIndex(medium_uniform, EUCLIDEAN), 0.12)
        assert weighted.selected == plain.selected

    def test_weight_objective_improves_with_alpha(self, medium_uniform, rng):
        """More relevance focus (higher alpha) should not reduce the
        total selected weight on average."""
        weights = rng.random(len(medium_uniform)) ** 3  # skewed
        index = BruteForceIndex(medium_uniform, EUCLIDEAN)
        low = weighted_disc(index, 0.15, weights, alpha=0.0)
        high = weighted_disc(index, 0.15, weights, alpha=1.0)
        per_object_low = low.meta["total_weight"] / low.size
        per_object_high = high.meta["total_weight"] / high.size
        assert per_object_high >= per_object_low

    def test_total_weight_helper(self):
        assert total_weight([0.5, 1.0, 2.0], [0, 2]) == pytest.approx(2.5)

    def test_validation(self, small_uniform):
        index = BruteForceIndex(small_uniform, EUCLIDEAN)
        with pytest.raises(ValueError, match="shape"):
            weighted_disc(index, 0.1, np.ones(3))
        with pytest.raises(ValueError, match="non-negative"):
            weighted_disc(index, 0.1, -np.ones(len(small_uniform)))
        with pytest.raises(ValueError, match="alpha"):
            weighted_disc(index, 0.1, np.ones(len(small_uniform)), alpha=2.0)

    def test_works_on_mtree(self, medium_uniform, rng):
        weights = rng.random(len(medium_uniform))
        index = MTreeIndex(medium_uniform, EUCLIDEAN, capacity=6)
        result = weighted_disc(index, 0.12, weights, prune=True)
        report = verify_disc(medium_uniform, EUCLIDEAN, result.selected, 0.12)
        assert report.is_disc_diverse


class TestMultiRadius:
    def test_reduces_to_uniform_radius(self, medium_uniform):
        """Constant radii must reproduce standard DisC validity."""
        radii = np.full(len(medium_uniform), 0.12)
        index = BruteForceIndex(medium_uniform, EUCLIDEAN)
        result = multiradius_disc(index, radii)
        report = verify_disc(medium_uniform, EUCLIDEAN, result.selected, 0.12)
        assert report.is_disc_diverse, str(report)

    def test_heterogeneous_radii_valid(self, medium_uniform, rng):
        radii = rng.uniform(0.05, 0.25, size=len(medium_uniform))
        index = BruteForceIndex(medium_uniform, EUCLIDEAN)
        result = multiradius_disc(index, radii)
        outcome = verify_multiradius(
            medium_uniform, EUCLIDEAN, result.selected, radii
        )
        assert outcome["uncovered"] == []
        assert outcome["too_close"] == []

    def test_relevant_regions_get_more_representatives(self, rng):
        """Half the plane is 'relevant' (small radii): it must receive
        more representatives per object than the irrelevant half."""
        points = rng.random((400, 2))
        relevant = points[:, 0] < 0.5
        radii = np.where(relevant, 0.05, 0.2)
        index = BruteForceIndex(points, EUCLIDEAN)
        result = multiradius_disc(index, radii)
        selected = np.array(result.selected)
        left = np.sum(points[selected][:, 0] < 0.5)
        right = len(selected) - left
        assert left > right

    def test_radii_from_relevance_mapping(self):
        relevance = np.array([0.0, 0.5, 1.0])
        radii = radii_from_relevance(relevance, 0.05, 0.25)
        assert radii[0] == pytest.approx(0.25)   # least relevant -> largest
        assert radii[2] == pytest.approx(0.05)   # most relevant -> smallest
        assert radii[1] == pytest.approx(0.15)

    def test_constant_relevance_maps_to_midpoint(self):
        radii = radii_from_relevance(np.ones(4), 0.1, 0.3)
        assert np.allclose(radii, 0.2)

    def test_validation(self, small_uniform):
        index = BruteForceIndex(small_uniform, EUCLIDEAN)
        with pytest.raises(ValueError, match="shape"):
            multiradius_disc(index, np.ones(3))
        with pytest.raises(ValueError, match="positive"):
            multiradius_disc(index, np.zeros(len(small_uniform)))
        with pytest.raises(ValueError, match="positive"):
            radii_from_relevance(np.ones(3), 0.0, 0.1)
        with pytest.raises(ValueError, match="exceed"):
            radii_from_relevance(np.ones(3), 0.3, 0.1)


class TestStreamingDisC:
    def test_invariants_after_every_arrival(self, medium_uniform):
        stream = StreamingDisC(radius=0.15)
        for i, point in enumerate(medium_uniform):
            stream.add(point)
            if i % 60 == 0:  # spot-check along the stream
                seen = medium_uniform[: i + 1]
                report = verify_disc(seen, EUCLIDEAN, stream.selected_ids, 0.15)
                assert report.is_disc_diverse, (i, str(report))
        report = verify_disc(medium_uniform, EUCLIDEAN, stream.selected_ids, 0.15)
        assert report.is_disc_diverse

    def test_first_object_always_selected(self):
        stream = StreamingDisC(radius=0.5)
        assert stream.add([0.5, 0.5]) is True
        assert stream.selected_ids == [0]

    def test_duplicate_never_selected(self):
        stream = StreamingDisC(radius=0.1)
        stream.add([0.5, 0.5])
        assert stream.add([0.5, 0.5]) is False
        assert stream.size == 1

    def test_extend_counts_selections(self, small_uniform):
        stream = StreamingDisC(radius=0.2)
        added = stream.extend(small_uniform)
        assert added == stream.size
        assert stream.n_seen == len(small_uniform)

    def test_result_snapshot(self, small_uniform):
        stream = StreamingDisC(radius=0.2)
        stream.extend(small_uniform)
        result = stream.result()
        assert result.algorithm == "Streaming-DisC"
        assert np.all(result.closest_black <= 0.2 + 1e-12)

    def test_rebuild_not_larger(self, medium_uniform):
        """Offline greedy consolidation can only shrink (or tie) the
        online solution on typical data."""
        stream = StreamingDisC(radius=0.15)
        stream.extend(medium_uniform)
        rebuilt = stream.rebuild()
        assert rebuilt.size <= stream.size
        report = verify_disc(medium_uniform, EUCLIDEAN, rebuilt.selected, 0.15)
        assert report.is_disc_diverse

    def test_rebuild_requires_data(self):
        with pytest.raises(RuntimeError, match="no objects"):
            StreamingDisC(radius=0.1).rebuild()

    def test_streaming_matches_basic_disc_order(self, medium_uniform):
        """Online arrival order == Basic-DisC's scan order on a brute
        index, so the two must select the identical subset."""
        from repro.core import basic_disc

        stream = StreamingDisC(radius=0.15)
        stream.extend(medium_uniform)
        offline = basic_disc(BruteForceIndex(medium_uniform, EUCLIDEAN), 0.15)
        assert stream.selected_ids == offline.selected

    def test_radius_validation(self):
        with pytest.raises(ValueError, match="radius"):
            StreamingDisC(radius=-1)


class TestStreamingRemoval:
    def _alive_report(self, stream, points, radius):
        alive = stream.alive_ids()
        position = {arrival: local for local, arrival in enumerate(alive)}
        local_selected = [position[b] for b in stream.selected_ids]
        return verify_disc(points[alive], EUCLIDEAN, local_selected, radius)

    def test_removing_grey_needs_no_repair(self, medium_uniform):
        stream = StreamingDisC(radius=0.15)
        stream.extend(medium_uniform)
        grey = next(
            i for i in range(stream.n_seen) if i not in set(stream.selected_ids)
        )
        assert stream.remove(grey) is False
        assert self._alive_report(stream, medium_uniform, 0.15).is_disc_diverse

    def test_removing_black_repairs_coverage(self, medium_uniform):
        stream = StreamingDisC(radius=0.15)
        stream.extend(medium_uniform)
        black = stream.selected_ids[0]
        assert stream.remove(black) is True
        assert black not in stream.selected_ids
        assert self._alive_report(stream, medium_uniform, 0.15).is_disc_diverse

    def test_interleaved_add_remove_invariants(self, rng):
        points = rng.random((120, 2))
        stream = StreamingDisC(radius=0.2)
        removed = set()
        for i, point in enumerate(points):
            stream.add(point)
            if i % 7 == 3 and i > 10:
                victim = int(rng.integers(i))
                if victim not in removed:
                    stream.remove(victim)
                    removed.add(victim)
        report = self._alive_report(stream, points, 0.2)
        assert report.is_disc_diverse, str(report)
        assert stream.n_alive == 120 - len(removed)

    def test_double_remove_rejected(self, small_uniform):
        stream = StreamingDisC(radius=0.2)
        stream.extend(small_uniform)
        stream.remove(0)
        with pytest.raises(ValueError, match="already removed"):
            stream.remove(0)
        with pytest.raises(IndexError):
            stream.remove(999)

    def test_rebuild_uses_alive_only(self, medium_uniform):
        stream = StreamingDisC(radius=0.15)
        stream.extend(medium_uniform)
        victim = stream.selected_ids[0]
        stream.remove(victim)
        rebuilt = stream.rebuild()
        assert victim not in rebuilt.selected
        assert set(rebuilt.selected) <= set(stream.alive_ids())


class TestExtensionEngines:
    """Each extension either rides the CSR fast path or explicitly
    declares its legacy path via ``result.meta["engine"]`` — so a
    silent regression to per-neighbor Python loops fails loudly."""

    def test_weighted_csr_parity_with_legacy(self, medium_uniform, rng):
        weights = rng.random(len(medium_uniform))
        for alpha in (0.0, 0.3, 1.0):
            fast = weighted_disc(
                BruteForceIndex(medium_uniform, EUCLIDEAN), 0.12, weights,
                alpha=alpha,
            )
            slow = weighted_disc(
                BruteForceIndex(medium_uniform, EUCLIDEAN, accelerate=False),
                0.12, weights, alpha=alpha,
            )
            assert fast.meta["engine"] == "csr"
            assert slow.meta["engine"] == "legacy"
            assert fast.selected == slow.selected, alpha

    def test_weighted_mtree_and_pruned_stay_legacy(self, small_uniform, rng):
        """Listener-attached (M-tree) and pruned runs need the
        per-query protocol; the fast path must decline them."""
        weights = rng.random(len(small_uniform))
        tree = weighted_disc(
            MTreeIndex(small_uniform, EUCLIDEAN, capacity=8), 0.15, weights
        )
        assert tree.meta["engine"] == "legacy"
        pruned = weighted_disc(
            MTreeIndex(small_uniform, EUCLIDEAN, capacity=8), 0.15, weights,
            prune=True,
        )
        assert pruned.meta["engine"] == "legacy"
        fast = weighted_disc(
            BruteForceIndex(small_uniform, EUCLIDEAN), 0.15, weights
        )
        assert fast.meta["engine"] == "csr"
        assert tree.selected == pruned.selected == fast.selected

    def test_multiradius_declares_legacy(self, small_uniform):
        index = BruteForceIndex(small_uniform, EUCLIDEAN)
        radii = np.full(len(small_uniform), 0.15)
        result = multiradius_disc(index, radii)
        assert result.meta["engine"] == "legacy"

    def test_streaming_declares_engines(self, medium_uniform):
        stream = StreamingDisC(radius=0.15)
        stream.extend(medium_uniform)
        assert stream.result().meta["engine"] == "vectorized-stream"
        rebuilt = stream.rebuild()
        assert rebuilt.meta["engine"] == "csr"
        # The rebuild's CSR selections equal a legacy-path greedy run.
        legacy_index = BruteForceIndex(
            medium_uniform, EUCLIDEAN, accelerate=False
        )
        assert rebuilt.selected == greedy_disc(legacy_index, 0.15).selected

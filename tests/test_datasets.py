"""Unit tests for the dataset generators (paper Section 6 workloads)."""

import numpy as np
import pytest

from repro.datasets import (
    CAMERAS_N,
    CITIES_N,
    PAPER_FIGURE2_ROWS,
    Dataset,
    cameras_dataset,
    cities_dataset,
    clustered_dataset,
    uniform_dataset,
)
from repro.distance import EUCLIDEAN, HAMMING


class TestDatasetContainer:
    def test_basic_properties(self):
        data = uniform_dataset(n=50, dim=3, seed=0)
        assert data.n == len(data) == 50
        assert data.dim == 3
        assert data.metric is EUCLIDEAN

    def test_rejects_non_2d_points(self):
        with pytest.raises(ValueError, match="2-d"):
            Dataset(name="bad", points=np.zeros(5), metric="euclidean")

    def test_subset_returns_rows(self):
        data = uniform_dataset(n=20, seed=0)
        rows = data.subset([3, 7])
        assert rows.shape == (2, 2)
        assert np.array_equal(rows[0], data.points[3])

    def test_decode_requires_categorical(self):
        data = uniform_dataset(n=10, seed=0)
        with pytest.raises(ValueError, match="decode"):
            data.decode(0)


class TestUniform:
    def test_shape_and_range(self):
        data = uniform_dataset(n=500, dim=4, seed=1)
        assert data.points.shape == (500, 4)
        assert data.points.min() >= 0.0 and data.points.max() <= 1.0

    def test_deterministic_by_seed(self):
        a = uniform_dataset(n=100, seed=7).points
        b = uniform_dataset(n=100, seed=7).points
        assert np.array_equal(a, b)
        c = uniform_dataset(n=100, seed=8).points
        assert not np.array_equal(a, c)

    @pytest.mark.parametrize("bad", [0, -5])
    def test_rejects_bad_cardinality(self, bad):
        with pytest.raises(ValueError):
            uniform_dataset(n=bad)


class TestClustered:
    def test_shape_and_range(self):
        data = clustered_dataset(n=800, dim=2, seed=2)
        assert data.points.shape == (800, 2)
        assert data.points.min() >= 0.0 and data.points.max() <= 1.0

    def test_higher_dimensions(self):
        data = clustered_dataset(n=300, dim=6, seed=2)
        assert data.points.shape == (300, 6)

    def test_is_actually_clustered(self):
        """Mean nearest-neighbor distance must be far below uniform's."""
        clustered = clustered_dataset(n=400, seed=3, noise_fraction=0.0).points
        uniform = uniform_dataset(n=400, seed=3).points

        def mean_nn(points):
            d = EUCLIDEAN.pairwise(points)
            np.fill_diagonal(d, np.inf)
            return d.min(axis=1).mean()

        assert mean_nn(clustered) < 0.5 * mean_nn(uniform)

    def test_noise_fraction_bounds(self):
        with pytest.raises(ValueError, match="noise_fraction"):
            clustered_dataset(n=100, noise_fraction=1.5)

    def test_deterministic_by_seed(self):
        a = clustered_dataset(n=200, seed=5).points
        b = clustered_dataset(n=200, seed=5).points
        assert np.array_equal(a, b)


class TestCities:
    def test_exact_paper_cardinality(self):
        data = cities_dataset()
        assert data.n == CITIES_N == 5922
        assert data.dim == 2

    def test_normalised_to_unit_square(self):
        data = cities_dataset(n=1000, seed=1)
        assert data.points.min() >= 0.0 and data.points.max() <= 1.0

    def test_multi_density(self):
        """The geography must contain both very dense and sparse areas."""
        points = cities_dataset(n=2000, seed=1).points
        d = EUCLIDEAN.pairwise(points)
        np.fill_diagonal(d, np.inf)
        nn = d.min(axis=1)
        assert np.percentile(nn, 10) < 0.25 * np.percentile(nn, 90)

    def test_deterministic(self):
        assert np.array_equal(
            cities_dataset(n=500, seed=3).points, cities_dataset(n=500, seed=3).points
        )


class TestCameras:
    def test_exact_paper_cardinality_and_arity(self):
        data = cameras_dataset()
        assert data.n == CAMERAS_N == 579
        assert data.dim == 7
        assert data.metric is HAMMING

    def test_codes_are_decodable(self):
        data = cameras_dataset(n=100, seed=2)
        record = data.decode(0)
        assert set(record) == set(data.attributes)
        for attr, label in record.items():
            assert label in data.categories[attr]

    def test_figure2_rows_present(self):
        data = cameras_dataset(n=100, seed=2)
        decoded = {tuple(data.decode(i)[a] for a in data.attributes) for i in range(data.n)}
        for row in PAPER_FIGURE2_ROWS:
            assert row in decoded

    def test_near_duplicates_exist(self):
        """Some distinct rows must differ in only 1-2 attributes —
        that is what makes Hamming radius 1 meaningful."""
        data = cameras_dataset(seed=4)
        d = HAMMING.pairwise(data.points[:200])
        np.fill_diagonal(d, np.inf)
        assert (d <= 2).any()

    def test_distance_range_supports_paper_radii(self):
        data = cameras_dataset(seed=4)
        d = HAMMING.pairwise(data.points[:200])
        assert d.max() <= 7

    def test_minimum_cardinality_guard(self):
        with pytest.raises(ValueError, match="at least"):
            cameras_dataset(n=3)

"""Tests for :mod:`repro.analysis` — the lint framework, each rule
(one positive + one negative fixture), suppressions, output formats,
the exit-code contract, the runtime lock-order auditor, and regression
tests for the true positives the linter caught in the serving layer.

The ``TestSeededViolations`` class doubles as the CI self-test: every
shipped rule must fire on a deliberately seeded violation, proving the
lint lane can actually fail.
"""

from __future__ import annotations

import json
import textwrap
import threading

import pytest

from repro.analysis import (
    all_rules,
    main as lint_main,
    render_json,
    render_text,
    run_paths,
)
from repro.analysis import lockaudit
from repro.cancellation import OperationCancelled


def lint(tmp_path, source, rules=None, name="fixture.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return run_paths([str(path)], rules=rules)


def rule_names(findings):
    return {f.rule for f in findings}


# ----------------------------------------------------------------------
# Framework
# ----------------------------------------------------------------------
class TestFramework:
    def test_rule_registry_has_the_shipped_rules(self):
        names = set(all_rules())
        assert {
            "guarded-attribute",
            "checkpoint-in-hot-loop",
            "shm-lifecycle",
            "dtype-discipline",
            "blocking-in-async",
            "swallowed-cancellation",
            "span-discipline",
        } <= names

    def test_clean_file_yields_no_findings(self, tmp_path):
        assert lint(tmp_path, "x = 1\n") == []

    def test_unknown_rule_selection_raises(self, tmp_path):
        (tmp_path / "m.py").write_text("x = 1\n")
        with pytest.raises(ValueError, match="no-such-rule"):
            run_paths([str(tmp_path)], rules=["no-such-rule"])

    def test_syntax_error_becomes_parse_error_finding(self, tmp_path):
        findings = lint(tmp_path, "def broken(:\n")
        assert [f.rule for f in findings] == ["parse-error"]

    def test_directory_walk_skips_pycache(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "junk.py").write_text("def broken(:\n")
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert run_paths([str(tmp_path)]) == []

    def test_docstring_mentioning_directives_is_inert(self, tmp_path):
        # Only real COMMENT tokens act as directives; prose describing
        # the syntax (as the analysis package's own docstrings do) must
        # neither suppress nor scope.
        findings = lint(
            tmp_path,
            '''
            """Docs: use # repro-lint: disable=guarded-attribute -- why.

            And tag fixtures with # repro-lint: scope=hot-path markers.
            """
            def f(n):
                total = 0
                for i in range(n):
                    total += i
                return total
            ''',
        )
        assert findings == []


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
_HOT_LOOP = '''
# repro-lint: scope=hot-path
def sweep(n):
    total = 0
    for i in range(n):{suffix}
        total += i
    return total
'''


class TestSuppressions:
    def test_suppression_with_reason_silences_finding(self, tmp_path):
        noisy = lint(tmp_path, _HOT_LOOP.format(suffix=""))
        assert rule_names(noisy) == {"checkpoint-in-hot-loop"}
        quiet = lint(
            tmp_path,
            _HOT_LOOP.format(
                suffix="  # repro-lint: disable=checkpoint-in-hot-loop"
                " -- fixture: bounded loop"
            ),
        )
        assert quiet == []

    def test_suppression_without_reason_is_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            _HOT_LOOP.format(
                suffix="  # repro-lint: disable=checkpoint-in-hot-loop"
            ),
        )
        # The target finding is silenced, but the naked suppression is
        # itself a finding — reasons are mandatory.
        assert rule_names(findings) == {"suppression-format"}
        assert "reason" in findings[0].message

    def test_suppression_naming_unknown_rule_is_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            "x = 1  # repro-lint: disable=definitely-not-a-rule -- because\n",
        )
        assert rule_names(findings) == {"suppression-format"}
        assert "definitely-not-a-rule" in findings[0].message

    def test_suppression_only_covers_named_rule(self, tmp_path):
        findings = lint(
            tmp_path,
            _HOT_LOOP.format(
                suffix="  # repro-lint: disable=dtype-discipline -- wrong rule"
            ),
        )
        assert "checkpoint-in-hot-loop" in rule_names(findings)


# ----------------------------------------------------------------------
# Output + exit codes
# ----------------------------------------------------------------------
class TestOutputContract:
    def test_json_schema(self, tmp_path):
        findings = lint(tmp_path, _HOT_LOOP.format(suffix=""))
        doc = json.loads(render_json(findings))
        assert doc["version"] == 1
        assert doc["total"] == len(findings) == 1
        assert doc["counts"] == {"checkpoint-in-hot-loop": 1}
        (entry,) = doc["findings"]
        assert set(entry) == {"rule", "path", "line", "col", "message"}
        assert entry["line"] == 5

    def test_text_rendering(self, tmp_path):
        findings = lint(tmp_path, _HOT_LOOP.format(suffix=""))
        text = render_text(findings)
        assert "checkpoint-in-hot-loop" in text
        assert text.endswith("(checkpoint-in-hot-loop=1)")
        assert render_text([]) == "repro-lint: clean (0 findings)"

    def test_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text(textwrap.dedent(_HOT_LOOP.format(suffix="")))
        assert lint_main([str(clean)]) == 0
        assert lint_main([str(dirty)]) == 1
        assert lint_main([str(clean), "--rule", "no-such-rule"]) == 2
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in all_rules():
            assert name in out


# ----------------------------------------------------------------------
# Rules: one positive + one negative fixture each
# ----------------------------------------------------------------------
class TestGuardedAttribute:
    def test_positive_unlocked_and_off_loop_mutations(self, tmp_path):
        findings = lint(
            tmp_path,
            '''
            import threading

            class Stats:
                _GUARDED_BY = {"hits": "self._lock", "gauge": "event-loop"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self.hits = 0
                    self.gauge = 0

                def unlocked(self):
                    self.hits += 1

                def off_loop(self):
                    self.gauge += 1
            ''',
            rules=["guarded-attribute"],
        )
        assert len(findings) == 2
        assert all(f.rule == "guarded-attribute" for f in findings)

    def test_negative_lock_docstring_async_and_init_exemptions(self, tmp_path):
        findings = lint(
            tmp_path,
            '''
            import threading

            class Stats:
                _GUARDED_BY = {"hits": "self._lock", "gauge": "event-loop"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self.hits = 0
                    self.gauge = 0

                def locked(self):
                    with self._lock:
                        self.hits += 1

                def helper(self):
                    """Caller holds ``self._lock``."""
                    self.hits += 1

                def loop_helper(self):
                    """Runs on the event loop only."""
                    self.gauge += 1

                async def handler(self):
                    self.gauge -= 1
            ''',
            rules=["guarded-attribute"],
        )
        assert findings == []


class TestCheckpointInHotLoop:
    def test_positive_unbounded_loops(self, tmp_path):
        findings = lint(
            tmp_path,
            '''
            # repro-lint: scope=hot-path
            def scan(n, items):
                total = 0
                while total < n:
                    total += 1
                for i, item in enumerate(items):
                    total += item
                return total
            ''',
            rules=["checkpoint-in-hot-loop"],
        )
        assert len(findings) == 2

    def test_negative_checkpointed_and_enclosed_loops(self, tmp_path):
        findings = lint(
            tmp_path,
            '''
            # repro-lint: scope=hot-path
            def scan(n, token, rows):
                total = 0
                for i in range(n):
                    if token is not None and i % 256 == 0:
                        token.checkpoint()
                    for j in range(len(rows)):
                        total += rows[j]
                for k in range(8):
                    total += k
                return total
            ''',
            rules=["checkpoint-in-hot-loop"],
        )
        # Outer loop checkpoints; inner rides inside it; range(8) is
        # constant-bounded and never a candidate.
        assert findings == []

    def test_fires_on_real_hot_path_without_checkpoint(self, tmp_path):
        # Path-based scoping: a file under repro/graph/ needs no marker.
        pkg = tmp_path / "repro" / "graph"
        pkg.mkdir(parents=True)
        target = pkg / "sweep.py"
        target.write_text(
            "def degrees(n):\n"
            "    total = 0\n"
            "    for s in range(n):\n"
            "        total += s\n"
            "    return total\n"
        )
        findings = run_paths([str(target)], rules=["checkpoint-in-hot-loop"])
        assert len(findings) == 1


class TestShmLifecycle:
    def test_positive_unheld_view_and_leaked_handle(self, tmp_path):
        findings = lint(
            tmp_path,
            '''
            # repro-lint: scope=shm
            import numpy as np

            def bad_view(name):
                seg = SharedMemory(name=name)
                return np.ndarray((4,), dtype=np.int32, buffer=seg.buf)

            def leak(name):
                seg = SharedMemory(name=name)
                return 42
            ''',
            rules=["shm-lifecycle"],
        )
        messages = " | ".join(f.message for f in findings)
        assert "unheld handle" in messages
        assert "never" in messages

    def test_negative_held_closed_and_escaping_handles(self, tmp_path):
        findings = lint(
            tmp_path,
            '''
            # repro-lint: scope=shm
            import numpy as np

            def good_view(name, store):
                seg = store._hold(SharedMemory(name=name))
                return np.ndarray((4,), dtype=np.int32, buffer=seg.buf)

            def closes(name):
                seg = SharedMemory(name=name)
                try:
                    return bytes(seg.buf[:4])
                finally:
                    seg.close()

            def hands_off(name, registry):
                seg = SharedMemory(name=name)
                registry.track(seg)
            ''',
            rules=["shm-lifecycle"],
        )
        assert findings == []


class TestDtypeDiscipline:
    def test_positive_missing_dtype_int64_and_cast(self, tmp_path):
        findings = lint(
            tmp_path,
            '''
            # repro-lint: scope=graph
            import numpy as np

            def build(n, raw):
                ids = np.empty(n)
                members = np.arange(n, dtype=np.int64)
                rows = raw.astype(np.int64)
                return ids, members, rows
            ''',
            rules=["dtype-discipline"],
        )
        assert len(findings) == 3

    def test_negative_int32_ids_int64_indptr_and_asarray_idiom(self, tmp_path):
        findings = lint(
            tmp_path,
            '''
            # repro-lint: scope=graph
            import numpy as np

            def build(n, raw):
                ids = np.empty(n, dtype=np.int32)
                indptr = np.zeros(n + 1, dtype=np.int64)
                rows = np.asarray(raw, dtype=np.int64)
                scratch = np.empty(n)
                return ids, indptr, rows, scratch
            ''',
            rules=["dtype-discipline"],
        )
        # indptr is not an id array; asarray int64 normalisation is the
        # accepted input idiom; `scratch` is not id-named.
        assert findings == []


class TestBlockingInAsync:
    def test_positive_blocking_calls_in_async_def(self, tmp_path):
        findings = lint(
            tmp_path,
            '''
            # repro-lint: scope=service
            import time, os

            async def handler():
                time.sleep(0.1)
                os.system("true")
            ''',
            rules=["blocking-in-async"],
        )
        assert len(findings) == 2

    def test_negative_async_sleep_and_nested_sync_def(self, tmp_path):
        findings = lint(
            tmp_path,
            '''
            # repro-lint: scope=service
            import asyncio, time

            async def handler(loop, executor):
                await asyncio.sleep(0.1)

                def thunk():
                    time.sleep(0.1)  # runs on the executor, not the loop

                return await loop.run_in_executor(executor, thunk)

            def sync_helper():
                time.sleep(0.1)
            ''',
            rules=["blocking-in-async"],
        )
        assert findings == []


class TestSwallowedCancellation:
    def test_positive_broad_catch_drops_cancellation(self, tmp_path):
        findings = lint(
            tmp_path,
            '''
            # repro-lint: scope=cancellation
            def fetch(build):
                try:
                    return build()
                except Exception:
                    return None
            ''',
            rules=["swallowed-cancellation"],
        )
        assert len(findings) == 1
        assert "Exception" in findings[0].message

    def test_negative_reraise_specific_handler_and_cleanup_guard(self, tmp_path):
        findings = lint(
            tmp_path,
            '''
            # repro-lint: scope=cancellation
            def propagates(build):
                try:
                    return build()
                except Exception:
                    raise

            def maps_to_response(build):
                try:
                    return build()
                except Exception as exc:
                    return {"error": str(exc)}

            def specific_first(build):
                try:
                    return build()
                except OperationCancelled:
                    raise
                except Exception:
                    return None

            def teardown(seg):
                try:
                    seg.close()
                except Exception:
                    pass
            ''',
            rules=["swallowed-cancellation"],
        )
        assert findings == []


class TestSpanDiscipline:
    def test_positive_spanless_handler_and_bad_metric_names(self, tmp_path):
        findings = lint(
            tmp_path,
            '''
            # repro-lint: scope=service
            async def handle(reader, writer):
                method, path, keep_alive, body, headers = (
                    await read_http_request(reader)
                )
                write_http_response(writer, 200, {}, keep_alive)

            def instruments(registry):
                a = registry.counter("http_requests_total", "no prefix")
                b = registry.gauge("repro_InFlight", "bad case")
                c = registry.histogram("repro-latency", "bad separator")
                return a, b, c
            ''',
            rules=["span-discipline"],
        )
        assert len(findings) == 4
        messages = " | ".join(f.message for f in findings)
        assert "'handle'" in messages
        assert "http_requests_total" in messages
        assert "repro_InFlight" in messages
        assert "repro-latency" in messages

    def test_negative_spanned_handler_wrapper_and_good_names(self, tmp_path):
        findings = lint(
            tmp_path,
            '''
            # repro-lint: scope=service
            async def handle(reader, writer, trace):
                parsed = await _read_request(reader)
                with trace.request_scope("request", header=None):
                    write_http_response(writer, 200, {}, True)

            async def _read_request(reader):
                # Read-only helper: parses but never answers, so it is
                # not a handler and needs no span of its own.
                return await read_http_request(reader)

            def instruments(registry, numpy, data):
                a = registry.counter("repro_http_requests_total", "ok")
                b = registry.histogram("repro_phase_duration_seconds", "ok")
                # Non-registry calls and computed names are not checked.
                hist = numpy.histogram(data)
                name = "repro-" + "latency"
                c = registry.counter(name, "computed name, runtime checks it")
                return a, b, c, hist
            ''',
            rules=["span-discipline"],
        )
        assert findings == []


# ----------------------------------------------------------------------
# Seeded-violation self-test (run by the CI lint lane)
# ----------------------------------------------------------------------
_SEEDED = {
    "guarded-attribute": '''
        import threading

        class Counter:
            _GUARDED_BY = {"n": "self._lock"}

            def __init__(self):
                self._lock = threading.Lock()
                self.n = 0

            def bump(self):
                self.n += 1
        ''',
    "checkpoint-in-hot-loop": '''
        # repro-lint: scope=hot-path
        def sweep(n):
            total = 0
            for i in range(n):
                total += i
            return total
        ''',
    "shm-lifecycle": '''
        # repro-lint: scope=shm
        import numpy as np

        def view(name):
            seg = SharedMemory(name=name)
            return np.ndarray((4,), dtype=np.int32, buffer=seg.buf)
        ''',
    "dtype-discipline": '''
        # repro-lint: scope=graph
        import numpy as np

        def build(n):
            ids = np.arange(n, dtype=np.int64)
            return ids
        ''',
    "blocking-in-async": '''
        # repro-lint: scope=service
        import time

        async def handler():
            time.sleep(1.0)
        ''',
    "swallowed-cancellation": '''
        # repro-lint: scope=cancellation
        def fetch(build):
            try:
                return build()
            except Exception:
                return None
        ''',
    "span-discipline": '''
        # repro-lint: scope=service
        async def handle(reader, writer):
            parsed = await read_http_request(reader)
            write_http_response(writer, 200, {}, False)
        ''',
}


class TestSeededViolations:
    """Every shipped rule fires on its seeded violation — the proof the
    CI lint lane can fail, not just pass."""

    @pytest.mark.parametrize("rule", sorted(_SEEDED))
    def test_rule_fires_on_seeded_violation(self, tmp_path, rule):
        findings = lint(tmp_path, _SEEDED[rule], name=f"{rule.replace('-', '_')}.py")
        assert rule in rule_names(findings), (
            f"rule {rule!r} did not fire on its seeded violation"
        )

    def test_all_rules_together_on_one_tree(self, tmp_path):
        for rule, source in _SEEDED.items():
            path = tmp_path / f"{rule.replace('-', '_')}.py"
            path.write_text(textwrap.dedent(source))
        findings = run_paths([str(tmp_path)])
        assert set(_SEEDED) <= rule_names(findings)


# ----------------------------------------------------------------------
# Lock-order auditor
# ----------------------------------------------------------------------
@pytest.fixture
def audit_shim():
    """Install the lock shim; restore factories and the pre-test graph
    afterwards, so seeded edges never leak into a session-level audit."""
    was_installed = lockaudit.installed()
    saved = (
        dict(lockaudit._EDGES),
        set(lockaudit._SAME_SITE),
        dict(lockaudit._SITES),
    )
    lockaudit.install()
    try:
        yield lockaudit
    finally:
        with lockaudit._STATE_LOCK:
            lockaudit._EDGES.clear()
            lockaudit._EDGES.update(saved[0])
            lockaudit._SAME_SITE.clear()
            lockaudit._SAME_SITE.update(saved[1])
            lockaudit._SITES.clear()
            lockaudit._SITES.update(saved[2])
        if not was_installed:
            lockaudit.uninstall()


class TestLockAudit:
    def test_nesting_records_an_ordered_edge(self, audit_shim):
        lock_a = threading.Lock()
        lock_b = threading.Lock()
        with lock_a:
            with lock_b:
                pass
        snapshot = audit_shim.report()
        pairs = {(e["from"], e["to"]) for e in snapshot["edges"]}
        site_a = lock_a._site
        site_b = lock_b._site
        assert (site_a, site_b) in pairs
        assert snapshot["cycles"] == []

    def test_abba_nesting_is_a_cycle(self, audit_shim):
        lock_a = threading.Lock()
        lock_b = threading.Lock()
        with lock_a:
            with lock_b:
                pass
        with lock_b:
            with lock_a:
                pass
        snapshot = audit_shim.report()
        assert snapshot["cycles"], "ABBA nesting must be reported as a cycle"
        with pytest.raises(lockaudit.LockOrderError, match="cycle"):
            audit_shim.assert_acyclic()

    def test_same_site_pair_is_not_a_cycle(self, audit_shim):
        def make():
            return threading.Lock()

        lock_a, lock_b = make(), make()
        with lock_a:
            with lock_b:
                pass
        snapshot = audit_shim.report()
        assert snapshot["cycles"] == []
        assert snapshot["same_site_pairs"] == [lock_a._site]

    def test_condition_and_event_still_work(self, audit_shim):
        # Condition exercises _release_save/_acquire_restore/_is_owned
        # on the audited RLock; Event builds on Condition(Lock()).
        cond = threading.Condition()
        results = []

        def waiter():
            with cond:
                results.append(cond.wait(timeout=5.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        while not results:
            with cond:
                cond.notify_all()
            if results:
                break
        thread.join(timeout=5.0)
        assert results == [True]

        event = threading.Event()
        event.set()
        assert event.wait(timeout=5.0)

    def test_rlock_reentry_is_not_an_edge(self, audit_shim):
        rlock = threading.RLock()
        with rlock:
            with rlock:
                pass
        snapshot = audit_shim.report()
        assert snapshot["cycles"] == []
        assert all(e["from"] != e["to"] for e in snapshot["edges"])

    def test_uninstall_restores_real_factories(self):
        was_installed = lockaudit.installed()
        lockaudit.install()
        try:
            assert type(threading.Lock()).__name__ == "_AuditedLock"
        finally:
            if not was_installed:
                lockaudit.uninstall()
        if not was_installed:
            assert type(threading.Lock()).__name__ != "_AuditedLock"

    def test_cycles_pure_function(self):
        edges = {("a", "b"): 1, ("b", "c"): 2, ("c", "a"): 1, ("c", "d"): 1}
        (cycle,) = lockaudit.cycles(edges)
        assert cycle[0] == cycle[-1]
        assert set(cycle) == {"a", "b", "c"}
        assert lockaudit.cycles({("a", "b"): 1, ("b", "c"): 1}) == []

    def test_real_suite_locks_are_acyclic(self, audit_shim):
        # A miniature end-to-end: exercise the shared cache (the most
        # lock-dense component) under the shim and assert acyclicity.
        from repro.service.cache import SharedCacheManager

        manager = SharedCacheManager(max_entries=4)
        key = ("ds", "euclidean", 0.1)
        assert manager.get(key) is None  # claims the build slot
        manager.put(key, object())
        assert manager.get(key) is not None
        snapshot = audit_shim.assert_acyclic()
        assert snapshot["sites"]


# ----------------------------------------------------------------------
# Regression tests for the true positives the linter caught
# ----------------------------------------------------------------------
class _CancellingBacking:
    """Stub cross-process backing whose publish dies mid-deadline."""

    def __init__(self):
        self.abandoned = []

    def publish(self, claim, value):
        raise OperationCancelled("deadline expired mid-publish")

    def abandon(self, claim):
        self.abandoned.append(claim)


class _StubClaim:
    def __init__(self):
        self.abandoned = 0

    def abandon(self):
        self.abandoned += 1


class TestServiceCancellationRegressions:
    def test_put_propagates_cancellation_and_releases_claim(self):
        # Before the fix, the broad `except Exception` in put() also
        # caught OperationCancelled: the claim was released but the
        # cancellation vanished, so a timed-out request kept going as
        # if it had succeeded.
        from repro.service.cache import SharedCacheManager

        backing = _CancellingBacking()
        manager = SharedCacheManager(max_entries=4, backing=backing)
        key = ("ds", "euclidean", 0.1)
        claim = _StubClaim()
        with manager._lock:
            manager._backing_claims[key] = claim
        with pytest.raises(OperationCancelled):
            manager.put(key, object())
        assert claim.abandoned == 1, "claim must be released on cancellation"
        # The local install still happened (the value is good; only the
        # cross-process publish was cut short).
        assert manager.get(key) is not None

    def test_load_or_claim_propagates_cancellation_without_takeover(
        self, monkeypatch
    ):
        # Before the fix, a deadline expiring inside decode_adjacency
        # fell into the corrupt-payload path: the *intact* shared
        # segment was taken over (destroyed) because one caller ran out
        # of budget.
        from repro.service import shm as shm_mod

        class _StubStore:
            def __init__(self):
                self.takeovers = []

            def acquire(self, key, wait_s):
                return "value", {"kind": "csr", "arrays": {}}

            def _takeover(self, key):
                self.takeovers.append(key)

        store = _StubStore()
        backing = shm_mod.ShmCacheBacking(store, wait_s=1.0)

        def _cancelled_decode(kind, arrays):
            raise OperationCancelled("deadline expired mid-decode")

        monkeypatch.setattr(shm_mod, "decode_adjacency", _cancelled_decode)
        with pytest.raises(OperationCancelled):
            backing.load_or_claim(("ds", "euclidean", 0.1))
        assert store.takeovers == [], (
            "an intact segment must not be destroyed on caller deadline"
        )

    def test_corrupt_payload_still_takes_over(self, monkeypatch):
        # The pre-existing behaviour the fix must not regress: a payload
        # that fails to decode for *real* reasons is rebuilt locally.
        from repro.service import shm as shm_mod

        class _StubStore:
            def __init__(self):
                self.takeovers = []

            def acquire(self, key, wait_s):
                return "value", {"kind": "csr", "arrays": {}}

            def _takeover(self, key):
                self.takeovers.append(key)

        store = _StubStore()
        backing = shm_mod.ShmCacheBacking(store, wait_s=1.0)
        monkeypatch.setattr(
            shm_mod,
            "decode_adjacency",
            lambda kind, arrays: (_ for _ in ()).throw(ValueError("skew")),
        )
        status, value = backing.load_or_claim(("ds", "euclidean", 0.1))
        assert status == "miss" and value is None
        assert len(store.takeovers) == 1


# ----------------------------------------------------------------------
# The repo itself stays clean
# ----------------------------------------------------------------------
class TestRepoIsClean:
    def test_src_tree_lints_clean(self):
        import os

        root = os.path.join(os.path.dirname(__file__), "..", "src")
        findings = run_paths([os.path.normpath(root)])
        assert findings == [], render_text(findings)

"""Fast bench-harness smoke test (tier 1, not ``@slow``).

Runs the ``python -m repro bench --quick`` machinery in-process at a
small cardinality and pins the JSON schema, so CI catches harness
breakage (renamed fields, a broken engine factory, a parity divergence)
without paying the wall-clock of the real benchmark tiers.
"""

import json

from repro.experiments import (
    bench_radius,
    render_bench_table,
    run_wallclock_bench,
    write_bench_json,
)

RUN_KEYS = {
    "workload",
    "n",
    "engine",
    "radius",
    "index_s",
    "adjacency_s",
    "build_s",
    "select_s",
    "total_s",
    "solution_size",
}


def test_bench_payload_schema(tmp_path):
    payload = run_wallclock_bench(
        sizes=[600], workloads=["uniform", "clustered"]
    )

    meta = payload["meta"]
    for key in ("version", "python", "numpy", "machine", "sizes", "radii",
                "density_reference_n", "legacy_max_n"):
        assert key in meta, key
    assert meta["sizes"] == [600]
    assert set(meta["radii"]) == {"uniform", "clustered"}

    runs = payload["runs"]
    # 600 <= LEGACY_MAX_N: all four engines per workload.
    assert len(runs) == 2 * 4
    for run in runs:
        assert RUN_KEYS <= set(run), run
        assert run["build_s"] >= 0 and run["select_s"] >= 0
        # Each phase is rounded to 6 decimals independently; the parts
        # can drift from the rounded sum by one ulp each.
        assert abs(
            run["index_s"] + run["adjacency_s"] - run["build_s"]
        ) <= 2e-6
        assert run["solution_size"] > 0

    # The legacy tiers produce one speedup entry per workload cell.
    assert set(payload["speedups"]) == {"uniform-600", "clustered-600"}

    # Table rendering and JSON persistence round-trip.
    table = render_bench_table(payload)
    assert "Wall-clock" in table and "speedups:" in table
    path = write_bench_json(payload, str(tmp_path / "bench.json"))
    with open(path) as handle:
        assert json.load(handle)["runs"] == runs


def test_quick_mode_restricts_sizes():
    payload = run_wallclock_bench(quick=True, workloads=["uniform"])
    assert payload["meta"]["sizes"] == [2000]
    assert {run["n"] for run in payload["runs"]} == {2000}


def test_bench_radius_density_scaling():
    assert bench_radius("uniform", 2000) == 0.05
    assert bench_radius("uniform", 50000) == 0.05
    assert bench_radius("uniform", 200000) == 0.025  # sqrt(1/4) scaling
    assert 0.0070 < bench_radius("cities", 100000) < 0.0071

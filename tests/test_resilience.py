"""Fault-tolerance suite: deadlines, breakers, retries, degraded modes.

Covers the resilience stack end to end at small n so the CI resilience
lane stays fast:

* :mod:`repro.cancellation` — token budgets, ambient scoping, and the
  cooperative checkpoints inside ``disc_select``'s hot loops;
* :mod:`repro.service.resilience` — deadline resolution and request
  metadata, the circuit breaker state machine, jittered retry policies;
* :class:`SharedCacheManager` failure containment — prompt single-flight
  error propagation, breaker trips + half-open recovery, the stale tier
  served degraded, corrupt-entry detection, counter consistency under
  threads;
* HTTP semantics — 408 vs 504 deadline mapping, structured error
  bodies, idempotent replay, injected faults surfacing as 503s the
  retrying client rides out;
* the chaos suite — :func:`repro.service.load.run_chaos_trace` replays
  the 4-client zoom trace under fault mixes and must come back with
  zero hung requests, byte-identical successes, and a drained
  in-flight gauge.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.api import disc_select
from repro.cancellation import (
    CHECKPOINT_EVERY,
    CancellationToken,
    OperationCancelled,
    cancellation_scope,
    current_token,
)
from repro.datasets import uniform_dataset
from repro.service import (
    DatasetRegistry,
    ServiceClient,
    ServiceError,
    ServiceState,
    SharedCacheManager,
    start_in_thread,
)
from repro.service.faults import (
    CorruptedEntry,
    FaultConfig,
    FaultInjector,
    InjectedFault,
)
from repro.service.load import run_chaos_trace
from repro.service.resilience import (
    BuildFailed,
    CircuitBreaker,
    CircuitOpen,
    RetryPolicy,
    error_body,
    extract_request_meta,
    resolve_deadline,
)

KEY = ("ds", "euclidean", 0.5)


class _Sized:
    """Stand-in adjacency with a declared byte size."""

    def __init__(self, nbytes: int = 8) -> None:
        self.nbytes = nbytes


# ----------------------------------------------------------------------
# Cancellation tokens
# ----------------------------------------------------------------------
class TestCancellationToken:
    def test_unbounded_token_never_expires(self):
        token = CancellationToken.with_timeout(None)
        assert token.remaining() is None
        assert not token.expired()
        token.checkpoint()  # no raise

    def test_deadline_expiry_raises_with_source(self):
        token = CancellationToken.with_timeout(0.005, source="client")
        assert token.remaining() <= 0.005
        time.sleep(0.01)
        assert token.expired()
        with pytest.raises(OperationCancelled) as excinfo:
            token.checkpoint()
        assert excinfo.value.source == "client"

    def test_explicit_cancel(self):
        token = CancellationToken.with_timeout(None, source="server")
        token.checkpoint()
        token.cancel()
        assert token.cancelled
        with pytest.raises(OperationCancelled) as excinfo:
            token.checkpoint()
        assert excinfo.value.source == "server"

    def test_mark_degraded_keeps_first_reason(self):
        token = CancellationToken.with_timeout(None)
        assert token.degraded is None
        token.mark_degraded("stale-adjacency:circuit-open")
        token.mark_degraded("something-else")
        assert token.degraded == "stale-adjacency:circuit-open"

    def test_ambient_scope_installs_and_restores(self):
        assert current_token() is None
        outer = CancellationToken.with_timeout(None)
        inner = CancellationToken.with_timeout(None)
        with cancellation_scope(outer):
            assert current_token() is outer
            with cancellation_scope(inner):
                assert current_token() is inner
            assert current_token() is outer
        assert current_token() is None

    def test_expired_token_cancels_disc_select(self):
        """The cooperative checkpoints inside the greedy loops fire."""
        data = uniform_dataset(n=1500, seed=3)
        token = CancellationToken.with_timeout(1e-6, source="client")
        time.sleep(0.002)
        with cancellation_scope(token):
            with pytest.raises(OperationCancelled) as excinfo:
                disc_select(data, 0.05)
        assert excinfo.value.source == "client"
        # And outside the scope the same call is unaffected.
        assert disc_select(data, 0.05).selected

    def test_checkpoint_interval_is_bounded(self):
        assert 1 <= CHECKPOINT_EVERY <= 4096


# ----------------------------------------------------------------------
# Deadline resolution + request metadata
# ----------------------------------------------------------------------
class TestResolveDeadline:
    def test_no_budget_at_all(self):
        assert resolve_deadline(None) == (None, "server")

    def test_client_budget_binds(self):
        seconds, source = resolve_deadline(500.0)
        assert seconds == pytest.approx(0.5)
        assert source == "client"

    def test_server_default_applies_without_client(self):
        seconds, source = resolve_deadline(None, default_timeout_ms=200.0)
        assert seconds == pytest.approx(0.2)
        assert source == "server"

    def test_server_cap_undercuts_client(self):
        seconds, source = resolve_deadline(
            5000.0, default_timeout_ms=100.0, max_timeout_ms=200.0
        )
        assert seconds == pytest.approx(0.2)
        assert source == "server"

    def test_client_under_cap_stays_client(self):
        seconds, source = resolve_deadline(100.0, max_timeout_ms=200.0)
        assert seconds == pytest.approx(0.1)
        assert source == "client"


class TestExtractRequestMeta:
    def test_passthrough_without_metadata(self):
        payload = {"dataset": "uniform", "radius": 0.1}
        clean, timeout_ms, idem = extract_request_meta(payload)
        assert clean is payload  # identity: nothing copied
        assert timeout_ms is None and idem is None

    def test_strips_metadata_keys(self):
        payload = {
            "dataset": "uniform",
            "radius": 0.1,
            "timeout_ms": 250,
            "idempotency_key": "abc",
        }
        clean, timeout_ms, idem = extract_request_meta(payload)
        assert clean == {"dataset": "uniform", "radius": 0.1}
        assert timeout_ms == 250.0 and idem == "abc"
        assert "timeout_ms" in payload  # original untouched

    @pytest.mark.parametrize(
        "bad", [0, -5, "fast", True, float("nan"), float("inf") * 0]
    )
    def test_rejects_bad_timeout(self, bad):
        with pytest.raises(ValueError, match="timeout_ms"):
            extract_request_meta({"timeout_ms": bad})

    @pytest.mark.parametrize("bad", ["", 123, "x" * 257])
    def test_rejects_bad_idempotency_key(self, bad):
        with pytest.raises(ValueError, match="idempotency_key"):
            extract_request_meta({"idempotency_key": bad})

    def test_error_body_shape(self):
        body = error_body("deadline_exceeded", "too slow")
        assert body == {
            "error": {"code": "deadline_exceeded", "message": "too slow"}
        }


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_after_s=60.0)
        for _ in range(2):
            breaker.record_failure()
            assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.retry_after_s() > 0

    def test_half_open_admits_exactly_one_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_after_s=0.05)
        breaker.record_failure()
        assert breaker.state == "open"
        time.sleep(0.06)
        assert breaker.allow()  # the probe slot
        assert breaker.state == "half_open"
        assert not breaker.allow()  # concurrent callers stay out

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_after_s=0.02)
        breaker.record_failure()
        time.sleep(0.03)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens_immediately(self):
        breaker = CircuitBreaker(failure_threshold=5, reset_after_s=0.02)
        for _ in range(5):
            breaker.record_failure()
        time.sleep(0.03)
        assert breaker.allow()
        breaker.record_failure()  # one failed probe, not five
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_after_s=0)
        assert json.dumps(CircuitBreaker().describe())


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_delay_is_jittered_exponential(self):
        policy = RetryPolicy(retries=6, base_s=0.1, cap_s=1.0, seed=1)
        for attempt in range(6):
            expected = min(1.0, 0.1 * 2**attempt)
            delay = policy.delay(attempt)
            assert 0.5 * expected <= delay <= expected

    def test_delays_truncated_by_budget(self):
        policy = RetryPolicy(
            retries=10, base_s=1.0, cap_s=1.0, budget_s=1.5, seed=2
        )
        delays = list(policy.delays())
        assert sum(delays) <= 1.5 + 1e-9
        assert len(delays) < 10

    def test_delays_count_without_budget_pressure(self):
        policy = RetryPolicy(retries=4, base_s=0.001, budget_s=60.0, seed=3)
        assert len(list(policy.delays())) == 4

    def test_retryable_statuses(self):
        policy = RetryPolicy(statuses=(503, 429))
        assert policy.retryable_status(503)
        assert policy.retryable_status(429)
        assert not policy.retryable_status(408)
        assert not policy.retryable_status(200)

    def test_seeded_determinism(self):
        a = RetryPolicy(retries=5, seed=7)
        b = RetryPolicy(retries=5, seed=7)
        assert [a.delay(i) for i in range(5)] == [b.delay(i) for i in range(5)]
        assert a.new_idempotency_key() == b.new_idempotency_key()
        assert a.new_idempotency_key() != a.new_idempotency_key()


# ----------------------------------------------------------------------
# SharedCacheManager failure containment
# ----------------------------------------------------------------------
class TestSingleFlightFailure:
    def test_failing_build_releases_waiter_promptly(self):
        """Two threads race one failing build: the waiter gets the error
        as soon as the builder fails, never after ``build_wait_s``."""
        manager = SharedCacheManager(build_wait_s=30.0)
        assert manager.get(KEY) is None  # this thread owns the build
        outcome = {}

        def waiter():
            t0 = time.perf_counter()
            try:
                manager.get(KEY)
                outcome["kind"] = "value"
            except BuildFailed as exc:
                outcome["kind"] = "failed"
                outcome["cause"] = exc.cause
            outcome["waited"] = time.perf_counter() - t0

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        boom = RuntimeError("exploded at /secret/path")
        manager.fail(KEY, boom)
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert outcome["kind"] == "failed"
        assert outcome["cause"] is boom
        assert outcome["waited"] < 5.0  # prompt, not build_wait_s
        assert manager.build_failures == 1

    def test_build_failed_message_does_not_leak_cause_str(self):
        exc = BuildFailed(KEY, RuntimeError("exploded at /secret/path"))
        assert "secret" not in str(exc)
        assert "RuntimeError" in str(exc)

    def test_cancelled_build_hands_slot_to_waiter(self):
        """A cooperative cancellation is an abandon, not a failure: no
        breaker hit, and the waiter takes over the build."""
        manager = SharedCacheManager(build_wait_s=30.0)
        assert manager.get(KEY) is None
        got = []

        def waiter():
            got.append(manager.get(KEY))

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        manager.fail(KEY, OperationCancelled("deadline", source="client"))
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert got == [None]  # the waiter now owns the build slot
        assert manager.build_failures == 0
        assert manager.breaker_state(KEY) == "closed"
        manager.abandon(KEY)


class TestBreakerAndStaleTier:
    def test_repeated_failures_trip_breaker_then_recover(self):
        manager = SharedCacheManager(failure_threshold=2, breaker_reset_s=0.05)
        for _ in range(2):
            assert manager.get(KEY) is None
            manager.fail(KEY, RuntimeError("boom"))
        assert manager.breaker_state(KEY) == "open"
        with pytest.raises(CircuitOpen):
            manager.get(KEY)
        time.sleep(0.06)
        assert manager.get(KEY) is None  # half-open probe admitted
        value = _Sized()
        manager.put(KEY, value)
        assert manager.breaker_state(KEY) == "closed"
        assert manager.get(KEY) is value

    def test_stale_served_degraded_while_breaker_open(self):
        manager = SharedCacheManager(
            ttl_s=0.03, failure_threshold=1, breaker_reset_s=60.0
        )
        value = _Sized()
        assert manager.get(KEY) is None
        manager.put(KEY, value)
        time.sleep(0.05)  # age the entry into the stale tier
        assert manager.get(KEY) is None  # expired -> miss, slot claimed
        manager.fail(KEY, RuntimeError("boom"))  # opens (threshold 1)
        token = CancellationToken.with_timeout(10.0, source="client")
        with cancellation_scope(token):
            served = manager.get(KEY)
        assert served is value  # datasets are immutable: same bytes
        assert token.degraded == "stale-adjacency:circuit-open"
        assert manager.stale_served == 1
        info = manager.cache_info()
        assert info["stale_entries"] == 1 and info["stale_served"] == 1

    def test_stale_served_when_deadline_cannot_fit_rebuild(self):
        manager = SharedCacheManager(ttl_s=0.03)
        value = _Sized()
        assert manager.get(KEY) is None
        time.sleep(0.06)  # recorded build time ~60ms
        manager.put(KEY, value)
        time.sleep(0.05)  # expire into the stale tier
        token = CancellationToken.with_timeout(0.02, source="client")
        with cancellation_scope(token):
            served = manager.get(KEY)  # 20ms left < 60ms * safety
        assert served is value
        assert token.degraded == "stale-adjacency:deadline"

    def test_rebuild_proceeds_when_deadline_is_roomy(self):
        manager = SharedCacheManager(ttl_s=0.03)
        assert manager.get(KEY) is None
        manager.put(KEY, _Sized())
        time.sleep(0.05)
        token = CancellationToken.with_timeout(30.0, source="client")
        with cancellation_scope(token):
            assert manager.get(KEY) is None  # plenty of budget: rebuild
        assert token.degraded is None
        manager.abandon(KEY)

    def test_corrupt_entry_detected_and_dropped(self):
        faults = FaultInjector(FaultConfig(seed=0, corrupt_cache_rate=1.0))
        manager = SharedCacheManager(faults=faults)
        value = _Sized()
        assert manager.get(KEY) is None
        manager.put(KEY, value)  # stored copy is poisoned on the way in
        assert manager.get(KEY) is None  # integrity check drops it
        assert manager.corrupt_entries == 1
        assert faults.fired["corrupt_cache"] == 1
        manager.abandon(KEY)

    def test_corrupted_wrapper_never_matches_stamp(self):
        wrapped = CorruptedEntry(_Sized())
        assert type(wrapped).__name__ != type(_Sized()).__name__
        assert wrapped.nbytes == 0


class TestCounterConsistency:
    def test_cache_counters_under_concurrent_mutation(self):
        """Hammer one manager from many threads; client-side tallies
        must equal the manager's counters afterwards and every
        ``cache_info`` snapshot must be internally consistent."""
        manager = SharedCacheManager(
            max_entries=4, ttl_s=0.005, failure_threshold=10_000
        )
        n_threads, n_ops = 6, 120
        tallies = [dict(puts=0, fails=0) for _ in range(n_threads)]
        snapshots_bad = []
        errors = []

        def mutator(tid):
            try:
                for i in range(n_ops):
                    key = ("ds", "euclidean", 0.1 + (i % 6) / 10)
                    try:
                        value = manager.get(key)
                    except BuildFailed:
                        continue
                    if value is not None:
                        continue
                    if i % 7 == 0:
                        manager.fail(key, RuntimeError("x"))
                        tallies[tid]["fails"] += 1
                    elif i % 5 == 0:
                        manager.abandon(key)
                    else:
                        manager.put(key, _Sized(16))
                        tallies[tid]["puts"] += 1
            except BaseException as exc:  # pragma: no cover - surfacing
                errors.append(exc)

        def reader():
            try:
                for _ in range(200):
                    info = manager.cache_info()
                    if info["entries"] != len(info["keys"]):
                        snapshots_bad.append(info)
                    if info["bytes"] != sum(k["bytes"] for k in info["keys"]):
                        snapshots_bad.append(info)
                    json.dumps(info)
            except BaseException as exc:  # pragma: no cover - surfacing
                errors.append(exc)

        threads = [
            threading.Thread(target=mutator, args=(tid,))
            for tid in range(n_threads)
        ] + [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not any(t.is_alive() for t in threads)
        assert not errors, errors
        assert not snapshots_bad
        assert manager.builds == sum(t["puts"] for t in tallies)
        assert manager.build_failures == sum(t["fails"] for t in tallies)
        for counter in (
            manager.hits,
            manager.misses,
            manager.evictions,
            manager.expirations,
            manager.coalesced_builds,
            manager.stale_served,
            manager.corrupt_entries,
        ):
            assert counter >= 0

    def test_inflight_gauge_balanced_under_threads(self):
        registry = DatasetRegistry()
        registry.register_builtin("uniform", n=30, seed=1)
        state = ServiceState(registry, workers=2)
        try:
            def worker():
                for _ in range(500):
                    state.adjust_inflight(1)
                    state.adjust_inflight(-1)

            threads = [threading.Thread(target=worker) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert state.current_inflight() == 0
            assert state.stats()["inflight"] == 0
        finally:
            state.close()


# ----------------------------------------------------------------------
# Fault injection determinism
# ----------------------------------------------------------------------
class TestFaultInjection:
    def test_streams_are_seeded_and_independent(self):
        a = FaultInjector(FaultConfig(seed=5, connection_reset_rate=0.5))
        b = FaultInjector(FaultConfig(seed=5, connection_reset_rate=0.5))
        seq_a = [a.should_reset_connection() for _ in range(30)]
        seq_b = [b.should_reset_connection() for _ in range(30)]
        assert seq_a == seq_b
        assert any(seq_a) and not all(seq_a)

    def test_build_failure_limit_caps_injections(self):
        injector = FaultInjector(
            FaultConfig(seed=1, build_failure_rate=1.0, build_failure_limit=2)
        )
        fired = 0
        for _ in range(5):
            try:
                injector.on_build()
            except InjectedFault as exc:
                assert exc.point == "build_failure"
                fired += 1
        assert fired == 2
        assert injector.fired["build_failure"] == 2

    def test_config_validation(self):
        with pytest.raises(ValueError, match="must be in"):
            FaultConfig(build_failure_rate=1.5)
        with pytest.raises(ValueError, match="must be >="):
            FaultConfig(slow_build_s=-1)
        with pytest.raises(ValueError, match="unknown fault config"):
            FaultConfig.from_dict({"bogus": 1})
        round_tripped = FaultConfig.from_dict(FaultConfig(seed=9).to_dict())
        assert round_tripped.seed == 9

    def test_cooperative_sleep_honours_deadline(self):
        injector = FaultInjector(
            FaultConfig(seed=0, worker_stall_rate=1.0, worker_stall_s=5.0)
        )
        token = CancellationToken.with_timeout(0.05, source="client")
        t0 = time.perf_counter()
        with cancellation_scope(token):
            with pytest.raises(OperationCancelled):
                injector.on_compute()
        assert time.perf_counter() - t0 < 1.0  # cancelled, not slept out


# ----------------------------------------------------------------------
# HTTP semantics
# ----------------------------------------------------------------------
N = 900
SEED = 7
RADIUS = 0.1
ENGINE = {"name": "grid", "options": {"cell_size": RADIUS}}


def _registry() -> DatasetRegistry:
    registry = DatasetRegistry()
    registry.register_builtin("uniform", n=N, seed=SEED)
    return registry


@pytest.fixture(scope="module")
def service():
    state = ServiceState(
        _registry(), cache=SharedCacheManager(max_entries=16), workers=2
    )
    with start_in_thread(state) as running:
        yield running


@pytest.fixture()
def client(service):
    with ServiceClient(service.host, service.port) as c:
        yield c


class TestHTTPDeadlines:
    def test_tiny_timeout_is_408_and_releases_slot(self, service, client):
        with pytest.raises(ServiceError) as excinfo:
            client.select("uniform", 0.07, engine=ENGINE, timeout_ms=0.01)
        assert excinfo.value.status == 408
        assert excinfo.value.code == "deadline_exceeded"
        deadline = time.monotonic() + 5.0
        stats = client.stats()
        while stats["inflight"] > 0 and time.monotonic() < deadline:
            time.sleep(0.02)
            stats = client.stats()
        assert stats["inflight"] == 0  # the slot came back
        assert stats["timeouts"] >= 1
        assert stats["responses"].get("408", 0) >= 1

    def test_server_cap_is_504(self):
        state = ServiceState(_registry(), workers=1, max_timeout_ms=0.01)
        with start_in_thread(state) as running:
            with ServiceClient(running.host, running.port) as c:
                with pytest.raises(ServiceError) as excinfo:
                    c.select("uniform", RADIUS, engine=ENGINE, timeout_ms=60_000)
        assert excinfo.value.status == 504
        assert excinfo.value.code == "server_deadline_exceeded"

    def test_server_default_timeout_applies_without_client_budget(self):
        state = ServiceState(_registry(), workers=1, default_timeout_ms=0.01)
        with start_in_thread(state) as running:
            with ServiceClient(running.host, running.port) as c:
                status, payload = c.request(
                    "POST",
                    "/select",
                    {"dataset": "uniform", "radius": RADIUS, "engine": ENGINE},
                )
        assert status == 504
        assert payload["error"]["code"] == "server_deadline_exceeded"

    def test_bad_timeout_ms_is_400(self, client):
        status, payload = client.request(
            "POST",
            "/select",
            {"dataset": "uniform", "radius": RADIUS, "timeout_ms": -5},
        )
        assert status == 400
        assert payload["error"]["code"] == "bad_request"
        assert "timeout_ms" in payload["error"]["message"]


class TestHTTPErrorsAndIdempotency:
    def test_structured_error_bodies(self, client):
        for path, payload, expected_code in (
            ("/select", {"dataset": "missing", "radius": 0.1}, "not_found"),
            ("/select", {"dataset": "uniform"}, "bad_request"),
        ):
            status, body = client.request("POST", path, payload)
            assert set(body) == {"error"}
            assert set(body["error"]) == {"code", "message"}
            assert body["error"]["code"] == expected_code

    def test_idempotent_replay_skips_recompute(self, service, client):
        payload = {
            "dataset": "uniform",
            "radius": 0.09,
            "engine": ENGINE,
            "idempotency_key": "replay-me",
        }
        before = client.stats()["computations"]
        status1, first = client.request("POST", "/select", payload)
        status2, second = client.request("POST", "/select", payload)
        assert status1 == status2 == 200
        assert first["result"]["selected"] == second["result"]["selected"]
        assert second["coalesced"] is True
        after = client.stats()["computations"]
        assert after - before == 1  # the replay computed nothing

    def test_injected_build_failure_is_503_and_retry_recovers(self):
        faults = FaultInjector(
            FaultConfig(seed=2, build_failure_rate=1.0, build_failure_limit=1)
        )
        state = ServiceState(
            _registry(),
            cache=SharedCacheManager(max_entries=16, faults=faults),
            workers=2,
            faults=faults,
        )
        with start_in_thread(state) as running:
            with ServiceClient(running.host, running.port) as bare:
                with pytest.raises(ServiceError) as excinfo:
                    bare.select("uniform", RADIUS, engine=ENGINE)
            assert excinfo.value.status == 503
            assert excinfo.value.code in ("injected_fault", "build_failed")
            retrying = ServiceClient(
                running.host,
                running.port,
                retry=RetryPolicy(retries=3, base_s=0.01, seed=0),
            )
            with retrying:
                response = retrying.select("uniform", RADIUS, engine=ENGINE)
            assert response["result"]["selected"]
            assert response["degraded"] is False


# ----------------------------------------------------------------------
# Chaos suite: the 4-client zoom trace under fault mixes
# ----------------------------------------------------------------------
def _assert_chaos_invariants(outcome: dict) -> None:
    # Zero hung requests: every request resolved to some status.
    assert outcome["requests"] == outcome["expected_requests"]
    # Every success (degraded or not) byte-identical to the clean run.
    assert outcome["byte_identical"], outcome["mismatched_radii"]
    # Cancelled/failed work released its executor slot.
    assert outcome["inflight_final"] == 0


class TestChaosSuite:
    def test_no_fault_control_run(self):
        outcome = run_chaos_trace(None, n=800)
        _assert_chaos_invariants(outcome)
        assert outcome["successes"] == outcome["requests"]
        assert outcome["failures"] == 0

    def test_build_failures_and_slow_builds(self):
        outcome = run_chaos_trace(
            {
                "seed": 3,
                "build_failure_rate": 0.5,
                "build_failure_limit": 3,
                "slow_build_rate": 0.5,
                "slow_build_s": 0.03,
            },
            n=800,
        )
        _assert_chaos_invariants(outcome)
        fired = outcome["faults_fired"]
        assert fired["build_failure"] >= 1
        # Retry-enabled clients rode the failures out.
        assert outcome["successes"] == outcome["requests"]

    def test_connection_resets(self):
        outcome = run_chaos_trace(
            {"seed": 11, "connection_reset_rate": 0.2}, n=800
        )
        _assert_chaos_invariants(outcome)
        assert outcome["faults_fired"]["connection_reset"] >= 1
        assert outcome["successes"] == outcome["requests"]

    def test_corruption_and_worker_stalls(self):
        outcome = run_chaos_trace(
            {
                "seed": 5,
                "corrupt_cache_rate": 0.4,
                "worker_stall_rate": 0.3,
                "worker_stall_s": 0.02,
            },
            n=800,
        )
        _assert_chaos_invariants(outcome)
        fired = outcome["faults_fired"]
        assert fired["corrupt_cache"] + fired["worker_stall"] >= 1
        assert outcome["successes"] == outcome["requests"]

    def test_deadlines_under_slow_builds(self):
        """Tight budgets + injected slow builds: timed-out requests are
        counted, nothing hangs, and whatever succeeded is still exact."""
        outcome = run_chaos_trace(
            {"seed": 13, "slow_build_rate": 1.0, "slow_build_s": 0.25},
            n=800,
            timeout_ms=150.0,
            retry=RetryPolicy(retries=0),
        )
        _assert_chaos_invariants(outcome)
        assert outcome["timeouts"] >= 1
        assert outcome["status_counts"].get("408", 0) >= 1

"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert capsys.readouterr().out.strip()


class TestInfo:
    def test_lists_inventory(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "datasets:" in out
        assert "Gr-G-DisC" in out


class TestSelect:
    def test_human_output(self, capsys):
        assert main([
            "select", "--dataset", "uniform", "--n", "200",
            "--radius", "0.2",
        ]) == 0
        out = capsys.readouterr().out
        assert "diverse objects" in out
        assert "OK" in out

    def test_json_output(self, capsys):
        assert main([
            "select", "--dataset", "clustered", "--n", "200",
            "--radius", "0.2", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["covering"] is True
        assert payload["independent"] is True
        assert payload["size"] == len(payload["selected"])

    def test_plot_output(self, capsys):
        assert main([
            "select", "--dataset", "uniform", "--n", "150",
            "--radius", "0.3", "--plot",
        ]) == 0
        out = capsys.readouterr().out
        assert "@" in out  # selected markers on the ASCII map

    def test_methods(self, capsys):
        for method in ("basic", "greedy-c", "fast-c"):
            assert main([
                "select", "--dataset", "uniform", "--n", "150",
                "--radius", "0.25", "--method", method,
            ]) == 0


class TestZoom:
    def test_zoom_in(self, capsys):
        assert main([
            "zoom", "--dataset", "uniform", "--n", "200",
            "--radius", "0.2", "--to", "0.1",
        ]) == 0
        out = capsys.readouterr().out
        assert "zoom-in" in out
        assert "Jaccard" in out

    def test_zoom_out(self, capsys):
        assert main([
            "zoom", "--dataset", "uniform", "--n", "200",
            "--radius", "0.1", "--to", "0.3",
        ]) == 0
        assert "zoom-out" in capsys.readouterr().out

    def test_equal_radii_rejected(self):
        with pytest.raises(SystemExit):
            main(["zoom", "--dataset", "uniform", "--n", "100",
                  "--radius", "0.2", "--to", "0.2"])


class TestCompareAndTable3:
    def test_compare(self, capsys):
        assert main([
            "compare", "--dataset", "clustered", "--n", "250",
            "--radius", "0.2",
        ]) == 0
        out = capsys.readouterr().out
        assert "DisC" in out and "k-medoids" in out

    def test_table3_runs_on_cameras(self, capsys):
        # Cameras is the cheapest full sub-table.
        assert main(["table3", "--dataset", "Cameras"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "B-DisC" in out

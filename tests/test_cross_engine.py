"""Cross-engine integration: every index engine must drive the
heuristics to the same answers.

Greedy-DisC's decisions depend only on neighborhood *contents* (counts +
membership), never on index internals, and the priority structure breaks
ties deterministically by object id — so brute force, grid, KD-tree and
M-tree must produce *identical* selections.  Basic-DisC depends on the
iteration order, which the M-tree intentionally changes (leaf order), so
there only validity is shared.
"""

import numpy as np
import pytest

from repro.core import basic_disc, greedy_c, greedy_disc, verify_disc, zoom_in
from repro.distance import EUCLIDEAN
from repro.index import BruteForceIndex, GridIndex, KDTreeIndex
from repro.mtree import MTreeIndex

RADII = [0.06, 0.15, 0.35]


def all_engines(points):
    return {
        "brute": BruteForceIndex(points, EUCLIDEAN),
        "brute-legacy": BruteForceIndex(points, EUCLIDEAN, accelerate=False),
        "grid": GridIndex(points, EUCLIDEAN, cell_size=0.07),
        "kdtree": KDTreeIndex(points, EUCLIDEAN),
        "mtree": MTreeIndex(points, EUCLIDEAN, capacity=8),
    }


class TestGreedyIdenticalAcrossEngines:
    @pytest.mark.parametrize("radius", RADII)
    def test_greedy_disc(self, medium_uniform, radius):
        selections = {
            name: greedy_disc(index, radius).selected
            for name, index in all_engines(medium_uniform).items()
        }
        reference = selections.pop("brute")
        for name, selected in selections.items():
            assert selected == reference, name

    def test_greedy_c(self, medium_uniform):
        selections = {
            name: greedy_c(index, 0.15).selected
            for name, index in all_engines(medium_uniform).items()
        }
        reference = selections.pop("brute")
        for name, selected in selections.items():
            assert selected == reference, name


class TestBasicValidEverywhere:
    @pytest.mark.parametrize("radius", RADII)
    def test_basic_disc_valid(self, medium_uniform, radius):
        for name, index in all_engines(medium_uniform).items():
            result = basic_disc(index, radius)
            report = verify_disc(medium_uniform, EUCLIDEAN, result.selected, radius)
            assert report.is_disc_diverse, (name, str(report))


class TestZoomAcrossEngines:
    def test_zoom_in_identical_for_order_free_engines(self, medium_uniform):
        """Greedy zoom-in decisions are order-free, so simple engines
        (which share ascending-id iteration) must agree exactly."""
        outcomes = {}
        for name in ("brute", "brute-legacy", "kdtree", "grid"):
            index = all_engines(medium_uniform)[name]
            coarse = greedy_disc(index, 0.3, track_closest_black=True)
            fine = zoom_in(index, coarse, 0.15, greedy=True)
            outcomes[name] = fine.selected
        reference = outcomes.pop("brute")
        for name, selected in outcomes.items():
            assert selected == reference, name

    def test_zoom_valid_on_mtree(self, medium_uniform):
        index = MTreeIndex(medium_uniform, EUCLIDEAN, capacity=8)
        coarse = greedy_disc(index, 0.3, track_closest_black=True)
        fine = zoom_in(index, coarse, 0.15, greedy=True)
        report = verify_disc(medium_uniform, EUCLIDEAN, fine.selected, 0.15)
        assert report.is_disc_diverse

"""M-tree range-query correctness against the brute-force oracle."""

import numpy as np
import pytest

from repro.core.coloring import Coloring
from repro.distance import EUCLIDEAN, HAMMING, MANHATTAN
from repro.index import BruteForceIndex
from repro.mtree import MTreeIndex


@pytest.fixture(params=["min_overlap", "max_spread", "balanced", "random"])
def policy(request):
    return request.param


class TestTopDownQueries:
    @pytest.mark.parametrize("metric", [EUCLIDEAN, MANHATTAN], ids=lambda m: m.name)
    def test_matches_oracle(self, medium_uniform, metric, policy):
        mtree = MTreeIndex(medium_uniform, metric, capacity=6, split_policy=policy)
        brute = BruteForceIndex(medium_uniform, metric)
        for center in (0, 42, 150, 299):
            for radius in (0.01, 0.08, 0.3):
                assert sorted(mtree.range_query(center, radius)) == sorted(
                    brute.range_query(center, radius)
                )

    def test_hamming_queries(self, categorical_points):
        mtree = MTreeIndex(categorical_points, HAMMING, capacity=4)
        brute = BruteForceIndex(categorical_points, HAMMING)
        for center in range(0, 40, 5):
            for radius in (1, 2, 3):
                assert sorted(mtree.range_query(center, radius)) == sorted(
                    brute.range_query(center, radius)
                )

    def test_free_point_query(self, medium_uniform):
        mtree = MTreeIndex(medium_uniform, EUCLIDEAN, capacity=6)
        q = np.array([0.5, 0.5])
        d = EUCLIDEAN.to_point(medium_uniform, q)
        expected = sorted(np.nonzero(d <= 0.2)[0])
        assert sorted(mtree.range_query_point(q, 0.2)) == expected

    def test_zero_radius_returns_duplicates_only(self):
        points = np.vstack([[0.3, 0.3], [0.3, 0.3], [0.6, 0.6]])
        mtree = MTreeIndex(points, EUCLIDEAN, capacity=3)
        assert sorted(mtree.range_query(0, 0.0)) == [1]

    def test_node_accesses_counted(self, medium_uniform):
        mtree = MTreeIndex(medium_uniform, EUCLIDEAN, capacity=6)
        before = mtree.stats.node_accesses
        mtree.range_query(0, 0.1)
        assert mtree.stats.node_accesses > before

    def test_small_radius_cheaper_than_large(self, medium_uniform):
        mtree = MTreeIndex(medium_uniform, EUCLIDEAN, capacity=6)
        mtree.stats.reset()
        mtree.range_query(0, 0.02)
        small = mtree.stats.node_accesses
        mtree.stats.reset()
        mtree.range_query(0, 0.9)
        large = mtree.stats.node_accesses
        assert small < large


class TestBottomUpQueries:
    def test_matches_top_down(self, medium_uniform, policy):
        mtree = MTreeIndex(medium_uniform, EUCLIDEAN, capacity=6, split_policy=policy)
        for center in (0, 99, 250):
            for radius in (0.05, 0.15):
                top = sorted(mtree.range_query(center, radius))
                bottom = sorted(mtree.range_query(center, radius, bottom_up=True))
                assert top == bottom

    def test_unknown_object_raises(self, small_uniform):
        mtree = MTreeIndex(small_uniform, EUCLIDEAN, capacity=5)
        with pytest.raises(KeyError):
            mtree.tree.range_query_bottom_up(999, 0.1)


class TestGreyPruning:
    def test_pruned_query_skips_only_grey_objects(self, medium_uniform):
        """A pruned query may omit objects in grey subtrees, but every
        white object in range must still be returned."""
        mtree = MTreeIndex(medium_uniform, EUCLIDEAN, capacity=5)
        brute = BruteForceIndex(medium_uniform, EUCLIDEAN)
        coloring = Coloring(len(medium_uniform))
        rng = np.random.default_rng(0)
        for i in rng.choice(len(medium_uniform), size=150, replace=False):
            coloring.set_grey(int(i))
        mtree.attach_coloring(coloring)
        for center in (0, 10, 200):
            full = set(brute.range_query(center, 0.2))
            pruned = set(mtree.range_query(center, 0.2, prune=True))
            assert pruned <= full
            whites_in_range = {i for i in full if coloring.is_white(i)}
            assert whites_in_range <= pruned
        mtree.detach_coloring()

    def test_pruning_reduces_accesses(self, medium_uniform):
        mtree = MTreeIndex(medium_uniform, EUCLIDEAN, capacity=5)
        coloring = Coloring(len(medium_uniform))
        # Grey out everything: every subtree becomes skippable.
        for i in range(len(medium_uniform)):
            coloring.set_grey(i)
        mtree.attach_coloring(coloring)
        mtree.stats.reset()
        mtree.range_query(0, 0.3, prune=True)
        pruned = mtree.stats.node_accesses
        mtree.stats.reset()
        mtree.range_query(0, 0.3, prune=False)
        unpruned = mtree.stats.node_accesses
        assert pruned < unpruned
        mtree.detach_coloring()

    def test_grey_flags_propagate_and_clear(self, small_uniform):
        mtree = MTreeIndex(small_uniform, EUCLIDEAN, capacity=5)
        coloring = Coloring(len(small_uniform))
        mtree.attach_coloring(coloring)
        for i in range(len(small_uniform)):
            coloring.set_grey(i)
        assert mtree.tree.root.grey
        coloring.set_white(7)
        assert not mtree.tree.root.grey
        assert not mtree.tree.leaf_of[7].grey
        mtree.detach_coloring()

    def test_detach_resets_grey(self, small_uniform):
        mtree = MTreeIndex(small_uniform, EUCLIDEAN, capacity=5)
        coloring = Coloring(len(small_uniform))
        mtree.attach_coloring(coloring)
        for i in range(len(small_uniform)):
            coloring.set_grey(i)
        mtree.detach_coloring()
        assert not any(node.grey for node in mtree.tree.nodes())

    def test_coloring_size_mismatch(self, small_uniform):
        mtree = MTreeIndex(small_uniform, EUCLIDEAN, capacity=5)
        with pytest.raises(ValueError, match="coloring"):
            mtree.attach_coloring(Coloring(3))


class TestBuildTimeNeighborhoods:
    def test_build_sizes_match_post_hoc(self, medium_uniform):
        radius = 0.1
        with_build = MTreeIndex(
            medium_uniform, EUCLIDEAN, capacity=6, build_radius=radius
        )
        without = MTreeIndex(medium_uniform, EUCLIDEAN, capacity=6)
        assert np.array_equal(
            with_build.neighborhood_sizes(radius), without.neighborhood_sizes(radius)
        )

    def test_precompute_cost_charged_once(self, medium_uniform):
        radius = 0.1
        index = MTreeIndex(medium_uniform, EUCLIDEAN, capacity=6, build_radius=radius)
        assert index.stats.node_accesses == 0
        index.neighborhood_sizes(radius)
        first = index.stats.node_accesses
        assert first > 0
        index.neighborhood_sizes(radius)
        assert index.stats.node_accesses == first

    def test_other_radius_falls_back_to_queries(self, medium_uniform):
        index = MTreeIndex(medium_uniform, EUCLIDEAN, capacity=6, build_radius=0.1)
        sizes = index.neighborhood_sizes(0.05)
        oracle = BruteForceIndex(medium_uniform, EUCLIDEAN).neighborhood_sizes(0.05)
        assert np.array_equal(sizes, oracle)

    def test_leaf_order_ids(self, medium_uniform):
        index = MTreeIndex(medium_uniform, EUCLIDEAN, capacity=6)
        ids = list(index.ids())
        assert sorted(ids) == list(range(len(medium_uniform)))
        # Leaf order is a locality order, not ascending id order.
        assert ids != list(range(len(medium_uniform)))

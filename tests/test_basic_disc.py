"""Tests for Basic-DisC across all index engines (Section 2.3)."""

import numpy as np
import pytest

from repro.core import basic_disc, verify_disc
from repro.distance import EUCLIDEAN, HAMMING
from repro.index import BruteForceIndex
from repro.mtree import MTreeIndex

RADII = [0.05, 0.15, 0.4]


class TestDiscInvariants:
    @pytest.mark.parametrize("radius", RADII)
    def test_output_is_disc_diverse(self, medium_uniform, index_factory, radius):
        _, factory = index_factory
        index = factory(medium_uniform, EUCLIDEAN)
        result = basic_disc(index, radius)
        report = verify_disc(medium_uniform, EUCLIDEAN, result.selected, radius)
        assert report.is_disc_diverse, str(report)

    def test_clustered_points(self, small_clustered):
        index = BruteForceIndex(small_clustered, EUCLIDEAN)
        result = basic_disc(index, 0.1)
        report = verify_disc(small_clustered, EUCLIDEAN, result.selected, 0.1)
        assert report.is_disc_diverse

    def test_hamming_disc(self, categorical_points):
        index = BruteForceIndex(categorical_points, HAMMING)
        result = basic_disc(index, 2)
        report = verify_disc(categorical_points, HAMMING, result.selected, 2)
        assert report.is_disc_diverse

    def test_pruned_output_also_diverse(self, medium_uniform):
        index = MTreeIndex(medium_uniform, EUCLIDEAN, capacity=6)
        result = basic_disc(index, 0.1, prune=True)
        report = verify_disc(medium_uniform, EUCLIDEAN, result.selected, 0.1)
        assert report.is_disc_diverse

    def test_pruned_and_unpruned_agree(self, medium_uniform):
        """Pruning only skips already-grey objects, so the selections are
        identical for the same traversal order."""
        a = basic_disc(MTreeIndex(medium_uniform, EUCLIDEAN, capacity=6), 0.1)
        b = basic_disc(
            MTreeIndex(medium_uniform, EUCLIDEAN, capacity=6), 0.1, prune=True
        )
        assert a.selected == b.selected

    def test_pruning_saves_accesses(self, medium_uniform):
        plain = basic_disc(MTreeIndex(medium_uniform, EUCLIDEAN, capacity=6), 0.05)
        pruned = basic_disc(
            MTreeIndex(medium_uniform, EUCLIDEAN, capacity=6), 0.05, prune=True
        )
        assert pruned.node_accesses < plain.node_accesses


class TestEdgeCases:
    def test_zero_radius_selects_representatives_of_duplicates(self):
        points = np.array([[0.1, 0.1], [0.1, 0.1], [0.5, 0.5]])
        index = BruteForceIndex(points, EUCLIDEAN)
        result = basic_disc(index, 0.0)
        # Exactly one of the duplicate pair plus the singleton.
        assert result.size == 2

    def test_huge_radius_selects_single_object(self, small_uniform):
        index = BruteForceIndex(small_uniform, EUCLIDEAN)
        result = basic_disc(index, 10.0)
        assert result.size == 1

    def test_negative_radius_rejected(self, small_uniform):
        index = BruteForceIndex(small_uniform, EUCLIDEAN)
        with pytest.raises(ValueError, match="radius"):
            basic_disc(index, -0.1)

    def test_single_point(self):
        index = BruteForceIndex(np.array([[0.5, 0.5]]), EUCLIDEAN)
        result = basic_disc(index, 0.1)
        assert result.selected == [0]


class TestResultMetadata:
    def test_result_fields(self, small_uniform):
        index = MTreeIndex(small_uniform, EUCLIDEAN, capacity=5)
        result = basic_disc(index, 0.2)
        assert result.algorithm == "Basic-DisC"
        assert result.radius == 0.2
        assert result.size == len(result.selected)
        assert result.node_accesses > 0
        assert result.coloring is not None
        assert sorted(result.coloring.blacks()) == sorted(result.selected)

    def test_closest_black_tracking(self, small_uniform):
        index = BruteForceIndex(small_uniform, EUCLIDEAN)
        result = basic_disc(index, 0.2, track_closest_black=True)
        assert result.closest_black is not None
        # Every object is covered, so every distance is at most r.
        assert np.all(result.closest_black <= 0.2 + 1e-9)
        for black in result.selected:
            assert result.closest_black[black] == 0.0

    def test_selection_order_follows_index_order(self, medium_uniform):
        index = MTreeIndex(medium_uniform, EUCLIDEAN, capacity=6)
        result = basic_disc(index, 0.1)
        order = {oid: pos for pos, oid in enumerate(index.ids())}
        positions = [order[s] for s in result.selected]
        assert positions == sorted(positions)

    def test_detaches_coloring_on_exit(self, small_uniform):
        index = MTreeIndex(small_uniform, EUCLIDEAN, capacity=5)
        basic_disc(index, 0.2)
        assert index._coloring is None
        assert not index.tree._frozen

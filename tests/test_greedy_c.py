"""Tests for Greedy-C and Fast-C (coverage-only heuristics)."""

import numpy as np
import pytest

from repro.core import fast_c, greedy_c, greedy_disc, verify_disc
from repro.core.verify import coverage_violations
from repro.distance import EUCLIDEAN, HAMMING
from repro.index import BruteForceIndex
from repro.mtree import MTreeIndex


class TestGreedyC:
    @pytest.mark.parametrize("radius", [0.05, 0.15, 0.4])
    def test_output_covers_everything(self, medium_uniform, radius):
        index = BruteForceIndex(medium_uniform, EUCLIDEAN)
        result = greedy_c(index, radius)
        assert coverage_violations(medium_uniform, EUCLIDEAN, result.selected, radius) == []

    def test_independence_not_required(self, small_clustered):
        """Greedy-C may legitimately pick dependent objects; we only
        assert it never *must* be independent — i.e. the verifier's
        coverage check passes regardless of the independence check."""
        index = BruteForceIndex(small_clustered, EUCLIDEAN)
        result = greedy_c(index, 0.15)
        report = verify_disc(small_clustered, EUCLIDEAN, result.selected, 0.15)
        assert report.is_covering

    def test_on_observation3_configuration(self):
        """Figure 4's star construction: a hub covering two wings.  An
        independent dominating set needs 3 objects; a covering set can
        do it with 2 by keeping a dependent pair.  Greedy-C must find a
        solution no larger than Greedy-DisC's."""
        points = np.array(
            [[0.0, 0.0], [0.3, 0.0], [0.6, 0.0], [0.9, 0.0], [1.2, 0.0], [1.5, 0.0]]
        )
        index_c = BruteForceIndex(points, EUCLIDEAN)
        index_d = BruteForceIndex(points, EUCLIDEAN)
        c = greedy_c(index_c, 0.35)
        d = greedy_disc(index_d, 0.35)
        assert c.size <= d.size

    def test_hamming(self, categorical_points):
        result = greedy_c(BruteForceIndex(categorical_points, HAMMING), 2)
        assert coverage_violations(categorical_points, HAMMING, result.selected, 2) == []

    def test_size_close_to_greedy_disc(self, medium_uniform):
        """Section 6: raising the independence requirement does not lead
        to much smaller subsets."""
        disc = greedy_disc(BruteForceIndex(medium_uniform, EUCLIDEAN), 0.1)
        cover = greedy_c(BruteForceIndex(medium_uniform, EUCLIDEAN), 0.1)
        assert cover.size <= disc.size * 1.2

    def test_metadata(self, small_uniform):
        result = greedy_c(BruteForceIndex(small_uniform, EUCLIDEAN), 0.2)
        assert result.algorithm == "Greedy-C"
        assert result.meta["covering_only"] is True


class TestFastC:
    def test_covers_everything_on_mtree(self, medium_uniform):
        index = MTreeIndex(medium_uniform, EUCLIDEAN, capacity=10)
        result = fast_c(index, 0.1)
        assert coverage_violations(medium_uniform, EUCLIDEAN, result.selected, 0.1) == []

    def test_degrades_to_greedy_c_without_tree(self, medium_uniform):
        index = BruteForceIndex(medium_uniform, EUCLIDEAN)
        fast = fast_c(index, 0.1)
        plain = greedy_c(BruteForceIndex(medium_uniform, EUCLIDEAN), 0.1)
        assert fast.selected == plain.selected
        assert fast.meta["bottom_up"] is False

    def test_not_smaller_than_greedy_c(self, medium_uniform):
        """Truncated queries can only miss coverage opportunities, so
        Fast-C's solution is at least as large."""
        fast = fast_c(MTreeIndex(medium_uniform, EUCLIDEAN, capacity=10), 0.1)
        plain = greedy_c(MTreeIndex(medium_uniform, EUCLIDEAN, capacity=10), 0.1)
        assert fast.size >= plain.size

    def test_cheaper_per_query_on_large_capacity_tree(self, rng):
        """With paper-like capacity the truncated queries save accesses
        (Section 6 reports ~30% on 10k points)."""
        points = rng.random((600, 2))
        fast = fast_c(MTreeIndex(points, EUCLIDEAN, capacity=50), 0.08)
        plain = greedy_c(MTreeIndex(points, EUCLIDEAN, capacity=50), 0.08)
        assert fast.node_accesses < plain.node_accesses

"""Unit tests for the brute-force and grid neighbor indexes."""

import numpy as np
import pytest

from repro.distance import EUCLIDEAN, HAMMING, MANHATTAN
from repro.index import BruteForceIndex, GridIndex
from repro.index.base import IndexStats


def oracle_neighbors(points, metric, center_id, radius):
    d = metric.to_point(points, points[center_id])
    return sorted(i for i in np.nonzero(d <= radius)[0] if i != center_id)


class TestIndexStats:
    def test_reset_keeps_build_counters(self):
        stats = IndexStats(range_queries=3, node_accesses=9, build_node_accesses=4)
        stats.reset()
        assert stats.range_queries == 0
        assert stats.node_accesses == 0
        assert stats.build_node_accesses == 4

    def test_subtraction(self):
        a = IndexStats(range_queries=5, node_accesses=10)
        b = IndexStats(range_queries=2, node_accesses=4)
        delta = a - b
        assert delta.range_queries == 3
        assert delta.node_accesses == 6

    def test_snapshot_is_independent(self):
        stats = IndexStats(range_queries=1)
        snap = stats.snapshot()
        stats.range_queries = 99
        assert snap.range_queries == 1


class TestBruteForceIndex:
    def test_range_query_matches_oracle(self, medium_uniform):
        index = BruteForceIndex(medium_uniform, EUCLIDEAN)
        for center in (0, 17, 123):
            got = sorted(index.range_query(center, 0.1))
            assert got == oracle_neighbors(medium_uniform, EUCLIDEAN, center, 0.1)

    def test_include_self(self, small_uniform):
        index = BruteForceIndex(small_uniform, EUCLIDEAN)
        with_self = index.range_query(5, 0.1, include_self=True)
        without = index.range_query(5, 0.1)
        assert 5 in with_self and 5 not in without
        assert set(with_self) - set(without) == {5}

    def test_cached_queries_match_uncached(self, small_uniform):
        plain = BruteForceIndex(small_uniform, EUCLIDEAN)
        cached = BruteForceIndex(small_uniform, EUCLIDEAN, cache_radius=0.15)
        for center in range(0, 60, 7):
            assert sorted(cached.range_query(center, 0.15)) == sorted(
                plain.range_query(center, 0.15)
            )

    def test_neighborhood_sizes(self, small_uniform):
        index = BruteForceIndex(small_uniform, EUCLIDEAN)
        sizes = index.neighborhood_sizes(0.2)
        for i in range(len(small_uniform)):
            assert sizes[i] == len(oracle_neighbors(small_uniform, EUCLIDEAN, i, 0.2))

    def test_hamming_support(self, categorical_points):
        index = BruteForceIndex(categorical_points, HAMMING)
        got = sorted(index.range_query(0, 2))
        assert got == oracle_neighbors(categorical_points, HAMMING, 0, 2)

    def test_range_query_point_free_point(self, small_uniform):
        index = BruteForceIndex(small_uniform, EUCLIDEAN)
        hits = index.range_query_point(np.array([0.5, 0.5]), 0.2)
        d = EUCLIDEAN.to_point(small_uniform, np.array([0.5, 0.5]))
        assert sorted(hits) == sorted(np.nonzero(d <= 0.2)[0])

    def test_rejects_empty_points(self):
        with pytest.raises(ValueError, match="empty"):
            BruteForceIndex(np.empty((0, 2)), EUCLIDEAN)

    def test_stats_counted(self, small_uniform):
        index = BruteForceIndex(small_uniform, EUCLIDEAN)
        index.range_query(0, 0.1)
        assert index.stats.range_queries == 1
        assert index.stats.distance_computations >= len(small_uniform)

    def test_validate_ids(self, small_uniform):
        index = BruteForceIndex(small_uniform, EUCLIDEAN)
        index.validate_ids([0, 59])
        with pytest.raises(IndexError):
            index.validate_ids([60])


class TestGridIndex:
    @pytest.mark.parametrize("metric", [EUCLIDEAN, MANHATTAN], ids=lambda m: m.name)
    @pytest.mark.parametrize("cell_size", [0.03, 0.08, 0.25])
    def test_matches_brute_force(self, medium_uniform, metric, cell_size):
        grid = GridIndex(medium_uniform, metric, cell_size=cell_size)
        brute = BruteForceIndex(medium_uniform, metric)
        for center in (0, 50, 299):
            for radius in (0.02, 0.1, 0.3):
                assert sorted(grid.range_query(center, radius)) == sorted(
                    brute.range_query(center, radius)
                )

    def test_rejects_hamming(self, categorical_points):
        with pytest.raises(TypeError, match="Hamming"):
            GridIndex(categorical_points, HAMMING)

    def test_rejects_bad_cell_size(self, small_uniform):
        with pytest.raises(ValueError, match="cell_size"):
            GridIndex(small_uniform, EUCLIDEAN, cell_size=0.0)

    def test_query_outside_data_bbox(self, small_uniform):
        grid = GridIndex(small_uniform, EUCLIDEAN, cell_size=0.1)
        assert grid.range_query_point(np.array([5.0, 5.0]), 0.1) == []

    def test_ids_iteration_order(self, small_uniform):
        grid = GridIndex(small_uniform, EUCLIDEAN)
        assert list(grid.ids()) == list(range(len(small_uniform)))

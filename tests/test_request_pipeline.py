"""The typed request pipeline: parity, JSON round-trips, registry errors.

The redesign's contract (ISSUE 4): selections through the new
``SelectRequest``/``DiscSession`` pipeline are byte-identical to the
legacy ``disc_select``/direct-heuristic calls across every engine and
``accelerate`` gate, requests and results survive a JSON round-trip,
and the engine registry produces the capability-derived errors that
replaced the old ``inspect.signature`` hacks.
"""

import json

import numpy as np
import pytest

from repro import (
    DiscSession,
    EngineSpec,
    SelectRequest,
    disc_select,
    execute_request,
    uniform_dataset,
)
from repro.core import DiscResult, basic_disc, greedy_c, greedy_disc
from repro.distance import EUCLIDEAN, HAMMING
from repro.engines import AdjacencyCache, registry
from repro.index import BruteForceIndex, GridIndex, KDTreeIndex
from repro.index.base import IndexStats
from repro.mtree import MTreeIndex


@pytest.fixture(scope="module")
def dataset():
    return uniform_dataset(n=250, seed=11)


RADIUS = 0.15

#: (engine name, accelerate, legacy index factory) — the parity matrix.
ENGINES = [
    ("brute", "auto", lambda d: BruteForceIndex(d.points, d.metric)),
    ("brute", False, lambda d: BruteForceIndex(d.points, d.metric, accelerate=False)),
    ("grid", "auto", lambda d: GridIndex(d.points, d.metric)),
    ("grid", False, lambda d: _legacy(GridIndex(d.points, d.metric))),
    ("kdtree", "auto", lambda d: KDTreeIndex(d.points, d.metric)),
    ("kdtree", False, lambda d: _legacy(KDTreeIndex(d.points, d.metric))),
    ("mtree", "auto", lambda d: MTreeIndex(d.points, d.metric)),
    ("mtree", False, lambda d: _legacy(MTreeIndex(d.points, d.metric))),
]


def _legacy(index):
    index.accelerate = False
    return index


METHOD_FUNCS = {"basic": basic_disc, "greedy": greedy_disc, "greedy-c": greedy_c}


# ----------------------------------------------------------------------
# Parity: pipeline == legacy, across engines x accelerate x methods
# ----------------------------------------------------------------------
class TestPipelineParity:
    @pytest.mark.parametrize("engine,accelerate,factory", ENGINES)
    @pytest.mark.parametrize("method", sorted(METHOD_FUNCS))
    def test_request_pipeline_matches_legacy(
        self, dataset, engine, accelerate, factory, method
    ):
        legacy = METHOD_FUNCS[method](factory(dataset), RADIUS)

        spec = EngineSpec(name=engine, accelerate=accelerate)
        request = SelectRequest(radius=RADIUS, method=method, engine=spec)
        via_request = execute_request(dataset, request)
        assert via_request.selected == legacy.selected
        assert via_request.algorithm == legacy.algorithm

        via_shim = disc_select(
            dataset, RADIUS, method=method, engine=engine,
            engine_options={"accelerate": accelerate},
        )
        assert via_shim.selected == legacy.selected

        session = DiscSession(dataset, engine=engine, accelerate=accelerate)
        via_session = session.select(RADIUS, method=method)
        assert via_session.selected == legacy.selected

    @pytest.mark.parametrize("engine,accelerate,factory", ENGINES)
    def test_wire_format_round_trip_preserves_selection(
        self, dataset, engine, accelerate, factory
    ):
        """A request serialised to JSON and replayed gives the same answer."""
        request = SelectRequest(
            radius=RADIUS,
            method="greedy",
            method_options={"lazy": True},
            engine=EngineSpec(name=engine, accelerate=accelerate),
        )
        wire = json.loads(json.dumps(request.to_dict()))
        replayed = execute_request(dataset, SelectRequest.from_dict(wire))
        direct = execute_request(dataset, request)
        assert replayed.selected == direct.selected


# ----------------------------------------------------------------------
# JSON round-trips of requests and results
# ----------------------------------------------------------------------
class TestJsonRoundTrip:
    def test_request_round_trip_is_lossless(self):
        request = SelectRequest(
            radius=0.2,
            method="greedy",
            method_options={"prune": True, "update_variant": "white"},
            engine=EngineSpec(
                name="grid", accelerate=False, options={"cell_size": 0.1}
            ),
        ).validate()
        wire = json.loads(json.dumps(request.to_dict()))
        assert SelectRequest.from_dict(wire).validate() == request

    def test_result_round_trip_with_closest_black_and_meta(self, dataset):
        result = disc_select(
            dataset, RADIUS, engine="grid", track_closest_black=True
        )
        assert result.closest_black is not None
        assert result.meta  # greedy records its variant flags
        wire = json.loads(json.dumps(result.to_dict()))
        back = DiscResult.from_dict(wire)
        assert back.selected == [int(i) for i in result.selected]
        assert back.radius == result.radius
        assert back.algorithm == result.algorithm
        assert isinstance(back.closest_black, np.ndarray)
        np.testing.assert_array_equal(back.closest_black, result.closest_black)
        assert back.meta == json.loads(json.dumps(result.to_dict()))["meta"]
        assert back.coloring is None  # documented: not serialised

    def test_result_stats_survive(self, dataset):
        result = disc_select(dataset, RADIUS, engine="mtree")
        back = DiscResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert back.stats.node_accesses == result.stats.node_accesses
        assert back.node_accesses == result.node_accesses
        assert isinstance(back.stats, IndexStats)

    def test_payload_missing_radius_is_a_validation_error(self, dataset):
        """Malformed wire payloads fail with the documented error
        family, not a bare KeyError."""
        with pytest.raises(ValueError, match="radius"):
            execute_request(dataset, {"method": "greedy"})

    def test_empty_input_result_round_trips(self):
        result = disc_select(
            np.empty((0, 2)), 0.1, metric=EUCLIDEAN, method="greedy", lazy=True
        )
        back = DiscResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert back.selected == []
        assert back.algorithm == "Lazy-Grey-Greedy-DisC"
        assert back.meta["empty_input"] is True

    @pytest.mark.parametrize("dtype", [np.int32, np.int64])
    def test_selection_id_dtype_is_canonicalised(self, dtype):
        """Regression: results whose ids come from int32 CSR paths and
        int64 per-query paths must serialise to identical bytes (the
        platform default integer differs across OSes), and the wire
        round trip must be exact — the service layer caches and
        coalesces responses byte-wise."""
        result = DiscResult(
            selected=list(np.array([3, 1, 2], dtype=dtype)),
            radius=np.float64(0.25),
            algorithm="Grey-Greedy-DisC",
            stats=IndexStats(extra={"stored_nnz": dtype(7)}),
            meta={"frontier": np.array([5, 6], dtype=dtype)},
        )
        wire = result.to_dict()
        # Canonical payload: Python ints only, down into stats.extra.
        assert all(type(i) is int for i in wire["selected"])
        assert type(wire["stats"]["extra"]["stored_nnz"]) is int
        assert wire["meta"]["frontier"] == [5, 6]
        encoded = json.dumps(wire, sort_keys=True)
        # Identical bytes regardless of the producing dtype.
        reference = DiscResult(
            selected=[3, 1, 2],
            radius=0.25,
            algorithm="Grey-Greedy-DisC",
            stats=IndexStats(extra={"stored_nnz": 7}),
            meta={"frontier": [5, 6]},
        )
        assert encoded == json.dumps(reference.to_dict(), sort_keys=True)
        # And the round trip is exact (from_dict . to_dict is identity
        # on the wire form).
        back = DiscResult.from_dict(json.loads(encoded))
        assert json.dumps(back.to_dict(), sort_keys=True) == encoded


# ----------------------------------------------------------------------
# Registry: capabilities, auto policy, error messages
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtin_engines_registered(self):
        assert registry.names() == ["brute", "grid", "kdtree", "mtree"]

    def test_unknown_engine_lists_registered_names(self):
        with pytest.raises(ValueError) as excinfo:
            registry.get("rtree")
        message = str(excinfo.value)
        assert "unknown engine 'rtree'" in message
        for name in ("auto", "brute", "grid", "kdtree", "mtree"):
            assert name in message

    def test_unknown_option_names_valid_options(self, dataset):
        with pytest.raises(ValueError) as excinfo:
            disc_select(
                dataset, RADIUS, engine="kdtree", engine_options={"leafsizes": 4}
            )
        message = str(excinfo.value)
        assert "'leafsizes'" in message
        assert "KDTreeIndex" in message
        assert "leafsize" in message and "accelerate" in message

    def test_auto_with_impossible_options_lists_per_engine(self):
        with pytest.raises(ValueError) as excinfo:
            EngineSpec(name="auto", options={"warp_factor": 9}).validate()
        message = str(excinfo.value)
        assert "'warp_factor'" in message
        assert "valid options" in message
        assert "MTreeIndex" in message and "GridIndex" in message

    def test_mtree_rejects_accelerate_true_with_reason(self, dataset):
        with pytest.raises(ValueError, match="M-tree has no CSR engine"):
            EngineSpec(name="mtree", accelerate=True).validate()
        with pytest.raises(ValueError, match="M-tree"):
            disc_select(
                dataset, RADIUS, engine="mtree",
                engine_options={"accelerate": True},
            )

    def test_auto_policy_paper_scale_prefers_fidelity(self):
        entry, _ = registry.resolve("auto", n=500, metric=EUCLIDEAN)
        assert entry.name == "mtree"

    def test_auto_policy_scale_prefers_csr_engines(self):
        entry, options = registry.resolve("auto", n=200_000, metric=EUCLIDEAN)
        assert entry.name == "kdtree"
        entry, options = registry.resolve(
            "auto", n=200_000, metric=EUCLIDEAN, radius=0.05
        )
        assert entry.name == "grid"
        assert options == {"cell_size": 0.05}
        entry, _ = registry.resolve("auto", n=200_000, metric=HAMMING)
        assert entry.name == "brute"

    def test_auto_policy_degenerate_radius_is_not_a_seed(self):
        """r=0 is a valid degenerate radius but cannot seed a cell
        size, so it must rank like no radius at all (tuning-free
        engine, no arbitrary default cell_size)."""
        entry, options = registry.resolve(
            "auto", n=200_000, metric=EUCLIDEAN, radius=0.0
        )
        assert entry.name == "kdtree"
        assert options == {}

    def test_conflicting_accelerate_values_rejected(self):
        with pytest.raises(ValueError, match="conflicting accelerate"):
            EngineSpec(
                name="grid", accelerate=True, options={"accelerate": False}
            ).validate()
        # Agreement and the legacy options-only route both stay valid.
        spec = EngineSpec(
            name="grid", accelerate=True, options={"accelerate": True}
        ).validate()
        assert spec.accelerate is True
        spec = EngineSpec(name="grid", options={"accelerate": False}).validate()
        assert spec.accelerate is False

    def test_auto_policy_accelerate_true_skips_mtree(self):
        entry, _ = registry.resolve(
            "auto", accelerate=True, n=100, metric=EUCLIDEAN
        )
        assert entry.capabilities.supports_csr

    def test_options_constrain_auto(self):
        entry, options = registry.resolve(
            "auto", options={"capacity": 25}, n=100, metric=EUCLIDEAN
        )
        assert entry.name == "mtree"
        assert options == {"capacity": 25}

    def test_explicit_engine_keeps_its_defaults(self):
        """Radius seeding is an auto-policy courtesy, never an override
        of an explicitly requested engine's options."""
        entry, options = registry.resolve("grid", n=100, metric=EUCLIDEAN, radius=0.2)
        assert options == {}


# ----------------------------------------------------------------------
# Session adjacency cache (LRU)
# ----------------------------------------------------------------------
class TestSessionCache:
    def test_repeated_radius_hits_cache(self, dataset):
        session = DiscSession(dataset, engine="grid")
        session.select(0.1)
        built = session.cache_info()["misses"]
        session.select(0.1)
        info = session.cache_info()
        assert info["misses"] == built  # no rebuild
        assert info["hits"] > 0
        assert info["entries"] == 1

    def test_lru_evicts_oldest_radius(self, dataset):
        session = DiscSession(dataset, engine="grid", cache_radii=2)
        session.select_many([0.1, 0.15, 0.2])
        info = session.cache_info()
        assert info["entries"] == 2
        assert info["evictions"] >= 1
        assert 0.1 not in info["radii"]  # oldest radius evicted
        # Evicted radius rebuilds and still selects identically.
        fresh = DiscSession(dataset, engine="grid")
        assert session.select(0.1).selected == fresh.select(0.1).selected

    def test_cache_respects_byte_budget(self, dataset):
        index = GridIndex(dataset.points, dataset.metric)
        index.set_adjacency_cache(AdjacencyCache(max_bytes=1))
        first = index.csr_neighborhood(0.1)
        assert first.nbytes > 1
        # Over budget, but the newest entry survives (never evict the
        # adjacency serving the current request).
        assert index.adjacency_cache.info()["entries"] == 1
        index.csr_neighborhood(0.2)
        assert index.adjacency_cache.info()["entries"] == 1
        assert 0.2 in index.adjacency_cache

    def test_session_cross_engine_request_rejected(self, dataset):
        session = DiscSession(dataset, engine="grid")
        with pytest.raises(ValueError, match="session"):
            session.execute(
                SelectRequest(radius=0.1, engine=EngineSpec(name="mtree"))
            )
        # auto and the session's own engine are both fine.
        session.execute(SelectRequest(radius=0.1))
        session.execute(SelectRequest(radius=0.1, engine=EngineSpec(name="grid")))

    def test_session_rejects_conflicting_accelerate_and_options(self, dataset):
        """A session must not silently run a request configured for a
        different substrate (accelerate gate or engine options)."""
        session = DiscSession(dataset, engine="grid", cell_size=0.5)
        with pytest.raises(ValueError, match="accelerate"):
            session.execute(
                SelectRequest(
                    radius=0.1, engine=EngineSpec(name="grid", accelerate=False)
                )
            )
        with pytest.raises(ValueError, match="options"):
            session.execute(
                SelectRequest(
                    radius=0.1,
                    engine=EngineSpec(name="grid", options={"cell_size": 0.01}),
                )
            )
        # Matching configuration is accepted.
        session.execute(
            SelectRequest(
                radius=0.1,
                engine=EngineSpec(name="grid", options={"cell_size": 0.5}),
            )
        )
        legacy = DiscSession(dataset, engine="grid", accelerate=False)
        legacy.execute(
            SelectRequest(radius=0.1, engine=EngineSpec(name="grid", accelerate=False))
        )


# ----------------------------------------------------------------------
# Validation parity between empty and non-empty data
# ----------------------------------------------------------------------
class TestValidationParity:
    @pytest.mark.parametrize("points", [np.empty((0, 2)), None])
    def test_same_errors_on_empty_and_real_data(self, dataset, points):
        data = dataset if points is None else points
        with pytest.raises(ValueError, match="unknown engine"):
            disc_select(data, 0.1, metric=EUCLIDEAN, engine="bogus")
        with pytest.raises(TypeError, match="quantum_flag"):
            disc_select(data, 0.1, metric=EUCLIDEAN, quantum_flag=True)
        with pytest.raises(ValueError, match="accelerate"):
            disc_select(
                data, 0.1, metric=EUCLIDEAN, engine_options={"accelerate": 1}
            )

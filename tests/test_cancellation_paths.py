"""Timed-abort regression tests for cooperative cancellation checkpoints.

The serving layer's deadline contract (PR 6) relies on long loops
checkpointing often enough that an expired budget frees the executor
slot promptly.  These tests pin the two paths the supervisor leans on
hardest — the blocked-adjacency builder and the zoom-out red pass —
with a deterministic stand-in for "the deadline expired mid-operation":
a token that raises at the k-th cooperative checkpoint.  Sweeping k
from the first to the last checkpoint proves every checkpoint site is
a live abort point (including the blocked pair loop and the red-pass
while loop, which only checkpoint *after* earlier stages have already
had their turn).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cancellation import (
    CancellationToken,
    OperationCancelled,
    cancellation_scope,
)
from repro.core import greedy_disc, zoom_out
from repro.distance import EUCLIDEAN
from repro.graph.blocked import build_blocked_grid
from repro.index import GridIndex


class _CountingToken(CancellationToken):
    """Counts checkpoint visits without ever aborting."""

    def __init__(self) -> None:
        super().__init__(None)
        self.calls = 0

    def checkpoint(self) -> None:
        self.calls += 1
        super().checkpoint()


class _BudgetToken(CancellationToken):
    """Aborts at the k-th checkpoint — a deadline expiring mid-flight."""

    def __init__(self, k: int) -> None:
        super().__init__(None, source="client")
        self.k = int(k)
        self.calls = 0

    def checkpoint(self) -> None:
        self.calls += 1
        if self.calls >= self.k:
            raise OperationCancelled("deadline exceeded", source=self.source)


def _blob(n: int = 400, seed: int = 7) -> np.ndarray:
    """One tight cluster: every cell pair is dense, so blocks form."""
    rng = np.random.default_rng(seed)
    return np.clip(rng.normal(loc=(0.5, 0.5), scale=0.05, size=(n, 2)), 0.0, 1.0)


class TestBlockedBuilderCancellation:
    RADIUS = 0.25

    def _build(self):
        return build_blocked_grid(
            _blob(), EUCLIDEAN, self.RADIUS, min_block_pairs=1
        )

    def test_control_build_forms_blocks(self):
        out = self._build()
        # The dense pair loop must actually run for the sweep below to
        # exercise its checkpoint.
        assert out.side_is_clique.size > 0

    def test_checkpoints_are_visited(self):
        token = _CountingToken()
        with cancellation_scope(token):
            self._build()
        # At least the CSR-assembly cell loop and the dense pair loop.
        assert token.calls >= 2
        self.total = token.calls

    @pytest.mark.parametrize("position", ["first", "middle", "last"])
    def test_abort_at_every_checkpoint_depth(self, position):
        counter = _CountingToken()
        with cancellation_scope(counter):
            self._build()
        k = {
            "first": 1,
            "middle": max(1, counter.calls // 2),
            "last": counter.calls,  # the dense pair loop's checkpoint
        }[position]
        token = _BudgetToken(k)
        with cancellation_scope(token):
            with pytest.raises(OperationCancelled) as err:
                self._build()
        assert err.value.source == "client"
        assert token.calls == k

    def test_precancelled_token_aborts_immediately(self):
        token = CancellationToken(None, source="server")
        token.cancel()
        with cancellation_scope(token):
            with pytest.raises(OperationCancelled) as err:
                self._build()
        assert err.value.source == "server"

    def test_expired_deadline_aborts(self):
        token = CancellationToken.with_timeout(0.0, source="client")
        with cancellation_scope(token):
            with pytest.raises(OperationCancelled, match="deadline"):
                self._build()


class TestZoomOutRedPassCancellation:
    """Greedy-Zoom-Out's red pass checkpoints every CHECKPOINT_EVERY
    while-loop iterations; with the cadence pinned to 1, a small
    solution exercises the checkpoint on both the legacy (heap) and the
    CSR (segment-tree) variants."""

    OLD, NEW = 0.06, 0.09

    @pytest.fixture()
    def solved(self):
        rng = np.random.default_rng(123)
        points = rng.random((300, 2))
        index = GridIndex(points, EUCLIDEAN, cell_size=0.08)
        previous = greedy_disc(index, self.OLD, track_closest_black=True)
        assert previous.size >= 10  # enough reds for a real first pass
        return index, previous

    def _zoom(self, index, previous):
        return zoom_out(index, previous, self.NEW, greedy_variant="a")

    @pytest.fixture(params=["legacy", "csr"])
    def red_pass_index(self, request, solved):
        index, previous = solved
        if request.param == "csr":
            # Prime the adjacency cache so csr_fast_path consumes it and
            # the segment-tree red pass runs instead of the heap one.
            assert index.csr_neighborhood(self.NEW) is not None
            assert index.csr_neighborhood(self.NEW, build=False) is not None
        return index, previous

    def test_red_pass_contributes_checkpoints(
        self, red_pass_index, monkeypatch
    ):
        index, previous = red_pass_index
        quiet = _CountingToken()
        with cancellation_scope(quiet):
            self._zoom(index, previous)
        monkeypatch.setattr("repro.core.zoom.CHECKPOINT_EVERY", 1)
        loud = _CountingToken()
        with cancellation_scope(loud):
            result = self._zoom(index, previous)
        # The difference is exactly the red-pass while-loop iterations:
        # the pass runs, and its checkpoint line is live.
        assert loud.calls > quiet.calls
        assert result.size > 0

    @pytest.mark.parametrize("position", ["first", "middle", "last"])
    def test_abort_at_every_checkpoint_depth(
        self, red_pass_index, monkeypatch, position
    ):
        index, previous = red_pass_index
        monkeypatch.setattr("repro.core.zoom.CHECKPOINT_EVERY", 1)
        counter = _CountingToken()
        with cancellation_scope(counter):
            self._zoom(index, previous)
        k = {
            "first": 1,
            "middle": max(1, counter.calls // 2),
            "last": counter.calls,
        }[position]
        token = _BudgetToken(k)
        with cancellation_scope(token):
            with pytest.raises(OperationCancelled):
                self._zoom(index, previous)
        assert token.calls == k

    def test_cancelled_mid_pass_detaches_coloring(self, solved, monkeypatch):
        """The finally-block must detach the coloring even on abort, or
        the next request on this index inherits stale listeners."""
        index, previous = solved
        monkeypatch.setattr("repro.core.zoom.CHECKPOINT_EVERY", 1)
        counter = _CountingToken()
        with cancellation_scope(counter):
            self._zoom(index, previous)
        token = _BudgetToken(max(1, counter.calls // 2))
        with cancellation_scope(token):
            with pytest.raises(OperationCancelled):
                self._zoom(index, previous)
        # A clean follow-up run proves no state leaked from the abort.
        follow_up = self._zoom(index, previous)
        assert follow_up.size > 0

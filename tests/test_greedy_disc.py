"""Tests for Greedy-DisC and its M-tree variants (Sections 2.3, 5.1)."""

import numpy as np
import pytest

from repro.core import basic_disc, greedy_disc, verify_disc
from repro.distance import EUCLIDEAN, HAMMING
from repro.index import BruteForceIndex
from repro.mtree import MTreeIndex


RADII = [0.05, 0.15, 0.4]


class TestDiscInvariants:
    @pytest.mark.parametrize("radius", RADII)
    def test_output_is_disc_diverse(self, medium_uniform, index_factory, radius):
        _, factory = index_factory
        index = factory(medium_uniform, EUCLIDEAN)
        result = greedy_disc(index, radius)
        report = verify_disc(medium_uniform, EUCLIDEAN, result.selected, radius)
        assert report.is_disc_diverse, str(report)

    @pytest.mark.parametrize("update_variant", ["grey", "white"])
    @pytest.mark.parametrize("lazy", [False, True])
    @pytest.mark.parametrize("prune", [False, True])
    def test_all_variants_produce_valid_subsets(
        self, medium_uniform, update_variant, lazy, prune
    ):
        index = MTreeIndex(medium_uniform, EUCLIDEAN, capacity=6)
        result = greedy_disc(
            index, 0.12, update_variant=update_variant, lazy=lazy, prune=prune
        )
        report = verify_disc(medium_uniform, EUCLIDEAN, result.selected, 0.12)
        assert report.is_disc_diverse, (update_variant, lazy, prune, str(report))

    def test_hamming_greedy(self, categorical_points):
        index = BruteForceIndex(categorical_points, HAMMING)
        result = greedy_disc(index, 2)
        report = verify_disc(categorical_points, HAMMING, result.selected, 2)
        assert report.is_disc_diverse


class TestGreedyQuality:
    def test_not_larger_than_basic_on_average(self, rng):
        """The greedy rule's whole point: smaller subsets than Basic-DisC
        (Table 3).  Checked over several seeds to avoid flakiness."""
        wins = 0
        for seed in range(5):
            points = np.random.default_rng(seed).random((250, 2))
            basic = basic_disc(BruteForceIndex(points, EUCLIDEAN), 0.1)
            greedy = greedy_disc(BruteForceIndex(points, EUCLIDEAN), 0.1)
            if greedy.size <= basic.size:
                wins += 1
        assert wins >= 4

    def test_grey_and_white_variants_select_identically(self, medium_uniform):
        """Both maintain exact counts, so with deterministic tie-breaking
        they make the same greedy decisions."""
        grey = greedy_disc(
            MTreeIndex(medium_uniform, EUCLIDEAN, capacity=6), 0.1,
            update_variant="grey",
        )
        white = greedy_disc(
            MTreeIndex(medium_uniform, EUCLIDEAN, capacity=6), 0.1,
            update_variant="white",
        )
        assert grey.selected == white.selected

    def test_first_pick_has_max_neighborhood(self, medium_uniform):
        index = BruteForceIndex(medium_uniform, EUCLIDEAN)
        sizes = index.neighborhood_sizes(0.15)
        result = greedy_disc(index, 0.15)
        assert sizes[result.selected[0]] == sizes.max()

    def test_lazy_variants_stay_close_to_exact(self, medium_uniform):
        """Lazy updates leave stale-high counts; the solutions drift from
        exact greedy but only slightly (Table 3 shows drifts of a few
        percent, occasionally in greedy's favour)."""
        exact = greedy_disc(MTreeIndex(medium_uniform, EUCLIDEAN, capacity=6), 0.08)
        lazy = greedy_disc(
            MTreeIndex(medium_uniform, EUCLIDEAN, capacity=6), 0.08, lazy=True
        )
        assert exact.size * 0.85 <= lazy.size <= exact.size * 1.3 + 2

    def test_pruning_does_not_change_selection(self, medium_uniform):
        plain = greedy_disc(MTreeIndex(medium_uniform, EUCLIDEAN, capacity=6), 0.1)
        pruned = greedy_disc(
            MTreeIndex(medium_uniform, EUCLIDEAN, capacity=6), 0.1, prune=True
        )
        assert plain.selected == pruned.selected
        assert pruned.node_accesses <= plain.node_accesses


class TestCostAccounting:
    def test_precomputed_counts_charged_to_run(self, medium_uniform):
        index = MTreeIndex(medium_uniform, EUCLIDEAN, capacity=6, build_radius=0.1)
        result = greedy_disc(index, 0.1)
        assert result.stats.extra.get("precompute_cost", 0) > 0
        assert result.node_accesses >= result.stats.extra["precompute_cost"]

    def test_build_time_counting_cheaper(self, medium_uniform):
        """Paper: computing neighborhood sizes while building the tree
        reduces node accesses (up to 45%)."""
        with_build = greedy_disc(
            MTreeIndex(medium_uniform, EUCLIDEAN, capacity=6, build_radius=0.1), 0.1
        )
        post_hoc = greedy_disc(MTreeIndex(medium_uniform, EUCLIDEAN, capacity=6), 0.1)
        assert with_build.selected == post_hoc.selected
        assert with_build.node_accesses < post_hoc.node_accesses

    def test_stats_are_deltas(self, medium_uniform):
        index = MTreeIndex(medium_uniform, EUCLIDEAN, capacity=6)
        first = greedy_disc(index, 0.2)
        second = greedy_disc(index, 0.2)
        # Same work both times: the second run's counters must not
        # include the first run's.
        assert second.node_accesses <= first.node_accesses


class TestEdgeCases:
    def test_huge_radius(self, small_uniform):
        result = greedy_disc(BruteForceIndex(small_uniform, EUCLIDEAN), 5.0)
        assert result.size == 1

    def test_invalid_variant(self, small_uniform):
        with pytest.raises(ValueError, match="update_variant"):
            greedy_disc(BruteForceIndex(small_uniform, EUCLIDEAN), 0.1,
                        update_variant="purple")

    def test_negative_radius(self, small_uniform):
        with pytest.raises(ValueError, match="radius"):
            greedy_disc(BruteForceIndex(small_uniform, EUCLIDEAN), -1)

    def test_algorithm_names(self, small_uniform):
        cases = {
            (): "Grey-Greedy-DisC",
            ("white",): "White-Greedy-DisC",
        }
        index = BruteForceIndex(small_uniform, EUCLIDEAN)
        assert greedy_disc(index, 0.3).algorithm == "Grey-Greedy-DisC"
        assert (
            greedy_disc(index, 0.3, update_variant="white").algorithm
            == "White-Greedy-DisC"
        )
        assert (
            greedy_disc(index, 0.3, lazy=True).algorithm == "Lazy-Grey-Greedy-DisC"
        )
        mt = MTreeIndex(small_uniform, EUCLIDEAN, capacity=5)
        assert (
            greedy_disc(mt, 0.3, prune=True).algorithm
            == "Grey-Greedy-DisC (Pruned)"
        )

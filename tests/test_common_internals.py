"""Unit tests for the shared heuristic machinery (repro.core._common)."""

import numpy as np
import pytest

from repro.core._common import ClosestBlackTracker, LazyMaxHeap, query_neighbors
from repro.distance import EUCLIDEAN
from repro.index import BruteForceIndex
from repro.mtree import MTreeIndex


class TestLazyMaxHeap:
    def test_pops_highest_priority(self):
        heap = LazyMaxHeap()
        heap.push_many([(0, 5), (1, 9), (2, 7)])
        priorities = {0: 5, 1: 9, 2: 7}
        pick = heap.pop_valid(lambda i: priorities[i], lambda i: True)
        assert pick == 1

    def test_tie_breaks_on_lower_id(self):
        heap = LazyMaxHeap()
        heap.push_many([(7, 4), (3, 4), (5, 4)])
        priorities = {3: 4, 5: 4, 7: 4}
        assert heap.pop_valid(lambda i: priorities[i], lambda i: True) == 3

    def test_stale_entries_skipped(self):
        heap = LazyMaxHeap()
        heap.push(0, 10)
        heap.push(1, 5)
        heap.push(0, 3)  # 0 decayed; the 10-entry is now stale
        priorities = {0: 3, 1: 5}
        assert heap.pop_valid(lambda i: priorities[i], lambda i: True) == 1
        assert heap.pop_valid(lambda i: priorities[i], lambda i: True) == 0

    def test_ineligible_skipped(self):
        heap = LazyMaxHeap()
        heap.push_many([(0, 9), (1, 5)])
        priorities = {0: 9, 1: 5}
        pick = heap.pop_valid(lambda i: priorities[i], lambda i: i != 0)
        assert pick == 1

    def test_empty_returns_none(self):
        heap = LazyMaxHeap()
        assert heap.pop_valid(lambda i: 0, lambda i: True) is None
        assert not heap
        heap.push(0, 1)
        assert heap and len(heap) == 1


class TestClosestBlackTracker:
    def test_records_minimum_distance(self, small_uniform):
        index = BruteForceIndex(small_uniform, EUCLIDEAN)
        tracker = ClosestBlackTracker(index)
        tracker.record_black(0, list(range(1, 10)))
        d = EUCLIDEAN.to_point(small_uniform[1:10], small_uniform[0])
        assert np.allclose(tracker.distances[1:10], d)
        assert tracker.distances[0] == 0.0
        assert np.isinf(tracker.distances[20])

    def test_minimum_over_multiple_blacks(self, small_uniform):
        index = BruteForceIndex(small_uniform, EUCLIDEAN)
        tracker = ClosestBlackTracker(index)
        tracker.record_black(0, [5])
        first = tracker.distances[5]
        tracker.record_black(1, [5])
        assert tracker.distances[5] <= first

    def test_covered_at(self, small_uniform):
        index = BruteForceIndex(small_uniform, EUCLIDEAN)
        tracker = ClosestBlackTracker(index)
        tracker.record_black(0, [])
        assert tracker.covered_at(0, 0.0)
        assert not tracker.covered_at(1, 0.5)

    def test_empty_neighbor_list(self, small_uniform):
        index = BruteForceIndex(small_uniform, EUCLIDEAN)
        tracker = ClosestBlackTracker(index)
        tracker.record_black(3, [])
        assert tracker.distances[3] == 0.0


class TestQueryNeighbors:
    def test_simple_index_ignores_tree_options(self, small_uniform):
        index = BruteForceIndex(small_uniform, EUCLIDEAN)
        plain = query_neighbors(index, 0, 0.2)
        fancy = query_neighbors(index, 0, 0.2, prune=True, bottom_up=True)
        assert sorted(plain) == sorted(fancy)

    def test_mtree_receives_options(self, small_uniform):
        index = MTreeIndex(small_uniform, EUCLIDEAN, capacity=5)
        top = query_neighbors(index, 0, 0.2)
        bottom = query_neighbors(index, 0, 0.2, bottom_up=True)
        assert sorted(top) == sorted(bottom)

"""Tests for the graph view (Section 2.2) and exact solvers."""

import networkx as nx
import numpy as np
import pytest

from repro.core import basic_disc, greedy_disc
from repro.core.bounds import max_independent_neighbors
from repro.distance import EUCLIDEAN
from repro.graph import (
    build_neighborhood_graph,
    is_dominating_set,
    is_independent_dominating_set,
    is_independent_set,
    max_degree,
    minimum_dominating_set,
    minimum_independent_dominating_set,
)
from repro.index import BruteForceIndex


def path_points(n, spacing):
    """n collinear points with the given spacing."""
    return np.column_stack([np.arange(n) * spacing, np.zeros(n)])


class TestGraphConstruction:
    def test_edges_match_distances(self, small_uniform):
        graph = build_neighborhood_graph(small_uniform, EUCLIDEAN, 0.2)
        for i, j in graph.edges():
            assert EUCLIDEAN.distance(small_uniform[i], small_uniform[j]) <= 0.2
        # Spot-check some non-edges.
        non_edges = list(nx.non_edges(graph))[:20]
        for i, j in non_edges:
            assert EUCLIDEAN.distance(small_uniform[i], small_uniform[j]) > 0.2

    def test_path_graph_shape(self):
        graph = build_neighborhood_graph(path_points(5, 1.0), EUCLIDEAN, 1.0)
        assert sorted(graph.edges()) == [(0, 1), (1, 2), (2, 3), (3, 4)]
        assert max_degree(graph) == 2

    def test_empty_graph_max_degree(self):
        assert max_degree(nx.Graph()) == 0


class TestPredicates:
    def test_independent_and_dominating(self):
        graph = build_neighborhood_graph(path_points(5, 1.0), EUCLIDEAN, 1.0)
        assert is_independent_set(graph, [0, 2, 4])
        assert is_dominating_set(graph, [0, 2, 4])
        assert is_independent_dominating_set(graph, [0, 2, 4])
        assert not is_independent_set(graph, [0, 1])
        assert not is_dominating_set(graph, [0])


class TestExactSolvers:
    def test_path_graph_minimum_ids(self):
        graph = build_neighborhood_graph(path_points(6, 1.0), EUCLIDEAN, 1.0)
        solution = minimum_independent_dominating_set(graph)
        assert is_independent_dominating_set(graph, solution)
        assert len(solution) == 2  # {1, 4}

    def test_observation3_gap(self):
        """Figure 4: a graph whose minimum dominating set (2) is smaller
        than its minimum independent dominating set (3)."""
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (1, 2), (1, 4), (3, 4), (4, 5)])
        dominating = minimum_dominating_set(graph)
        independent_dominating = minimum_independent_dominating_set(graph)
        assert is_dominating_set(graph, dominating)
        assert is_independent_dominating_set(graph, independent_dominating)
        assert len(dominating) == 2
        assert len(independent_dominating) == 3

    def test_complete_graph(self):
        graph = nx.complete_graph(6)
        assert len(minimum_independent_dominating_set(graph)) == 1

    def test_empty_graph(self):
        assert minimum_independent_dominating_set(nx.Graph()) == []

    def test_isolated_vertices_all_selected(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        assert minimum_independent_dominating_set(graph) == [0, 1, 2, 3]

    def test_node_label_validation(self):
        graph = nx.Graph()
        graph.add_edge("a", "b")
        with pytest.raises(ValueError, match="labelled"):
            minimum_independent_dominating_set(graph)

    def test_size_guard(self):
        with pytest.raises(ValueError, match="limited"):
            minimum_independent_dominating_set(nx.path_graph(60))


class TestHeuristicsAgainstOptimum:
    """Sandwich the heuristics: optimum <= heuristic <= B * optimum."""

    @pytest.mark.parametrize("seed", range(6))
    def test_theorem1_on_random_instances(self, seed):
        rng = np.random.default_rng(seed)
        points = rng.random((12, 2))
        radius = 0.35
        graph = build_neighborhood_graph(points, EUCLIDEAN, radius)
        optimum = len(minimum_independent_dominating_set(graph))
        bound = max_independent_neighbors(EUCLIDEAN, 2)
        for algorithm in (basic_disc, greedy_disc):
            result = algorithm(BruteForceIndex(points, EUCLIDEAN), radius)
            assert optimum <= result.size <= bound * optimum
            assert is_independent_dominating_set(graph, result.selected)

    def test_greedy_often_matches_optimum_on_small_instances(self):
        matches = 0
        for seed in range(8):
            rng = np.random.default_rng(100 + seed)
            points = rng.random((10, 2))
            graph = build_neighborhood_graph(points, EUCLIDEAN, 0.4)
            optimum = len(minimum_independent_dominating_set(graph))
            result = greedy_disc(BruteForceIndex(points, EUCLIDEAN), 0.4)
            if result.size == optimum:
                matches += 1
        assert matches >= 4

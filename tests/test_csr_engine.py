"""The CSR neighborhood engine: structure, builders, and cross-path
parity.

The engine's contract is strict: CSR-accelerated execution must return
*identical* ``selected`` lists to the legacy per-query path — same
objects, same order — on every dataset family, every registered metric
and every heuristic.  These tests pin that contract, plus the array
primitives the fast paths are built from.
"""

import numpy as np
import pytest

from repro.api import build_index, disc_select
from repro.core import (
    Color,
    Coloring,
    basic_disc,
    fast_c,
    greedy_c,
    greedy_disc,
    verify_disc,
    zoom_in,
    zoom_out,
)
from repro.datasets import (
    cameras_dataset,
    cities_dataset,
    clustered_dataset,
    uniform_dataset,
)
from repro.distance import CHEBYSHEV, EUCLIDEAN, HAMMING, MANHATTAN, get_metric
from repro.graph.csr import CSRNeighborhood, build_csr_grid, build_csr_pairwise
from repro.index import BruteForceIndex, GridIndex, KDTreeIndex


# ----------------------------------------------------------------------
# CSR structure primitives
# ----------------------------------------------------------------------
class TestCSRStructure:
    def simple(self):
        # 0-1, 0-2, 1-2, 3 isolated
        return CSRNeighborhood.from_rows([[1, 2], [0, 2], [0, 1], []])

    def test_from_rows_roundtrip(self):
        csr = self.simple()
        assert csr.n == 4
        assert csr.nnz == 6
        assert csr.degrees.tolist() == [2, 2, 2, 0]
        assert csr.neighbors(0).tolist() == [1, 2]
        assert csr.neighbors(3).tolist() == []

    def test_from_edges_sorts_rows(self):
        rows = np.array([2, 0, 1, 0, 2, 1])
        cols = np.array([1, 2, 2, 1, 0, 0])
        csr = CSRNeighborhood.from_edges(rows, cols, 4)
        expected = self.simple()
        assert np.array_equal(csr.indptr, expected.indptr)
        assert np.array_equal(csr.indices, expected.indices)

    def test_gather_preserves_duplicates(self):
        csr = self.simple()
        got = csr.gather(np.array([0, 2, 3]))
        assert got.tolist() == [1, 2, 0, 1]
        assert csr.gather(np.array([], dtype=int)).size == 0

    def test_neighbor_counts(self):
        csr = self.simple()
        mask = np.array([True, False, True, True])
        assert csr.neighbor_counts(mask).tolist() == [1, 2, 1, 0]
        assert csr.neighbor_counts(np.ones(4, bool)).tolist() == [2, 2, 2, 0]

    def test_cover_mask(self):
        csr = self.simple()
        assert csr.cover_mask(np.array([3])).tolist() == [False, False, False, True]
        assert csr.cover_mask(np.array([0])).tolist() == [True, True, True, False]
        assert csr.cover_mask(
            np.array([0]), include_sources=False
        ).tolist() == [False, True, True, False]

    def test_decrement_counts_once_per_adjacency(self):
        csr = self.simple()
        counts = csr.degrees.astype(np.int64)
        eligible = np.ones(4, bool)
        touched = csr.decrement(counts, np.array([0, 1]), eligible)
        # 0 and 1 are mutually adjacent and both adjacent to 2.
        assert counts.tolist() == [1, 1, 0, 0]
        assert touched.tolist() == [0, 1, 2]

    def test_rejects_inconsistent_indptr(self):
        with pytest.raises(ValueError):
            CSRNeighborhood(np.array([0, 1]), np.array([], dtype=np.int32))
        with pytest.raises(ValueError):
            CSRNeighborhood(np.array([1, 2]), np.array([0], dtype=np.int32))


# ----------------------------------------------------------------------
# Builders agree with the oracle and each other
# ----------------------------------------------------------------------
class TestBuilders:
    @pytest.mark.parametrize("metric", [EUCLIDEAN, MANHATTAN, CHEBYSHEV],
                             ids=lambda m: m.name)
    def test_grid_build_matches_pairwise_build(self, medium_uniform, metric):
        a = build_csr_pairwise(medium_uniform, metric, 0.11)
        b = build_csr_grid(medium_uniform, metric, 0.11)
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)

    def test_all_index_builders_identical(self, medium_uniform):
        reference = build_csr_pairwise(medium_uniform, EUCLIDEAN, 0.15)
        engines = [
            BruteForceIndex(medium_uniform, EUCLIDEAN),
            GridIndex(medium_uniform, EUCLIDEAN, cell_size=0.06),
            KDTreeIndex(medium_uniform, EUCLIDEAN),
        ]
        for index in engines:
            csr = index.csr_neighborhood(0.15)
            assert csr is not None
            assert np.array_equal(csr.indptr, reference.indptr), type(index)
            assert np.array_equal(csr.indices, reference.indices), type(index)

    def test_csr_rows_match_range_query(self, medium_uniform):
        index = BruteForceIndex(medium_uniform, EUCLIDEAN)
        csr = index.csr_neighborhood(0.2)
        legacy = BruteForceIndex(medium_uniform, EUCLIDEAN, accelerate=False)
        for i in range(0, len(medium_uniform), 17):
            assert csr.neighbors(i).tolist() == sorted(legacy.range_query(i, 0.2))

    def test_accelerate_false_disables_engine(self, small_uniform):
        index = BruteForceIndex(small_uniform, EUCLIDEAN, accelerate=False)
        assert index.csr_neighborhood(0.1) is None
        index.accelerate = "auto"
        assert index.csr_neighborhood(0.1) is not None

    def test_mtree_never_builds_csr(self, small_uniform):
        from repro.mtree import MTreeIndex

        index = MTreeIndex(small_uniform, EUCLIDEAN, capacity=6)
        assert index.csr_neighborhood(0.1) is None

    def test_accelerate_true_insists(self, small_uniform):
        from repro.mtree import MTreeIndex

        index = MTreeIndex(small_uniform, EUCLIDEAN, capacity=6)
        index.accelerate = True
        with pytest.raises(RuntimeError, match="accelerate=True"):
            index.csr_neighborhood(0.1)
        # Indexes that can build are unaffected by the strict mode.
        strict = BruteForceIndex(small_uniform, EUCLIDEAN, accelerate=True)
        assert strict.csr_neighborhood(0.1) is not None

    def test_boundary_ties_identical_across_paths(self):
        """Exact distance==radius ties (a lattice) must not split the
        legacy and accelerated paths: pairwise and to_point share the
        same accumulation order."""
        grid_1d = np.linspace(0.0, 1.0, 12)
        points = np.stack(np.meshgrid(grid_1d, grid_1d), -1).reshape(-1, 2)
        radius = float(grid_1d[1] - grid_1d[0])
        legacy = BruteForceIndex(points, EUCLIDEAN, accelerate=False)
        fast = BruteForceIndex(points, EUCLIDEAN)
        assert basic_disc(legacy, radius).selected == basic_disc(fast, radius).selected
        assert (
            greedy_disc(legacy, radius).selected
            == greedy_disc(fast, radius).selected
        )

    def test_csr_cached_per_radius(self, small_uniform):
        index = KDTreeIndex(small_uniform, EUCLIDEAN)
        first = index.csr_neighborhood(0.1)
        assert index.csr_neighborhood(0.1) is first
        assert index.csr_neighborhood(0.2) is not first


# ----------------------------------------------------------------------
# Batched range queries
# ----------------------------------------------------------------------
class TestRangeQueryBatch:
    def engines(self, points):
        from repro.mtree import MTreeIndex

        return {
            "brute": BruteForceIndex(points, EUCLIDEAN),
            "brute-legacy": BruteForceIndex(points, EUCLIDEAN, accelerate=False),
            "grid": GridIndex(points, EUCLIDEAN, cell_size=0.07),
            "kdtree": KDTreeIndex(points, EUCLIDEAN),
            "mtree": MTreeIndex(points, EUCLIDEAN, capacity=8),
        }

    def test_batch_matches_single_queries(self, medium_uniform):
        ids = [0, 3, 299, 150, 3]
        for name, index in self.engines(medium_uniform).items():
            batch = index.range_query_batch(ids, 0.12)
            for i, row in zip(ids, batch):
                assert sorted(row.tolist()) == sorted(
                    index.range_query(i, 0.12)
                ), name

    def test_batch_include_self(self, small_uniform):
        for name, index in self.engines(small_uniform).items():
            batch = index.range_query_batch([5, 9], 0.15, include_self=True)
            for i, row in zip([5, 9], batch):
                assert i in row.tolist(), name

    def test_batch_counts_range_queries(self, small_uniform):
        index = BruteForceIndex(small_uniform, EUCLIDEAN)
        index.range_query_batch([1, 2, 3], 0.1)
        assert index.stats.range_queries == 3


# ----------------------------------------------------------------------
# Cross-path parity: accelerated selections == legacy selections
# ----------------------------------------------------------------------
DATASET_FAMILIES = {
    "uniform": lambda: uniform_dataset(n=350, dim=2, seed=5),
    "clustered": lambda: clustered_dataset(n=350, dim=2, seed=5),
    "cities": lambda: cities_dataset(n=350, seed=5),
    "cameras": lambda: cameras_dataset(n=250, seed=5),
}

_FAMILY_RADII = {"uniform": 0.09, "clustered": 0.09, "cities": 0.05, "cameras": 2}


def _engine_pairs(dataset):
    """(legacy, accelerated) index pairs valid for the dataset's metric."""
    pts, metric = dataset.points, dataset.metric
    pairs = [
        (
            BruteForceIndex(pts, metric, accelerate=False),
            BruteForceIndex(pts, metric),
        )
    ]
    if not isinstance(metric, type(HAMMING)):
        grid_legacy = GridIndex(pts, metric, cell_size=0.06)
        grid_legacy.accelerate = False
        pairs.append((grid_legacy, GridIndex(pts, metric, cell_size=0.06)))
        kd_legacy = KDTreeIndex(pts, metric)
        kd_legacy.accelerate = False
        pairs.append((kd_legacy, KDTreeIndex(pts, metric)))
    return pairs


@pytest.mark.parametrize("family", sorted(DATASET_FAMILIES))
class TestCrossPathParity:
    def test_greedy_disc_identical(self, family):
        data = DATASET_FAMILIES[family]()
        radius = _FAMILY_RADII[family]
        for legacy, fast in _engine_pairs(data):
            assert (
                greedy_disc(legacy, radius).selected
                == greedy_disc(fast, radius).selected
            ), type(fast).__name__

    def test_greedy_c_and_fast_c_identical(self, family):
        data = DATASET_FAMILIES[family]()
        radius = _FAMILY_RADII[family]
        for legacy, fast in _engine_pairs(data):
            assert (
                greedy_c(legacy, radius).selected
                == greedy_c(fast, radius).selected
            ), type(fast).__name__
            assert (
                fast_c(legacy, radius).selected == fast_c(fast, radius).selected
            ), type(fast).__name__

    def test_basic_disc_identical(self, family):
        data = DATASET_FAMILIES[family]()
        radius = _FAMILY_RADII[family]
        for legacy, fast in _engine_pairs(data):
            assert (
                basic_disc(legacy, radius).selected
                == basic_disc(fast, radius).selected
            ), type(fast).__name__

    def test_zoom_identical(self, family):
        data = DATASET_FAMILIES[family]()
        radius = _FAMILY_RADII[family]
        finer = radius / 2 if family != "cameras" else 1
        coarser = radius * 2 if family != "cameras" else 4
        for legacy, fast in _engine_pairs(data):
            coarse_l = greedy_disc(legacy, radius, track_closest_black=True)
            coarse_f = greedy_disc(fast, radius, track_closest_black=True)
            assert np.allclose(coarse_l.closest_black, coarse_f.closest_black)
            # Zoom passes only consume cached adjacencies (they never
            # force a build); warm them so the CSR path is what's tested.
            fast.csr_neighborhood(finer)
            fast.csr_neighborhood(coarser)
            for greedy in (True, False):
                assert (
                    zoom_in(legacy, coarse_l, finer, greedy=greedy).selected
                    == zoom_in(fast, coarse_f, finer, greedy=greedy).selected
                ), (type(fast).__name__, greedy)
            for variant in (None, "a", "b", "c"):
                assert (
                    zoom_out(legacy, coarse_l, coarser, greedy_variant=variant).selected
                    == zoom_out(fast, coarse_f, coarser, greedy_variant=variant).selected
                ), (type(fast).__name__, variant)


@pytest.mark.parametrize("metric_name", ["euclidean", "manhattan", "chebyshev", "hamming"])
def test_parity_across_registered_metrics(metric_name, rng):
    """Greedy-DisC and Greedy-C agree across paths for every metric."""
    metric = get_metric(metric_name)
    if metric_name == "hamming":
        points = rng.integers(0, 4, size=(250, 5))
        radius = 2
    else:
        points = rng.random((250, 3))
        radius = 0.25
    legacy = BruteForceIndex(points, metric, accelerate=False)
    fast = BruteForceIndex(points, metric)
    assert greedy_disc(legacy, radius).selected == greedy_disc(fast, radius).selected
    assert greedy_c(legacy, radius).selected == greedy_c(fast, radius).selected


def test_api_engine_options_accelerate(small_uniform):
    """`engine_options={"accelerate": ...}` reaches the index and keeps
    selections identical."""
    fast = disc_select(small_uniform, 0.15, metric=EUCLIDEAN, engine="brute")
    slow = disc_select(
        small_uniform,
        0.15,
        metric=EUCLIDEAN,
        engine="brute",
        engine_options={"accelerate": False},
    )
    assert fast.selected == slow.selected
    index = build_index(small_uniform, EUCLIDEAN, engine="kdtree", accelerate=False)
    assert index.accelerate is False
    assert index.csr_neighborhood(0.1) is None


# ----------------------------------------------------------------------
# Properties at scale: the accelerated output is still DisC diverse
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n", [1000, 5000])
def test_verify_disc_holds_at_scale(n):
    data = uniform_dataset(n=n, dim=2, seed=9)
    index = KDTreeIndex(data.points, data.metric)
    result = greedy_disc(index, 0.05)
    report = verify_disc(data.points, data.metric, result.selected, 0.05)
    assert report.is_disc_diverse, str(report)


def test_verify_disc_holds_at_scale_clustered():
    data = clustered_dataset(n=5000, dim=2, seed=9)
    index = GridIndex(data.points, data.metric, cell_size=0.04)
    result = greedy_c(index, 0.04)
    report = verify_disc(data.points, data.metric, result.selected, 0.04)
    # Greedy-C output is covering but not necessarily independent.
    assert report.is_covering, str(report)


# ----------------------------------------------------------------------
# Coloring batch transitions
# ----------------------------------------------------------------------
class TestColoringBatch:
    def test_set_many_updates_counts(self):
        coloring = Coloring(10)
        coloring.set_many(np.array([1, 3, 5]), Color.GREY)
        assert coloring.white_count == 7
        assert coloring.count(Color.GREY) == 3
        # Re-greying a grey object must not corrupt counts.
        coloring.set_many(np.array([5, 6]), Color.GREY)
        assert coloring.count(Color.GREY) == 4
        assert coloring.white_count == 6

    def test_set_many_empty_is_noop(self):
        coloring = Coloring(4)
        coloring.set_many(np.array([], dtype=int), Color.BLACK)
        assert coloring.white_count == 4

    def test_set_many_with_listeners_notifies(self):
        coloring = Coloring(6)
        events = []
        coloring.add_listener(lambda i, old, new: events.append((i, old, new)))
        coloring.set_grey_many(np.array([2, 4]))
        assert events == [
            (2, Color.WHITE, Color.GREY),
            (4, Color.WHITE, Color.GREY),
        ]

    def test_views_track_batch_updates(self):
        coloring = Coloring(5)
        codes = coloring.codes_view()
        coloring.set_grey_many(np.array([0, 4]))
        assert codes[0] == int(Color.GREY) and codes[4] == int(Color.GREY)
        assert coloring.white_mask().tolist() == [False, True, True, True, False]


# ----------------------------------------------------------------------
# Vectorised validate_ids
# ----------------------------------------------------------------------
class TestValidateIds:
    def test_accepts_arrays_lists_and_empty(self, small_uniform):
        index = BruteForceIndex(small_uniform, EUCLIDEAN)
        index.validate_ids([])
        index.validate_ids([0, 59])
        index.validate_ids(np.array([0, 30, 59]))

    def test_rejects_out_of_range(self, small_uniform):
        index = BruteForceIndex(small_uniform, EUCLIDEAN)
        with pytest.raises(IndexError, match="60"):
            index.validate_ids(np.array([0, 60]))
        with pytest.raises(IndexError, match="-1"):
            index.validate_ids([-1])


# ----------------------------------------------------------------------
# PR 2: the priority structure and the selection strategies
# ----------------------------------------------------------------------
class TestMaxSegmentTree:
    def test_argmax_matches_np_argmax_with_ties(self):
        from repro.graph.priority import MaxSegmentTree

        scores = np.array([3, 7, 7, 1, 7, 0], dtype=np.int64)
        tree = MaxSegmentTree(scores)
        assert tree.argmax() == 1  # first maximum, exactly like np.argmax
        tree.update_one(1, -1)
        assert tree.argmax() == 2
        assert tree.max_value == 7

    def test_update_many_repairs_ancestors(self, rng):
        from repro.graph.priority import MaxSegmentTree

        scores = rng.integers(0, 100, size=513).astype(np.int64)
        tree = MaxSegmentTree(scores)
        for _ in range(50):
            ids = rng.integers(0, 513, size=rng.integers(1, 40))
            vals = rng.integers(-1, 100, size=ids.size).astype(np.int64)
            scores[ids] = vals  # duplicate ids: last write wins both sides
            tree.update_many(ids, vals)
            assert tree.argmax() == int(np.argmax(scores))
            assert tree.max_value == int(scores.max())

    def test_single_leaf_tree(self):
        from repro.graph.priority import MaxSegmentTree

        tree = MaxSegmentTree(np.array([5], dtype=np.int64))
        assert tree.argmax() == 0
        tree.update_many(np.array([0]), np.array([2]))
        assert tree.max_value == 2

    def test_rejects_empty(self):
        from repro.graph.priority import MaxSegmentTree

        with pytest.raises(ValueError):
            MaxSegmentTree(np.empty(0, dtype=np.int64))


@pytest.mark.parametrize("strategy", ["lazy", "eager"])
@pytest.mark.parametrize("family", sorted(DATASET_FAMILIES))
def test_selection_strategies_identical(family, strategy, monkeypatch):
    """Both CSR selection strategies must replay the legacy order —
    the verified-pop lazy loop and the eager decrement sweep."""
    import repro.core.greedy as greedy_module

    monkeypatch.setattr(greedy_module, "CSR_SELECTION_STRATEGY", strategy)
    data = DATASET_FAMILIES[family]()
    radius = _FAMILY_RADII[family]
    legacy = BruteForceIndex(data.points, data.metric, accelerate=False)
    fast = BruteForceIndex(data.points, data.metric)
    assert greedy_disc(legacy, radius).selected == greedy_disc(fast, radius).selected
    legacy = BruteForceIndex(data.points, data.metric, accelerate=False)
    fast = BruteForceIndex(data.points, data.metric)
    assert greedy_c(legacy, radius).selected == greedy_c(fast, radius).selected


def test_strategy_validation(small_uniform, monkeypatch):
    import repro.core.greedy as greedy_module

    monkeypatch.setattr(greedy_module, "CSR_SELECTION_STRATEGY", "bogus")
    index = BruteForceIndex(small_uniform, EUCLIDEAN)
    with pytest.raises(ValueError, match="strategy"):
        greedy_disc(index, 0.15)


# ----------------------------------------------------------------------
# PR 2: the pruned grid builder
# ----------------------------------------------------------------------
class TestPrunedGridBuilder:
    @pytest.mark.parametrize("resolution", [1, 2, 3, 4, 6])
    def test_forced_resolutions_match_pairwise(self, resolution):
        data = clustered_dataset(n=900, dim=2, seed=0)
        reference = build_csr_pairwise(data.points, EUCLIDEAN, 0.05)
        pruned = build_csr_grid(
            data.points, EUCLIDEAN, 0.05, resolution=resolution
        )
        assert np.array_equal(reference.indptr, pruned.indptr)
        assert np.array_equal(reference.indices, pruned.indices)

    @pytest.mark.parametrize("metric", [EUCLIDEAN, MANHATTAN, CHEBYSHEV],
                             ids=lambda m: m.name)
    def test_lattice_boundary_ties(self, metric):
        """Exact distance==radius ties must survive the bound
        classification (the margins only demote pairs to compute)."""
        grid_1d = np.linspace(0.0, 1.0, 12)
        points = np.stack(np.meshgrid(grid_1d, grid_1d), -1).reshape(-1, 2)
        radius = float(grid_1d[1] - grid_1d[0])
        reference = build_csr_pairwise(points, metric, radius)
        pruned = build_csr_grid(points, metric, radius)
        assert np.array_equal(reference.indptr, pruned.indptr)
        assert np.array_equal(reference.indices, pruned.indices)

    def test_dense_cells_emit_without_distances(self):
        """On tightly clustered data the auto class must fire: far
        fewer distance computations than candidate pairs."""
        from repro.index.base import IndexStats

        rng = np.random.default_rng(3)
        points = np.concatenate([
            rng.normal(loc=c, scale=0.004, size=(600, 2))
            for c in ([0.25, 0.25], [0.75, 0.75])
        ])
        stats = IndexStats()
        csr = build_csr_grid(points, EUCLIDEAN, 0.05, stats=stats)
        reference = build_csr_pairwise(points, EUCLIDEAN, 0.05)
        assert np.array_equal(csr.indices, reference.indices)
        # Each 600-point blob is fully mutually adjacent; without the
        # auto class the builder would evaluate >= nnz distances.
        assert stats.distance_computations < csr.nnz / 10

    def test_offset_classification_is_sound(self):
        from repro.graph.csr import _classify_offsets, _PAIR_AUTO

        offsets, classes = _classify_offsets(EUCLIDEAN, 1.0, 0.25, 2, 4)
        for off, cls in zip(offsets, classes):
            magnitude = np.abs(off)
            hi = float(np.linalg.norm((magnitude + 1) * 0.25))
            lo = float(np.linalg.norm(np.maximum(0, magnitude - 1) * 0.25))
            assert lo <= 1.0 + 1e-9  # kept pairs can hold edges
            if cls == _PAIR_AUTO:
                assert hi <= 1.0 + 1e-9  # auto pairs lie fully inside

    def test_resolution_validation(self, small_uniform):
        with pytest.raises(ValueError, match="resolution"):
            build_csr_grid(small_uniform, EUCLIDEAN, 0.1, resolution=0)


# ----------------------------------------------------------------------
# PR 2: batched M-tree descent
# ----------------------------------------------------------------------
class TestMTreeBatchedDescent:
    def test_batch_matches_loop_and_accounting(self, medium_uniform):
        from repro.mtree import MTreeIndex

        ids = list(range(0, len(medium_uniform), 5))
        batched = MTreeIndex(medium_uniform, EUCLIDEAN, capacity=8)
        looped = MTreeIndex(medium_uniform, EUCLIDEAN, capacity=8)
        batch = batched.range_query_batch(ids, 0.12)
        loop = looped.range_query_batch(ids, 0.12, per_query_stats=True)
        for left, right in zip(batch, loop):
            # The shared descent preserves per-query traversal order.
            assert left.tolist() == right.tolist()
        assert batched.stats.node_accesses == looped.stats.node_accesses
        assert (
            batched.stats.distance_computations
            == looped.stats.distance_computations
        )
        assert batched.stats.range_queries == looped.stats.range_queries

    def test_batch_include_self_matches(self, small_uniform):
        from repro.mtree import MTreeIndex

        index = MTreeIndex(small_uniform, EUCLIDEAN, capacity=8)
        batch = index.range_query_batch([2, 7], 0.2, include_self=True)
        for center, row in zip([2, 7], batch):
            assert center in row.tolist()

    def test_thin_strip_key_spans(self):
        """Regression: when one dimension's cell-key span is smaller
        than the offset reach, the fused-key lookup must not alias
        neighboring cells (it used to emit self-loops and duplicate
        edges on strip-shaped data)."""
        rng = np.random.default_rng(11)
        for _ in range(10):
            points = np.column_stack([
                rng.uniform(0, 10, 400), rng.uniform(0, 0.5, 400)
            ])
            reference = build_csr_pairwise(points, EUCLIDEAN, 1.0)
            pruned = build_csr_grid(points, EUCLIDEAN, 1.0)
            assert np.array_equal(reference.indptr, pruned.indptr)
            assert np.array_equal(reference.indices, pruned.indices)

"""Property-based tests (hypothesis) for core invariants.

These generate arbitrary point clouds and radii and assert the paper's
definitional properties hold for every heuristic on every input — the
strongest guard against tie-breaking/bookkeeping regressions.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    basic_disc,
    fast_c,
    greedy_c,
    greedy_disc,
    verify_disc,
    zoom_in,
    zoom_out,
)
from repro.core.verify import coverage_violations
from repro.distance import EUCLIDEAN, HAMMING, MANHATTAN
from repro.index import BruteForceIndex
from repro.mtree import MTreeIndex

COMMON = dict(
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def point_clouds(draw, min_points=2, max_points=40, dims=(1, 2, 3)):
    n = draw(st.integers(min_points, max_points))
    d = draw(st.sampled_from(dims))
    flat = draw(
        st.lists(
            st.floats(0.0, 1.0, allow_nan=False, width=32),
            min_size=n * d,
            max_size=n * d,
        )
    )
    return np.array(flat, dtype=float).reshape(n, d)


radii = st.floats(0.01, 1.5, allow_nan=False)


class TestDiscInvariantsHold:
    @given(points=point_clouds(), radius=radii)
    @settings(**COMMON)
    def test_basic_disc_brute(self, points, radius):
        result = basic_disc(BruteForceIndex(points, EUCLIDEAN), radius)
        assert verify_disc(points, EUCLIDEAN, result.selected, radius).is_disc_diverse

    @given(points=point_clouds(), radius=radii)
    @settings(**COMMON)
    def test_greedy_disc_brute(self, points, radius):
        result = greedy_disc(BruteForceIndex(points, EUCLIDEAN), radius)
        assert verify_disc(points, EUCLIDEAN, result.selected, radius).is_disc_diverse

    @given(points=point_clouds(), radius=radii)
    @settings(**COMMON)
    def test_greedy_disc_mtree_pruned(self, points, radius):
        index = MTreeIndex(points, EUCLIDEAN, capacity=4)
        result = greedy_disc(index, radius, prune=True)
        assert verify_disc(points, EUCLIDEAN, result.selected, radius).is_disc_diverse

    @given(points=point_clouds(dims=(2,)), radius=radii)
    @settings(**COMMON)
    def test_manhattan_basic(self, points, radius):
        result = basic_disc(BruteForceIndex(points, MANHATTAN), radius)
        assert verify_disc(points, MANHATTAN, result.selected, radius).is_disc_diverse

    @given(points=point_clouds(), radius=radii)
    @settings(**COMMON)
    def test_greedy_c_covers(self, points, radius):
        result = greedy_c(BruteForceIndex(points, EUCLIDEAN), radius)
        assert coverage_violations(points, EUCLIDEAN, result.selected, radius) == []

    @given(points=point_clouds(), radius=radii)
    @settings(**COMMON)
    def test_fast_c_covers_on_mtree(self, points, radius):
        result = fast_c(MTreeIndex(points, EUCLIDEAN, capacity=4), radius)
        assert coverage_violations(points, EUCLIDEAN, result.selected, radius) == []

    @given(
        rows=st.lists(
            st.lists(st.integers(0, 3), min_size=4, max_size=4),
            min_size=2,
            max_size=25,
        ),
        radius=st.integers(1, 3),
    )
    @settings(**COMMON)
    def test_hamming_disc(self, rows, radius):
        points = np.array(rows)
        result = greedy_disc(BruteForceIndex(points, HAMMING), radius)
        assert verify_disc(points, HAMMING, result.selected, radius).is_disc_diverse


class TestIndexAgreement:
    @given(points=point_clouds(min_points=5), radius=radii)
    @settings(**COMMON)
    def test_mtree_query_matches_brute(self, points, radius):
        mtree = MTreeIndex(points, EUCLIDEAN, capacity=4)
        brute = BruteForceIndex(points, EUCLIDEAN)
        center = len(points) // 2
        assert sorted(mtree.range_query(center, radius)) == sorted(
            brute.range_query(center, radius)
        )

    @given(points=point_clouds(min_points=5), radius=radii)
    @settings(**COMMON)
    def test_mtree_bottom_up_matches_top_down(self, points, radius):
        mtree = MTreeIndex(points, EUCLIDEAN, capacity=4)
        center = 0
        assert sorted(mtree.range_query(center, radius)) == sorted(
            mtree.range_query(center, radius, bottom_up=True)
        )

    @given(points=point_clouds(min_points=5))
    @settings(**COMMON)
    def test_mtree_structural_invariants(self, points):
        index = MTreeIndex(points, EUCLIDEAN, capacity=4)
        index.tree.check_invariants()


class TestZoomProperties:
    @given(
        points=point_clouds(min_points=6),
        r_pair=st.tuples(st.floats(0.05, 0.4), st.floats(0.45, 1.2)),
    )
    @settings(**COMMON)
    def test_zoom_in_superset_and_valid(self, points, r_pair):
        r_small, r_large = r_pair
        index = BruteForceIndex(points, EUCLIDEAN)
        coarse = greedy_disc(index, r_large, track_closest_black=True)
        fine = zoom_in(index, coarse, r_small, greedy=True)
        assert set(coarse.selected) <= set(fine.selected)
        assert verify_disc(points, EUCLIDEAN, fine.selected, r_small).is_disc_diverse

    @given(
        points=point_clouds(min_points=6),
        r_pair=st.tuples(st.floats(0.05, 0.4), st.floats(0.45, 1.2)),
        variant=st.sampled_from([None, "a", "b", "c"]),
    )
    @settings(**COMMON)
    def test_zoom_out_valid(self, points, r_pair, variant):
        r_small, r_large = r_pair
        index = BruteForceIndex(points, EUCLIDEAN)
        fine = greedy_disc(index, r_small, track_closest_black=True)
        coarse = zoom_out(index, fine, r_large, greedy_variant=variant)
        assert verify_disc(points, EUCLIDEAN, coarse.selected, r_large).is_disc_diverse


class TestSizeMonotonicity:
    @given(points=point_clouds(min_points=8))
    @settings(**COMMON)
    def test_larger_radius_never_larger_solution(self, points):
        """Greedy solutions shrink (weakly) as the radius grows — the
        zooming premise of Section 3."""
        index = BruteForceIndex(points, EUCLIDEAN)
        small = greedy_disc(index, 0.1).size
        large = greedy_disc(index, 0.5).size
        assert large <= small

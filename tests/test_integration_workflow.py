"""End-to-end workflow tests mirroring the README and the paper's
interactive usage story (Section 3): overview -> zoom-in -> local zoom ->
zoom-out, with validity after every step."""

import numpy as np
import pytest

from repro import (
    DiscSession,
    cameras_dataset,
    clustered_dataset,
    disc_select,
    uniform_dataset,
    verify_disc,
)
from repro.baselines import jaccard_distance


class TestReadmeQuickstart:
    def test_quickstart_snippet_holds(self):
        """The exact contract the README promises."""
        data = uniform_dataset(n=500, seed=1)
        diversifier = DiscSession(data)
        result = diversifier.select(radius=0.1)
        finer = diversifier.zoom_in(0.05)
        assert set(result.selected) <= set(finer.selected)

    def test_one_shot_hamming_form(self):
        data = cameras_dataset(n=150, seed=2)
        result = disc_select(data.points, radius=2, metric="hamming")
        report = verify_disc(data.points, "hamming", result.selected, 2)
        assert report.is_disc_diverse


class TestInteractiveSession:
    """A full user session: every intermediate state must be valid and
    each zoom must preserve continuity with the previous view."""

    def test_session(self):
        data = clustered_dataset(n=800, dim=2, seed=9)
        diversifier = DiscSession(data)

        overview = diversifier.select(radius=0.15)
        assert diversifier.verify().is_disc_diverse

        detail = diversifier.zoom_in(0.08)
        assert diversifier.verify().is_disc_diverse
        assert set(overview.selected) <= set(detail.selected)

        refined = diversifier.zoom_in(0.04)
        assert diversifier.verify().is_disc_diverse
        assert set(detail.selected) <= set(refined.selected)

        # Back out two steps; continuity beats a fresh computation.
        coarse = diversifier.zoom_out(0.15)
        assert diversifier.verify().is_disc_diverse
        fresh = DiscSession(data).select(0.15)
        assert jaccard_distance(refined.selected, coarse.selected) <= (
            jaccard_distance(refined.selected, fresh.selected) + 1e-9
        )

    def test_local_session(self):
        data = clustered_dataset(n=600, dim=2, seed=4)
        diversifier = DiscSession(data)
        overview = diversifier.select(radius=0.2)
        focus = overview.selected[0]
        local = diversifier.local_zoom(focus, 0.05)
        # Outside the focus area nothing moved.
        outside_before = [
            b for b in overview.selected if b in set(local.meta["outside"])
        ]
        assert outside_before == local.meta["outside"]

    def test_mixed_methods_share_index(self):
        data = clustered_dataset(n=500, dim=2, seed=5)
        diversifier = DiscSession(data)
        greedy = diversifier.select(0.15, method="greedy")
        basic = diversifier.select(0.15, method="basic")
        cover = diversifier.select(0.15, method="greedy-c")
        assert greedy.size <= basic.size
        assert cover.size <= basic.size
        for result in (greedy, basic):
            assert verify_disc(
                data.points, data.metric, result.selected, 0.15
            ).is_disc_diverse


class TestNumericalEdges:
    def test_all_identical_points(self):
        points = np.full((40, 2), 0.5)
        result = disc_select(points, 0.1, metric="euclidean", engine="brute")
        assert result.size == 1

    def test_two_far_points(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        result = disc_select(points, 0.1, metric="euclidean", engine="brute")
        assert sorted(result.selected) == [0, 1]

    def test_collinear_chain(self):
        points = np.column_stack([np.linspace(0, 1, 11), np.zeros(11)])
        result = disc_select(points, 0.1001, metric="euclidean", engine="brute")
        report = verify_disc(points, "euclidean", result.selected, 0.1001)
        assert report.is_disc_diverse
        assert result.size >= 4

"""Unit tests for the coloring state machine (Section 2.3 colors)."""

import pytest

from repro.core.coloring import Color, Coloring


class TestTransitions:
    def test_all_start_white(self):
        coloring = Coloring(5)
        assert coloring.white_count == 5
        assert all(coloring.is_white(i) for i in range(5))

    def test_black_transition(self):
        coloring = Coloring(3)
        coloring.set_black(1)
        assert coloring.is_black(1)
        assert coloring.count(Color.BLACK) == 1
        assert coloring.white_count == 2

    def test_grey_then_back_to_white(self):
        coloring = Coloring(3)
        coloring.set_grey(0)
        assert coloring.is_grey(0)
        coloring.set_white(0)
        assert coloring.is_white(0)
        assert coloring.white_count == 3

    def test_red_for_zoom_out(self):
        coloring = Coloring(4)
        coloring.set_red(2)
        assert coloring.is_red(2)
        assert coloring.any_red()
        coloring.set_black(2)
        assert not coloring.any_red()

    def test_noop_transition_keeps_counts(self):
        coloring = Coloring(2)
        coloring.set_grey(0)
        coloring.set_grey(0)
        assert coloring.count(Color.GREY) == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Coloring(0)


class TestQueries:
    def test_ids_of(self):
        coloring = Coloring(6)
        coloring.set_black(1)
        coloring.set_black(4)
        coloring.set_grey(2)
        assert list(coloring.ids_of(Color.BLACK)) == [1, 4]
        assert coloring.blacks() == [1, 4]
        assert list(coloring.ids_of(Color.GREY)) == [2]

    def test_any_white_tracks_exhaustion(self):
        coloring = Coloring(2)
        assert coloring.any_white()
        coloring.set_grey(0)
        coloring.set_black(1)
        assert not coloring.any_white()

    def test_codes_returns_copy(self):
        coloring = Coloring(3)
        codes = coloring.codes()
        codes[0] = 99
        assert coloring.is_white(0)


class TestListeners:
    def test_listener_sees_transitions(self):
        coloring = Coloring(3)
        events = []
        coloring.add_listener(lambda i, old, new: events.append((i, old, new)))
        coloring.set_grey(1)
        coloring.set_black(1)
        assert events == [
            (1, Color.WHITE, Color.GREY),
            (1, Color.GREY, Color.BLACK),
        ]

    def test_listener_not_called_on_noop(self):
        coloring = Coloring(2)
        events = []
        coloring.add_listener(lambda *args: events.append(args))
        coloring.set_white(0)
        assert events == []

    def test_remove_listener(self):
        coloring = Coloring(2)
        events = []
        listener = lambda *args: events.append(args)
        coloring.add_listener(listener)
        coloring.remove_listener(listener)
        coloring.set_grey(0)
        assert events == []

"""Serving-layer tests: registry, shared cache, HTTP server, CLI smoke.

Covers the :mod:`repro.service` subsystem end to end at small n so it
stays in the tier-1 lane:

* :class:`DatasetRegistry` — load-once handles, immutability, arrays;
* :class:`SharedCacheManager` — keys/bucketing, TTL, byte budgets,
  build coalescing;
* the asyncio HTTP server — endpoint contracts, error mapping,
  byte-parity of served selections with direct :func:`disc_select`
  calls, single-flight coalescing;
* the ``repro serve`` CLI as a real subprocess — multi-client zoom
  trace, cache hits, clean SIGTERM shutdown (the CI smoke lane runs
  this file explicitly).
"""

from __future__ import annotations

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.api import DiscSession, disc_select
from repro.datasets import uniform_dataset
from repro.service import (
    DatasetRegistry,
    ServiceClient,
    ServiceError,
    ServiceState,
    SharedCacheManager,
    start_in_thread,
    wait_until_healthy,
)

N = 1200
SEED = 7
RADIUS = 0.1
ENGINE = {"name": "grid", "options": {"cell_size": RADIUS}}


# ----------------------------------------------------------------------
# DatasetRegistry
# ----------------------------------------------------------------------
class TestDatasetRegistry:
    def test_load_once_returns_identical_handles(self):
        registry = DatasetRegistry()
        registry.register_builtin("uniform", n=50, seed=1)
        first = registry.get("uniform")
        second = registry.get("uniform")
        assert first is second
        assert first.dataset_id == "uniform"
        assert first.n == 50

    def test_concurrent_first_loads_coalesce(self):
        registry = DatasetRegistry()
        loads = []
        registry.register_spec(
            "counted",
            lambda: (loads.append(1), uniform_dataset(n=40, seed=2))[1],
        )
        handles = []
        threads = [
            threading.Thread(target=lambda: handles.append(registry.get("counted")))
            for _ in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(loads) == 1
        assert all(h is handles[0] for h in handles)

    def test_handles_are_immutable(self):
        registry = DatasetRegistry()
        registry.register_builtin("uniform", n=30, seed=1)
        handle = registry.get("uniform")
        with pytest.raises((ValueError, RuntimeError)):
            handle.dataset.points[0, 0] = 99.0

    def test_register_array_and_catalogue(self):
        registry = DatasetRegistry()
        points = np.random.default_rng(0).random((25, 2))
        handle = registry.register_array("uploaded", points, "euclidean")
        assert registry.get("uploaded") is handle
        registry.register_builtin("cities")
        catalogue = {row["id"]: row for row in registry.describe()}
        assert catalogue["uploaded"]["loaded"] is True
        assert catalogue["uploaded"]["metric"] == "euclidean"
        assert catalogue["cities"]["loaded"] is False  # lazy until get()
        assert json.dumps(registry.describe())  # JSON-serialisable

    def test_duplicate_and_unknown_names(self):
        registry = DatasetRegistry()
        registry.register_builtin("uniform", n=30)
        with pytest.raises(ValueError, match="already registered"):
            registry.register_builtin("uniform")
        with pytest.raises(ValueError, match="unknown built-in"):
            registry.register_builtin("nope")
        with pytest.raises(KeyError, match="unknown dataset"):
            registry.get("nope")


# ----------------------------------------------------------------------
# SharedCacheManager
# ----------------------------------------------------------------------
class _Sized:
    """Stand-in adjacency with a declared byte size."""

    def __init__(self, nbytes: int) -> None:
        self.nbytes = nbytes


class TestSharedCacheManager:
    def test_bucketed_keys_hit_across_float_noise(self):
        manager = SharedCacheManager()
        view = manager.view("ds", "euclidean")
        assert view.get(0.3) is None  # miss claims the build slot
        view.put(0.3, _Sized(8))
        # 0.1 * 3 != 0.3 exactly, but it is the same radius to a user.
        assert view.get(0.1 * 3) is not None
        assert manager.hits == 1 and manager.builds == 1

    def test_views_namespace_datasets_and_metrics(self):
        manager = SharedCacheManager()
        a = manager.view("a", "euclidean")
        b = manager.view("b", "euclidean")
        a.get(RADIUS)
        a.put(RADIUS, _Sized(8))
        assert b.get(RADIUS) is None  # different dataset, different key
        b.abandon(RADIUS)
        assert a.get(RADIUS) is not None
        info = a.cache_info()
        assert info["dataset"] == "a" and info["entries"] == 1
        assert json.dumps(manager.cache_info())  # /stats serialisability

    def test_ttl_expires_entries(self):
        manager = SharedCacheManager(ttl_s=0.05)
        key = ("ds", "euclidean", 0.1)
        assert manager.get(key) is None
        manager.put(key, _Sized(8))
        assert manager.get(key) is not None
        time.sleep(0.08)
        assert manager.get(key) is None  # expired -> miss, slot claimed
        manager.abandon(key)
        assert manager.expirations == 1

    def test_byte_budget_evicts_lru(self):
        manager = SharedCacheManager(max_entries=None, max_bytes=100)
        for i, radius in enumerate((0.1, 0.2, 0.3)):
            key = ("ds", "euclidean", radius)
            manager.get(key)
            manager.put(key, _Sized(60))
        assert len(manager) == 1  # only the most recent survives 100B
        assert manager.evictions == 2
        assert manager.cache_info()["bytes"] <= 100

    def test_concurrent_misses_coalesce_to_one_build(self):
        manager = SharedCacheManager()
        key = ("ds", "euclidean", 0.5)
        outcomes = []

        def builder():
            value = manager.get(key)
            assert value is None
            time.sleep(0.1)  # simulate the adjacency build
            manager.put(key, _Sized(8))
            outcomes.append("built")

        def waiter():
            time.sleep(0.02)  # ensure the builder claimed the slot
            value = manager.get(key)
            outcomes.append("waited" if value is not None else "rebuilt")

        threads = [threading.Thread(target=builder)] + [
            threading.Thread(target=waiter) for _ in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert outcomes.count("built") == 1
        assert outcomes.count("waited") == 3
        assert manager.builds == 1
        assert manager.coalesced_builds == 3

    def test_abandon_releases_waiters(self):
        manager = SharedCacheManager(build_wait_s=5.0)
        key = ("ds", "euclidean", 0.7)
        assert manager.get(key) is None

        seen = []

        def waiter():
            t0 = time.perf_counter()
            value = manager.get(key)  # becomes the new owner post-abandon
            seen.append((value, time.perf_counter() - t0))

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        manager.abandon(key)
        thread.join(timeout=5)
        assert not thread.is_alive()
        value, waited = seen[0]
        assert value is None  # waiter takes over the (non-)build
        assert waited < 2.0  # released by abandon, not by timeout


# ----------------------------------------------------------------------
# HTTP server
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def service():
    registry = DatasetRegistry()
    registry.register_builtin("uniform", n=N, seed=SEED)
    registry.register_builtin("clustered", n=N, seed=SEED)
    state = ServiceState(
        registry, cache=SharedCacheManager(max_entries=16), workers=3
    )
    with start_in_thread(state) as running:
        yield running


@pytest.fixture()
def client(service):
    with ServiceClient(service.host, service.port) as c:
        yield c


class TestServerEndpoints:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert "uniform" in health["datasets"]

    def test_datasets_catalogue(self, client):
        catalogue = {row["id"] for row in client.datasets()["datasets"]}
        assert {"uniform", "clustered"} <= catalogue

    def test_select_matches_direct_disc_select(self, client):
        response = client.select("uniform", RADIUS, engine=ENGINE)
        reference = disc_select(
            uniform_dataset(n=N, seed=SEED),
            RADIUS,
            engine="grid",
            engine_options={"cell_size": RADIUS},
        )
        assert response["result"]["selected"] == [int(i) for i in reference.selected]
        assert response["result"]["algorithm"] == reference.algorithm
        assert response["result"]["radius"] == RADIUS
        # The whole result payload round-trips through the documented
        # wire format.
        from repro.core import DiscResult

        back = DiscResult.from_dict(response["result"])
        assert back.selected == [int(i) for i in reference.selected]

    def test_nested_request_form_is_equivalent(self, client):
        flat = client.select("uniform", RADIUS, engine=ENGINE)
        status, nested = client.request(
            "POST",
            "/select",
            {
                "dataset": "uniform",
                "request": {"radius": RADIUS, "method": "greedy", "engine": ENGINE},
            },
        )
        assert status == 200
        assert nested["result"]["selected"] == flat["result"]["selected"]

    def test_zoom_in_and_out(self, client):
        zoomed = client.zoom("uniform", RADIUS, RADIUS / 2, engine=ENGINE)
        assert zoomed["direction"] == "in"
        base = set(zoomed["from_result"]["selected"])
        finer = set(zoomed["result"]["selected"])
        assert base <= finer  # zoom-in keeps every black object
        out = client.zoom("uniform", RADIUS, RADIUS * 2, engine=ENGINE)
        assert out["direction"] == "out"
        assert len(out["result"]["selected"]) <= len(out["from_result"]["selected"])

    def test_zoom_accepts_nested_request_form(self, client):
        flat = client.zoom("uniform", RADIUS, RADIUS / 2, engine=ENGINE)
        status, nested = client.request(
            "POST",
            "/zoom",
            {
                "dataset": "uniform",
                "to": RADIUS / 2,
                "request": {"radius": RADIUS, "engine": ENGINE},
            },
        )
        assert status == 200
        assert nested["result"]["selected"] == flat["result"]["selected"]

    def test_error_mapping(self, client):
        assert client.request("POST", "/select", {"dataset": "missing", "radius": 0.1})[0] == 404
        assert client.request("POST", "/select", {"dataset": "uniform"})[0] == 400
        assert client.request(
            "POST", "/select", {"dataset": "uniform", "radius": 0.1, "method": "nope"}
        )[0] == 400
        assert client.request(
            "POST",
            "/select",
            {"dataset": "uniform", "radius": 0.1, "method_options": {"bogus": 1}},
        )[0] == 400
        assert client.request(
            "POST", "/zoom", {"dataset": "uniform", "radius": 0.1, "to": 0.1}
        )[0] == 400
        assert client.request("GET", "/nope")[0] == 404
        assert client.request("GET", "/select")[0] == 405
        assert client.request("POST", "/stats")[0] == 405
        with pytest.raises(ServiceError) as excinfo:
            client.select("missing", 0.1)
        assert excinfo.value.status == 404

    def test_invalid_json_body_is_400(self, service):
        conn = http.client.HTTPConnection(service.host, service.port, timeout=30)
        try:
            conn.request(
                "POST",
                "/select",
                body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            payload = json.loads(response.read())
            assert response.status == 400
            assert payload["error"]["code"] == "bad_request"
            assert "JSON" in payload["error"]["message"]
        finally:
            conn.close()

    def test_malformed_content_length_is_400(self, service):
        conn = http.client.HTTPConnection(service.host, service.port, timeout=30)
        try:
            conn.putrequest("POST", "/select", skip_accept_encoding=True)
            conn.putheader("Content-Length", "abc")
            conn.endheaders()
            response = conn.getresponse()
            payload = json.loads(response.read())
            assert response.status == 400
            assert payload["error"]["code"] == "bad_request"
            assert "Content-Length" in payload["error"]["message"]
        finally:
            conn.close()

    def test_stats_shape(self, client):
        client.select("uniform", RADIUS, engine=ENGINE)
        stats = client.stats()
        assert stats["computations"] >= 1
        assert "POST /select" in stats["requests"]
        assert stats["cache"] is not None
        assert {"hits", "misses", "builds", "coalesced_builds"} <= set(stats["cache"])
        assert json.dumps(stats)  # fully serialisable

    def test_identical_concurrent_requests_coalesce(self, service):
        before = None
        with ServiceClient(service.host, service.port) as probe:
            before = probe.stats()["computations"]
        barrier = threading.Barrier(4)
        flags, selections, errors = [], [], []

        def worker():
            try:
                with ServiceClient(service.host, service.port) as c:
                    barrier.wait()
                    # A fresh radius so nothing is pre-cached.
                    response = c.select("clustered", 0.0625, engine=ENGINE)
                    flags.append(response["coalesced"])
                    selections.append(tuple(response["result"]["selected"]))
            except BaseException as exc:  # pragma: no cover - surfacing
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(set(selections)) == 1
        with ServiceClient(service.host, service.port) as probe:
            after = probe.stats()
        # 4 requests, strictly fewer computations (the leader's 1, plus
        # at most a straggler that arrived after the leader finished).
        computed = after["computations"] - before
        assert computed < 4
        assert flags.count(True) == 4 - computed
        assert after["coalesced_requests"] >= flags.count(True)

    def test_repeated_radii_hit_shared_cache(self, service, client):
        hits_before = client.stats()["cache"]["hits"]
        for _ in range(3):
            client.select("uniform", 0.11, engine=ENGINE)
        hits_after = client.stats()["cache"]["hits"]
        assert hits_after > hits_before


# ----------------------------------------------------------------------
# `repro serve` subprocess: the CI smoke lane
# ----------------------------------------------------------------------
def test_serve_subprocess_smoke(tmp_path):
    """Start the real CLI server, replay a short multi-client zoom
    trace, assert 200s + cache hits + coalescing + clean shutdown."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in ("src", env.get("PYTHONPATH")) if part
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--datasets",
            "uniform",
            "--n",
            "800",
            "--threads",
            "2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    try:
        line = process.stdout.readline()
        match = re.search(r"http://([\d.]+):(\d+)", line)
        assert match, f"no listening line in: {line!r}"
        host, port = match.group(1), int(match.group(2))
        wait_until_healthy(host, port, timeout=30)

        radii = [0.1, 0.05, 0.1, 0.05]  # repeated-radius zoom trace
        barrier = threading.Barrier(2)
        statuses, errors = [], []

        def worker():
            try:
                with ServiceClient(host, port) as c:
                    for radius in radii:
                        barrier.wait()
                        status, payload = c.request(
                            "POST",
                            "/select",
                            {"dataset": "uniform", "radius": radius,
                             "engine": ENGINE},
                        )
                        statuses.append(status)
            except BaseException as exc:  # pragma: no cover - surfacing
                errors.append(exc)
                barrier.abort()

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert statuses == [200] * (2 * len(radii))

        with ServiceClient(host, port) as c:
            stats = c.stats()
        assert stats["cache"]["hits"] > 0
        assert stats["computations"] <= 2 * len(radii)

        process.send_signal(signal.SIGTERM)
        out, _ = process.communicate(timeout=30)
        assert process.returncode == 0, out
        assert "shutting down" in out
    finally:
        if process.poll() is None:  # pragma: no cover - cleanup on failure
            process.kill()
            process.communicate()


def test_serve_sigterm_drains_inflight_requests():
    """SIGTERM with a request in flight: the request still completes
    (200, not a reset), the process exits 0 within the drain deadline."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in ("src", env.get("PYTHONPATH")) if part
    )
    # Every computation stalls ~0.8s, giving SIGTERM a deterministic
    # in-flight window to land in.
    faults = json.dumps({"seed": 1, "worker_stall_rate": 1.0, "worker_stall_s": 0.8})
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--datasets", "uniform",
            "--n", "400",
            "--threads", "2",
            "--drain-timeout", "10",
            "--faults", faults,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    try:
        line = process.stdout.readline()
        match = re.search(r"http://([\d.]+):(\d+)", line)
        assert match, f"no listening line in: {line!r}"
        host, port = match.group(1), int(match.group(2))
        wait_until_healthy(host, port, timeout=30)

        outcomes, errors = [], []

        def worker():
            try:
                with ServiceClient(host, port) as c:
                    status, payload = c.request(
                        "POST",
                        "/select",
                        {"dataset": "uniform", "radius": 0.1, "engine": ENGINE},
                    )
                    outcomes.append((status, payload))
            except BaseException as exc:  # pragma: no cover - surfacing
                errors.append(exc)

        thread = threading.Thread(target=worker)
        thread.start()
        time.sleep(0.25)  # request is inside the injected stall now
        process.send_signal(signal.SIGTERM)
        thread.join(timeout=30)
        assert not thread.is_alive()
        out, _ = process.communicate(timeout=30)
        assert process.returncode == 0, out
        assert "shutting down" in out
        assert not errors, errors
        status, payload = outcomes[0]
        assert status == 200
        assert payload["result"]["selected"]
    finally:
        if process.poll() is None:  # pragma: no cover - cleanup on failure
            process.kill()
            process.communicate()

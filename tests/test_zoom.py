"""Tests for zooming-in/out and local zoom (Section 3, Section 5.2)."""

import numpy as np
import pytest

from repro.core import (
    greedy_disc,
    local_zoom,
    recompute_closest_black,
    verify_disc,
    zoom_in,
    zoom_out,
)
from repro.distance import EUCLIDEAN
from repro.index import BruteForceIndex
from repro.mtree import MTreeIndex


@pytest.fixture
def solved(medium_uniform):
    """A Greedy-DisC solution at r=0.2 with exact closest-black data."""
    index = MTreeIndex(medium_uniform, EUCLIDEAN, capacity=6)
    result = greedy_disc(index, 0.2, track_closest_black=True)
    return index, result


class TestZoomIn:
    @pytest.mark.parametrize("greedy", [False, True])
    def test_output_is_disc_diverse(self, medium_uniform, solved, greedy):
        index, previous = solved
        adapted = zoom_in(index, previous, 0.1, greedy=greedy)
        report = verify_disc(medium_uniform, EUCLIDEAN, adapted.selected, 0.1)
        assert report.is_disc_diverse, str(report)

    @pytest.mark.parametrize("greedy", [False, True])
    def test_lemma5_superset(self, solved, greedy):
        """Lemma 5(i): S_r ⊆ S_{r'}."""
        index, previous = solved
        adapted = zoom_in(index, previous, 0.1, greedy=greedy)
        assert set(previous.selected) <= set(adapted.selected)

    def test_lemma5_size_bound(self, solved):
        """Lemma 5(ii): |S_{r'}| <= NI_{r',r} * |S_r|."""
        from repro.core.bounds import lemma4_independent_annulus

        index, previous = solved
        adapted = zoom_in(index, previous, 0.1, greedy=True)
        bound = lemma4_independent_annulus(EUCLIDEAN, 0.1, 0.2)
        assert adapted.size <= bound * previous.size

    def test_rejects_non_smaller_radius(self, solved):
        index, previous = solved
        with pytest.raises(ValueError, match="smaller"):
            zoom_in(index, previous, 0.3)

    def test_works_from_pruned_run(self, medium_uniform):
        """A pruned construction leaves inexact closest-black distances;
        zoom_in must recompute and still emit a valid subset."""
        index = MTreeIndex(medium_uniform, EUCLIDEAN, capacity=6)
        previous = greedy_disc(index, 0.2, prune=True, track_closest_black=True)
        assert previous.meta["closest_black_exact"] is False
        adapted = zoom_in(index, previous, 0.1, greedy=True)
        report = verify_disc(medium_uniform, EUCLIDEAN, adapted.selected, 0.1)
        assert report.is_disc_diverse

    def test_works_without_closest_black(self, medium_uniform):
        index = BruteForceIndex(medium_uniform, EUCLIDEAN)
        previous = greedy_disc(index, 0.2)
        assert previous.closest_black is None
        adapted = zoom_in(index, previous, 0.1)
        report = verify_disc(medium_uniform, EUCLIDEAN, adapted.selected, 0.1)
        assert report.is_disc_diverse

    def test_result_closest_black_is_exact(self, medium_uniform, solved):
        index, previous = solved
        adapted = zoom_in(index, previous, 0.1, greedy=True)
        expected = recompute_closest_black(index, adapted.selected, 0.1).distances
        assert np.allclose(adapted.closest_black, expected)

    def test_chained_zoom_in(self, medium_uniform, solved):
        index, previous = solved
        mid = zoom_in(index, previous, 0.12, greedy=True)
        fine = zoom_in(index, mid, 0.06, greedy=True)
        assert set(mid.selected) <= set(fine.selected)
        report = verify_disc(medium_uniform, EUCLIDEAN, fine.selected, 0.06)
        assert report.is_disc_diverse


class TestZoomOut:
    @pytest.mark.parametrize("variant", [None, "a", "b", "c"])
    def test_output_is_disc_diverse(self, medium_uniform, solved, variant):
        index, previous = solved
        adapted = zoom_out(index, previous, 0.35, greedy_variant=variant)
        report = verify_disc(medium_uniform, EUCLIDEAN, adapted.selected, 0.35)
        assert report.is_disc_diverse, (variant, str(report))

    @pytest.mark.parametrize("variant", [None, "a", "b", "c"])
    def test_keeps_some_previous_objects(self, solved, variant):
        """Zoom-out's purpose: the new solution overlaps the old one
        (Figure 16) — at minimum the first re-selected red is shared."""
        index, previous = solved
        adapted = zoom_out(index, previous, 0.3, greedy_variant=variant)
        assert set(adapted.selected) & set(previous.selected)

    def test_variant_b_maximises_retention(self, solved):
        """Variant (b) selects reds with *fewest* red neighbors, aiming
        to maximise S_r ∩ S_r' (Section 3.2); retention must be at least
        that of the arbitrary variant on this workload."""
        index, previous = solved
        keep_b = len(
            set(zoom_out(index, previous, 0.3, greedy_variant="b").selected)
            & set(previous.selected)
        )
        keep_arbitrary = len(
            set(zoom_out(index, previous, 0.3, greedy_variant=None).selected)
            & set(previous.selected)
        )
        assert keep_b >= keep_arbitrary - 1  # allow a tie-break wobble

    def test_smaller_than_previous(self, solved):
        index, previous = solved
        adapted = zoom_out(index, previous, 0.4, greedy_variant="a")
        assert adapted.size < previous.size

    def test_rejects_non_larger_radius(self, solved):
        index, previous = solved
        with pytest.raises(ValueError, match="larger"):
            zoom_out(index, previous, 0.1)

    def test_rejects_unknown_variant(self, solved):
        index, previous = solved
        with pytest.raises(ValueError, match="greedy_variant"):
            zoom_out(index, previous, 0.4, greedy_variant="z")

    def test_lemma6_replacements_bounded(self, solved):
        """Lemma 6(ii): each removed object admits at most B-1 additions."""
        from repro.core.bounds import max_independent_neighbors

        index, previous = solved
        adapted = zoom_out(index, previous, 0.3, greedy_variant="a")
        removed = len(set(previous.selected) - set(adapted.selected))
        added = len(set(adapted.selected) - set(previous.selected))
        bound = max_independent_neighbors(EUCLIDEAN, 2)
        assert added <= max(removed, 1) * (bound - 1) + bound


class TestLocalZoom:
    def test_local_zoom_in_keeps_outside_solution(self, medium_uniform, solved):
        index, previous = solved
        center = previous.selected[0]
        result = local_zoom(index, previous, center, 0.08)
        # Everything outside the area is untouched.
        for black in result.meta["outside"]:
            assert black in previous.selected
        assert center in result.selected

    def test_local_zoom_in_adds_detail_inside(self, solved):
        index, previous = solved
        center = previous.selected[0]
        result = local_zoom(index, previous, center, 0.05)
        assert len(result.meta["inside"]) >= 1
        assert result.meta["area_size"] >= 1

    def test_local_zoom_out_direction(self, solved):
        index, previous = solved
        center = previous.selected[0]
        result = local_zoom(index, previous, center, 0.4)
        assert result.algorithm.startswith("Local-")
        assert center in result.selected or result.meta["inside"]

    def test_rejects_unselected_center(self, solved):
        index, previous = solved
        non_black = next(
            i for i in range(index.n) if i not in set(previous.selected)
        )
        with pytest.raises(ValueError, match="selected object"):
            local_zoom(index, previous, non_black, 0.05)


class TestRecomputeClosestBlack:
    def test_matches_vectorised_oracle(self, medium_uniform, solved):
        from repro.core.result import closest_black_distances

        index, previous = solved
        tracker = recompute_closest_black(index, previous.selected, 0.2)
        oracle = closest_black_distances(index, previous.selected)
        assert np.allclose(tracker.distances, oracle)

"""Tests for the high-level API (repro.api)."""

import numpy as np
import pytest

from repro import (
    BruteForceIndex,
    DiscDiversifier,
    GridIndex,
    MTreeIndex,
    build_index,
    disc_select,
    uniform_dataset,
)
from repro.core import verify_disc
from repro.distance import EUCLIDEAN


@pytest.fixture
def dataset():
    return uniform_dataset(n=200, seed=5)


class TestBuildIndex:
    def test_engines(self, dataset):
        assert isinstance(build_index(dataset), MTreeIndex)
        assert isinstance(build_index(dataset, engine="mtree"), MTreeIndex)
        assert isinstance(build_index(dataset, engine="brute"), BruteForceIndex)
        assert isinstance(build_index(dataset, engine="grid"), GridIndex)

    def test_engine_options_forwarded(self, dataset):
        index = build_index(dataset, engine="mtree", capacity=10)
        assert index.tree.capacity == 10

    def test_raw_points_need_metric(self, dataset):
        with pytest.raises(ValueError, match="metric"):
            build_index(dataset.points)
        index = build_index(dataset.points, "euclidean", engine="brute")
        assert index.metric is EUCLIDEAN

    def test_unknown_engine(self, dataset):
        with pytest.raises(ValueError, match="engine"):
            build_index(dataset, engine="btree")


class TestDiscSelect:
    @pytest.mark.parametrize("method", ["basic", "greedy", "greedy-c", "fast-c"])
    def test_methods_run_and_cover(self, dataset, method):
        result = disc_select(dataset, 0.15, method=method)
        report = verify_disc(dataset.points, dataset.metric, result.selected, 0.15)
        assert report.is_covering

    def test_unknown_method(self, dataset):
        with pytest.raises(ValueError, match="method"):
            disc_select(dataset, 0.1, method="quantum")

    def test_method_options_forwarded(self, dataset):
        result = disc_select(dataset, 0.15, method="greedy", lazy=True)
        assert "Lazy" in result.algorithm


class TestDiversifier:
    def test_select_and_verify(self, dataset):
        diversifier = DiscDiversifier(dataset)
        result = diversifier.select(0.2)
        assert diversifier.verify().is_disc_diverse
        assert diversifier.last_result is result

    def test_zoom_flow(self, dataset):
        diversifier = DiscDiversifier(dataset)
        coarse = diversifier.select(0.2)
        fine = diversifier.zoom_in(0.1)
        assert set(coarse.selected) <= set(fine.selected)
        assert diversifier.verify().is_disc_diverse
        back_out = diversifier.zoom_out(0.3)
        assert back_out.size < fine.size
        assert diversifier.verify().is_disc_diverse

    def test_local_zoom_flow(self, dataset):
        diversifier = DiscDiversifier(dataset)
        result = diversifier.select(0.2)
        local = diversifier.local_zoom(result.selected[0], 0.08)
        assert local.meta["center"] == result.selected[0]

    def test_zoom_before_select_fails(self, dataset):
        diversifier = DiscDiversifier(dataset)
        with pytest.raises(RuntimeError, match="select"):
            diversifier.zoom_in(0.05)

    def test_compare_methods_shapes(self, dataset):
        diversifier = DiscDiversifier(dataset)
        table = diversifier.compare_methods(0.25)
        assert set(table) == {"DisC", "r-C", "MaxMin", "MaxSum", "k-medoids"}
        disc_row = table["DisC"]
        # DisC covers everything by construction.
        assert disc_row["coverage"] == pytest.approx(1.0)
        sizes = {row["size"] for name, row in table.items() if name != "r-C"}
        assert len(sizes) == 1  # matched k

    def test_raw_points_constructor(self, dataset):
        diversifier = DiscDiversifier(dataset.points, "euclidean", engine="brute")
        result = diversifier.select(0.3, method="basic")
        assert result.size >= 1

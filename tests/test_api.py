"""Tests for the high-level API (repro.api): sessions, shims, pipeline."""

import pytest

from repro import (
    BruteForceIndex,
    DiscDiversifier,
    DiscSession,
    GridIndex,
    MTreeIndex,
    build_index,
    disc_select,
    uniform_dataset,
)
from repro.core import verify_disc
from repro.distance import EUCLIDEAN
from repro.distance.metrics import MinkowskiMetric


@pytest.fixture
def dataset():
    return uniform_dataset(n=200, seed=5)


class TestBuildIndex:
    def test_engines(self, dataset):
        assert isinstance(build_index(dataset), MTreeIndex)
        assert isinstance(build_index(dataset, engine="mtree"), MTreeIndex)
        assert isinstance(build_index(dataset, engine="brute"), BruteForceIndex)
        assert isinstance(build_index(dataset, engine="grid"), GridIndex)

    def test_engine_options_forwarded(self, dataset):
        index = build_index(dataset, engine="mtree", capacity=10)
        assert index.tree.capacity == 10

    def test_auto_constrained_by_options(self, dataset):
        """Options restrict the auto policy to engines accepting them."""
        index = build_index(dataset, engine="auto", capacity=10)
        assert isinstance(index, MTreeIndex)
        index = build_index(dataset, engine="auto", leafsize=8)
        assert type(index).__name__ == "KDTreeIndex"

    def test_raw_points_need_metric(self, dataset):
        with pytest.raises(ValueError, match="metric"):
            build_index(dataset.points)
        index = build_index(dataset.points, "euclidean", engine="brute")
        assert index.metric is EUCLIDEAN

    def test_unknown_engine(self, dataset):
        with pytest.raises(ValueError, match="engine"):
            build_index(dataset, engine="btree")


class TestDiscSelect:
    @pytest.mark.parametrize("method", ["basic", "greedy", "greedy-c", "fast-c"])
    def test_methods_run_and_cover(self, dataset, method):
        result = disc_select(dataset, 0.15, method=method)
        report = verify_disc(dataset.points, dataset.metric, result.selected, 0.15)
        assert report.is_covering

    def test_unknown_method(self, dataset):
        with pytest.raises(ValueError, match="method"):
            disc_select(dataset, 0.1, method="quantum")

    def test_method_options_forwarded(self, dataset):
        result = disc_select(dataset, 0.15, method="greedy", lazy=True)
        assert "Lazy" in result.algorithm


class TestSession:
    def test_select_and_verify(self, dataset):
        session = DiscSession(dataset)
        result = session.select(0.2)
        assert session.verify().is_disc_diverse
        assert session.last_result is result

    def test_zoom_flow(self, dataset):
        session = DiscSession(dataset)
        coarse = session.select(0.2)
        fine = session.zoom_in(0.1)
        assert set(coarse.selected) <= set(fine.selected)
        assert session.verify().is_disc_diverse
        back_out = session.zoom_out(0.3)
        assert back_out.size < fine.size
        assert session.verify().is_disc_diverse

    def test_local_zoom_flow(self, dataset):
        session = DiscSession(dataset)
        result = session.select(0.2)
        local = session.local_zoom(result.selected[0], 0.08)
        assert local.meta["center"] == result.selected[0]

    def test_zoom_before_select_fails(self, dataset):
        session = DiscSession(dataset)
        with pytest.raises(RuntimeError, match="select"):
            session.zoom_in(0.05)

    def test_select_many_matches_single_selects(self, dataset):
        session = DiscSession(dataset, engine="grid")
        batch = session.select_many([0.2, 0.1, 0.2])
        fresh = DiscSession(dataset, engine="grid")
        singles = [fresh.select(r) for r in (0.2, 0.1, 0.2)]
        assert [r.selected for r in batch] == [r.selected for r in singles]
        assert session.last_result is batch[-1]

    def test_auto_resolves_to_mtree_at_paper_scale(self, dataset):
        session = DiscSession(dataset)
        assert session.engine == "mtree"
        assert isinstance(session.index, MTreeIndex)

    def test_compare_methods_shapes(self, dataset):
        session = DiscSession(dataset)
        table = session.compare_methods(0.25)
        assert set(table) == {"DisC", "r-C", "MaxMin", "MaxSum", "k-medoids"}
        disc_row = table["DisC"]
        # DisC covers everything by construction.
        assert disc_row["coverage"] == pytest.approx(1.0)
        sizes = {row["size"] for name, row in table.items() if name != "r-C"}
        assert len(sizes) == 1  # matched k

    def test_compare_methods_reuses_last_greedy_result(self, dataset, monkeypatch):
        """compare_methods must go through the session path: no fresh
        greedy run when last_result already holds one at this radius."""
        from repro import requests as requests_module

        calls = []
        real = requests_module.METHODS["greedy"]

        def counting(*args, **kwargs):
            calls.append(kwargs)
            return real(*args, **kwargs)

        monkeypatch.setitem(requests_module.METHODS, "greedy", counting)
        session = DiscSession(dataset)
        view = session.select(0.25)
        assert len(calls) == 1
        session.compare_methods(0.25)
        assert len(calls) == 1  # reused, not recomputed
        session.compare_methods(0.3)
        assert len(calls) == 2  # different radius -> session select
        # The session default applies on the compare path too.
        assert calls[-1]["track_closest_black"] is True
        # Comparison is read-only for the zoom state: the interactive
        # view survives a compare at another radius.
        assert session.last_result is view

    def test_compare_methods_does_not_reuse_white_variant(self, dataset):
        """A white-update solution is a different algorithm; the DisC
        row must come from a fresh grey Greedy-DisC run."""
        session = DiscSession(dataset)
        white = session.select(0.25, update_variant="white")
        assert "White" in white.algorithm
        table = session.compare_methods(0.25)
        fresh = DiscSession(dataset).compare_methods(0.25)
        assert table["DisC"]["size"] == fresh["DisC"]["size"]
        assert session.last_result is white  # still the user's view

    def test_raw_points_constructor(self, dataset):
        session = DiscSession(dataset.points, "euclidean", engine="brute")
        result = session.select(0.3, method="basic")
        assert result.size >= 1


class TestMetricResolution:
    """Regression: layered entry points resolve the metric exactly once
    (a Metric instance passes through `_resolve`/`get_metric` unchanged,
    so no double-resolution of already-resolved callables)."""

    def test_metric_instance_preserved_by_identity(self, dataset):
        metric = MinkowskiMetric(3)
        session = DiscSession(dataset.points, metric, engine="brute")
        assert session.metric is metric
        assert session.index.metric is metric

    def test_dataset_metric_preserved(self, dataset):
        session = DiscSession(dataset)
        assert session.metric is dataset.metric
        assert session.index.metric is dataset.metric

    def test_resolve_is_idempotent(self, dataset):
        from repro.api import resolve_data

        points, metric = resolve_data(dataset, None)
        again_points, again_metric = resolve_data(points, metric)
        assert again_metric is metric
        assert again_points is points
        from repro.distance import get_metric

        assert get_metric(metric) is metric


class TestDiversifierShim:
    def test_warns_and_delegates(self, dataset):
        with pytest.warns(DeprecationWarning, match="DiscSession"):
            shim = DiscDiversifier(dataset)
        assert isinstance(shim, DiscSession)
        result = shim.select(0.2)
        assert shim.verify().is_disc_diverse
        assert shim.last_result is result

    def test_session_and_free_functions_do_not_warn(self, dataset):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            DiscSession(dataset, engine="brute").select(0.2)
            build_index(dataset, engine="brute")
            disc_select(dataset, 0.2, engine="brute")

"""Tests for the experiment harness (configuration, runners, tables)."""

import numpy as np
import pytest

from repro.datasets import clustered_dataset, uniform_dataset
from repro.experiments import (
    ALGORITHMS,
    ExperimentDataset,
    bottom_up_comparison,
    capacity_comparison,
    clear_cache,
    current_scale,
    experiment_suite,
    fast_c_comparison,
    fat_factor_sweep,
    format_series,
    format_table,
    lemma7_experiment,
    model_comparison,
    radius_for_target_size,
    run_algorithm,
    sweep,
    zoom_in_experiment,
    zoom_out_experiment,
    zoom_in_series,
    zoom_out_series,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


@pytest.fixture(scope="module")
def tiny():
    data = uniform_dataset(n=150, seed=9)
    return ExperimentDataset(data, [0.1, 0.2])


class TestConfig:
    def test_default_scale_is_small(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert current_scale() == "small"

    def test_scale_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert current_scale() == "paper"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ValueError):
            current_scale()

    def test_suite_contents(self):
        suite = experiment_suite("small", seed=1)
        assert set(suite) == {"Uniform", "Clustered", "Cities", "Cameras"}
        assert suite["Cameras"].dataset.n == 579
        assert len(suite["Uniform"].radii) == 7

    def test_zoom_series_directions(self):
        for _, radii in zoom_in_series().values():
            assert all(a > b for a, b in zip(radii, radii[1:]))
        for _, radii in zoom_out_series().values():
            assert all(a < b for a, b in zip(radii, radii[1:]))


class TestRunner:
    def test_run_algorithm_record(self, tiny):
        record = run_algorithm("B-DisC", tiny.dataset, 0.2)
        assert record.algorithm == "B-DisC"
        assert record.size > 0
        assert record.node_accesses > 0
        assert record.seconds >= 0

    def test_unknown_algorithm(self, tiny):
        with pytest.raises(ValueError, match="unknown algorithm"):
            run_algorithm("Magic", tiny.dataset, 0.2)

    def test_cache_returns_same_record(self, tiny):
        a = run_algorithm("B-DisC", tiny.dataset, 0.2)
        b = run_algorithm("B-DisC", tiny.dataset, 0.2)
        assert a is b
        c = run_algorithm("B-DisC", tiny.dataset, 0.2, use_cache=False)
        assert c is not a

    def test_sweep_shapes(self, tiny):
        records = sweep(tiny, ["B-DisC", "Gr-G-DisC"])
        assert set(records) == {"B-DisC", "Gr-G-DisC"}
        assert [r.radius for r in records["B-DisC"]] == tiny.radii

    def test_all_registered_algorithms_run(self, tiny):
        for name in ALGORITHMS:
            record = run_algorithm(name, tiny.dataset, 0.25)
            assert record.size >= 1, name


class TestZoomExperiments:
    def test_zoom_in_rows(self, tiny):
        rows = zoom_in_experiment(tiny, [0.25, 0.15, 0.1])
        assert len(rows) == 2
        for row in rows:
            assert set(row["sizes"]) == {"Greedy-DisC", "Zoom-In", "Greedy-Zoom-In"}
            for value in row["jaccard"].values():
                assert 0.0 <= value <= 1.0

    def test_zoom_in_requires_descending(self, tiny):
        with pytest.raises(ValueError, match="descending"):
            zoom_in_experiment(tiny, [0.1, 0.2])

    def test_zoom_out_rows(self, tiny):
        rows = zoom_out_experiment(tiny, [0.1, 0.2])
        assert len(rows) == 1
        assert "Greedy-Zoom-Out (c)" in rows[0]["sizes"]

    def test_zoom_out_requires_ascending(self, tiny):
        with pytest.raises(ValueError, match="ascending"):
            zoom_out_experiment(tiny, [0.2, 0.1])


class TestAnalysisExperiments:
    def test_fat_factor_sweep(self):
        data = uniform_dataset(n=200, seed=3)
        rows = fat_factor_sweep(data, [0.2], policies=("min_overlap", "random"), capacity=6)
        assert len(rows) == 2
        for row in rows:
            assert 0.0 <= row["fat_factor"] <= 1.0
            assert len(row["node_accesses"]) == 1
        # Tree shape must not change which objects are diverse (paper,
        # Section 6: "different tree characteristics do not have an
        # impact on which objects are selected as diverse").
        sizes = {tuple(row["sizes"]) for row in rows}
        assert len(sizes) == 1

    def test_lemma7_rows_respect_bound(self):
        data = clustered_dataset(n=250, seed=4)
        rows = lemma7_experiment(data, [0.1, 0.2])
        assert rows
        for row in rows:
            assert row["ratio"] <= row["bound"] + 1e-9

    def test_fast_c_comparison_fields(self):
        data = uniform_dataset(n=200, seed=5)
        rows = fast_c_comparison(data, [0.15])
        assert set(rows[0]) >= {
            "greedy_c_size", "fast_c_size", "greedy_c_accesses", "fast_c_accesses",
        }

    def test_capacity_comparison_monotone(self):
        data = uniform_dataset(n=300, seed=6)
        rows = capacity_comparison(data, 0.1, capacities=(10, 40))
        assert rows[0]["node_accesses"] > rows[1]["node_accesses"]

    def test_bottom_up_comparison(self):
        data = uniform_dataset(n=250, seed=7)
        row = bottom_up_comparison(data, 0.1, sample=50)
        assert row["top_down_accesses"] > 0
        assert row["bottom_up_accesses"] > 0

    def test_model_comparison_matched_k(self):
        data = clustered_dataset(n=250, seed=8)
        table = model_comparison(data, 0.2)
        ks = {row["size"] for name, row in table.items() if "r-C" not in name}
        assert len(ks) == 1
        assert table["DisC (GMIS)"]["coverage"] == pytest.approx(1.0)

    def test_radius_for_target_size(self):
        data = clustered_dataset(n=250, seed=8)
        radius = radius_for_target_size(data, 12, low=0.02, high=0.8, tolerance=2)
        size = run_algorithm("Gr-G-DisC (Pruned)", data, radius).size
        assert abs(size - 12) <= 3


class TestTables:
    def test_format_table_alignment(self):
        text = format_table("T", ["a", "bb"], [[1, 2.0], [333, 4.5]], float_fmt="{:.1f}")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "333" in text and "4.5" in text

    def test_format_series(self):
        text = format_series("S", "r", [0.1, 0.2], {"alg": [1, 2], "other": [3, 4]})
        assert "alg" in text and "other" in text
        assert text.startswith("S\n")

    def test_save_text(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        from repro.experiments import save_text

        path = save_text("unit", "hello")
        assert (tmp_path / "unit.txt").read_text() == "hello"
        assert path.endswith("unit.txt")

"""The blocked neighborhood engine: structure, builders, and parity.

The engine's contract mirrors the CSR one, one level up: a
:class:`~repro.graph.blocked.BlockedNeighborhood` must describe exactly
the same graph as the flat builders (row for row), its primitives must
maintain exactly the same counts, and every heuristic driven by it must
replay the legacy selection order byte for byte.
"""

import numpy as np
import pytest

import repro.graph.blocked as blocked_module
from repro.core import basic_disc, fast_c, greedy_c, greedy_disc, zoom_in, zoom_out
from repro.core.extensions import weighted_disc
from repro.datasets import clustered_dataset
from repro.distance import CHEBYSHEV, EUCLIDEAN, MANHATTAN
from repro.graph.blocked import (
    BlockedNeighborhood,
    build_blocked_grid,
    build_grid_auto,
)
from repro.graph.csr import CSRNeighborhood, build_csr_grid, build_csr_pairwise
from repro.index import BruteForceIndex, GridIndex


def dense_blobs(n_per_blob=700, extra_uniform=400, seed=3):
    """Blobs tight enough that resolution-4 cells go near-clique, plus
    a uniform background so the sparse remainder is non-trivial."""
    rng = np.random.default_rng(seed)
    return np.concatenate(
        [
            rng.normal(loc=c, scale=0.006, size=(n_per_blob, 2))
            for c in ([0.25, 0.25], [0.75, 0.75], [0.3, 0.8])
        ]
        + [rng.random((extra_uniform, 2))]
    )


RADIUS = 0.05


@pytest.fixture(scope="module")
def blobs():
    return dense_blobs()


@pytest.fixture(scope="module")
def flat(blobs):
    return build_csr_grid(blobs, EUCLIDEAN, RADIUS)


@pytest.fixture(scope="module")
def blocked(blobs):
    blk = build_blocked_grid(blobs, EUCLIDEAN, RADIUS, min_block_pairs=64)
    assert blk.num_blocks > 0, "fixture must actually exercise blocks"
    return blk


# ----------------------------------------------------------------------
# Structure: the blocked adjacency is the same graph
# ----------------------------------------------------------------------
class TestBlockedStructure:
    def test_same_graph_row_for_row(self, blobs, flat, blocked):
        assert blocked.nnz == flat.nnz
        assert blocked.stored_nnz < flat.nnz  # something is implicit
        assert np.array_equal(blocked.degrees, flat.degrees)
        for i in range(0, len(blobs), 11):
            assert np.array_equal(blocked.neighbors(i), flat.neighbors(i)), i

    @pytest.mark.parametrize("metric", [EUCLIDEAN, MANHATTAN, CHEBYSHEV],
                             ids=lambda m: m.name)
    def test_metric_family_parity(self, blobs, metric):
        reference = build_csr_pairwise(blobs, metric, RADIUS)
        blk = build_blocked_grid(blobs, metric, RADIUS, min_block_pairs=64)
        assert blk.nnz == reference.nnz
        for i in range(0, len(blobs), 37):
            assert np.array_equal(blk.neighbors(i), reference.neighbors(i))

    def test_dense_fraction_accounts_memory(self, blocked):
        assert blocked.dense_nnz + blocked.stored_nnz == blocked.nnz
        assert 0.0 < blocked.dense_fraction < 1.0
        # Implicit storage: ids per side, not edges.
        assert blocked.side_members.size < blocked.dense_nnz

    def test_no_blocks_degenerates_to_wrapper(self, rng):
        points = rng.random((300, 2))  # sparse: nothing dense to block
        blk = build_blocked_grid(points, EUCLIDEAN, 0.1)
        flat = build_csr_grid(points, EUCLIDEAN, 0.1)
        assert blk.num_blocks == 0
        assert blk.nnz == flat.nnz == blk.stored_nnz
        assert blk.dense_fraction == 0.0

    def test_empty_points(self):
        blk = build_blocked_grid(np.empty((0, 2)), EUCLIDEAN, 0.1)
        assert blk.n == 0 and blk.nnz == 0 and blk.num_blocks == 0
        auto = build_grid_auto(np.empty((0, 2)), EUCLIDEAN, 0.1)
        assert isinstance(auto, CSRNeighborhood) and auto.n == 0

    def test_rejects_nan_radius(self, blobs):
        with pytest.raises(ValueError, match="NaN"):
            build_blocked_grid(blobs, EUCLIDEAN, float("nan"))
        with pytest.raises(ValueError, match="finite"):
            build_grid_auto(blobs, EUCLIDEAN, float("inf"))


# ----------------------------------------------------------------------
# Primitives: counts maintained identically to the flat CSR
# ----------------------------------------------------------------------
class TestBlockedPrimitives:
    def test_neighbor_counts_random_masks(self, blobs, flat, blocked, rng):
        n = len(blobs)
        for _ in range(8):
            mask = rng.random(n) < rng.random()
            assert np.array_equal(
                blocked.neighbor_counts(mask), flat.neighbor_counts(mask)
            )

    def test_decrement_random_batches(self, blobs, flat, blocked, rng):
        n = len(blobs)
        for _ in range(8):
            counts_flat = flat.degrees.astype(np.int64)
            counts_blocked = counts_flat.copy()
            sources = rng.choice(n, size=int(rng.integers(1, 400)), replace=False)
            eligible = rng.random(n) < 0.7
            touched_flat = flat.decrement(counts_flat, sources, eligible)
            touched_blocked = blocked.decrement(counts_blocked, sources, eligible)
            assert np.array_equal(counts_flat, counts_blocked)
            # The blocked touched set may be a (harmless) superset: a
            # lone clique source nets zero but is still reported.
            assert set(touched_flat.tolist()) <= set(touched_blocked.tolist())

    def test_cover_mask_matches(self, blobs, flat, blocked, rng):
        n = len(blobs)
        for _ in range(6):
            ids = rng.choice(n, size=int(rng.integers(1, 40)), replace=False)
            for include in (True, False):
                assert np.array_equal(
                    flat.cover_mask(ids, include_sources=include),
                    blocked.cover_mask(ids, include_sources=include),
                ), include

    def test_cover_mask_lone_clique_member(self, blobs, flat, blocked):
        """A single id inside a clique block is not its own neighbor —
        including when the caller passes it twice (duplicates must not
        read as two distinct clique members)."""
        clique_sides = np.flatnonzero(blocked.side_is_clique)
        assert clique_sides.size > 0
        member = int(blocked._side(int(clique_sides[0]))[0])
        for ids in (np.array([member]), np.array([member, member])):
            assert np.array_equal(
                flat.cover_mask(ids, include_sources=False),
                blocked.cover_mask(ids, include_sources=False),
            ), ids

    def test_gather_matches_rows(self, flat, blocked):
        ids = np.array([0, 5, 700, 1500])
        assert np.array_equal(blocked.gather(ids), flat.gather(ids))
        assert blocked.gather(np.empty(0, dtype=np.int64)).size == 0


# ----------------------------------------------------------------------
# Auto pick: flat vs blocked by dense-edge fraction
# ----------------------------------------------------------------------
class TestAutoPick:
    def test_dense_data_upgrades(self, blobs):
        adj = build_grid_auto(
            blobs, EUCLIDEAN, RADIUS, min_block_pairs=64, min_dense_edges=10_000
        )
        assert isinstance(adj, BlockedNeighborhood)

    def test_sparse_data_stays_flat(self, rng):
        adj = build_grid_auto(rng.random((500, 2)), EUCLIDEAN, 0.1)
        assert isinstance(adj, CSRNeighborhood)

    def test_index_transparent_upgrade(self, blobs, monkeypatch):
        monkeypatch.setattr(blocked_module, "MIN_DENSE_EDGES", 10_000)
        monkeypatch.setattr(blocked_module, "MIN_BLOCK_PAIRS", 64)
        index = GridIndex(blobs, EUCLIDEAN, cell_size=0.05)
        adj = index.csr_neighborhood(RADIUS)
        assert isinstance(adj, BlockedNeighborhood)
        brute = BruteForceIndex(blobs, EUCLIDEAN)
        assert isinstance(brute.csr_neighborhood(RADIUS), BlockedNeighborhood)

    def test_range_queries_on_blocked_index(self, blobs, monkeypatch):
        monkeypatch.setattr(blocked_module, "MIN_DENSE_EDGES", 10_000)
        index = GridIndex(blobs, EUCLIDEAN, cell_size=0.05)
        index.csr_neighborhood(RADIUS)
        oracle = BruteForceIndex(blobs, EUCLIDEAN, accelerate=False)
        for i in (0, 3, 900, 2400):
            assert sorted(index.range_query(i, RADIUS)) == sorted(
                oracle.range_query(i, RADIUS)
            )
        batch = index.range_query_batch([0, 900], RADIUS)
        assert sorted(batch[0].tolist()) == sorted(oracle.range_query(0, RADIUS))


# ----------------------------------------------------------------------
# Selection parity: byte-identical orders on the blocked engine
# ----------------------------------------------------------------------
@pytest.fixture()
def forced_blocked(monkeypatch):
    """Force every grid-auto build in the test to choose blocked."""
    monkeypatch.setattr(blocked_module, "MIN_DENSE_EDGES", 1_000)
    monkeypatch.setattr(blocked_module, "MIN_BLOCK_PAIRS", 64)


class TestBlockedSelectionParity:
    def engines(self, points):
        legacy = BruteForceIndex(points, EUCLIDEAN, accelerate=False)
        fast = GridIndex(points, EUCLIDEAN, cell_size=0.05)
        return legacy, fast

    def assert_blocked(self, index, radius=RADIUS):
        assert isinstance(
            index.csr_neighborhood(radius), BlockedNeighborhood
        ), "parity run must actually use the blocked engine"

    def test_greedy_heuristics_identical(self, blobs, forced_blocked):
        for algo in (greedy_disc, greedy_c, fast_c, basic_disc):
            legacy, fast = self.engines(blobs)
            self.assert_blocked(fast)
            assert (
                algo(legacy, RADIUS).selected == algo(fast, RADIUS).selected
            ), algo.__name__

    @pytest.mark.parametrize("strategy", ["auto", "lazy", "eager"])
    def test_strategy_names_all_resolve(self, blobs, forced_blocked,
                                        strategy, monkeypatch):
        import repro.core.greedy as greedy_module

        monkeypatch.setattr(greedy_module, "CSR_SELECTION_STRATEGY", strategy)
        legacy, fast = self.engines(blobs)
        self.assert_blocked(fast)
        assert greedy_disc(legacy, RADIUS).selected == greedy_disc(fast, RADIUS).selected

    def test_zoom_identical(self, blobs, forced_blocked):
        legacy, fast = self.engines(blobs)
        coarse_l = greedy_disc(legacy, RADIUS, track_closest_black=True)
        coarse_f = greedy_disc(fast, RADIUS, track_closest_black=True)
        assert np.allclose(coarse_l.closest_black, coarse_f.closest_black)
        finer, coarser = RADIUS / 2, RADIUS * 2
        # Zoom passes only consume cached adjacencies; warm them so the
        # blocked path is what's tested.
        fast.csr_neighborhood(finer)
        fast.csr_neighborhood(coarser)
        self.assert_blocked(fast, coarser)
        for greedy in (True, False):
            assert (
                zoom_in(legacy, coarse_l, finer, greedy=greedy).selected
                == zoom_in(fast, coarse_f, finer, greedy=greedy).selected
            ), greedy
        for variant in (None, "a", "b", "c"):
            assert (
                zoom_out(legacy, coarse_l, coarser, greedy_variant=variant).selected
                == zoom_out(fast, coarse_f, coarser, greedy_variant=variant).selected
            ), variant

    def test_weighted_identical(self, blobs, forced_blocked, rng):
        weights = rng.random(len(blobs))
        legacy, fast = self.engines(blobs)
        self.assert_blocked(fast)
        for alpha in (0.0, 0.5, 1.0):
            assert (
                weighted_disc(legacy, RADIUS, weights=weights, alpha=alpha).selected
                == weighted_disc(fast, RADIUS, weights=weights, alpha=alpha).selected
            ), alpha

    def test_clustered_dataset_family(self, forced_blocked):
        """The bench workload family, small scale, full pipeline."""
        data = clustered_dataset(n=2500, dim=2, seed=7)
        legacy = BruteForceIndex(data.points, data.metric, accelerate=False)
        fast = GridIndex(data.points, data.metric, cell_size=0.05)
        assert (
            greedy_disc(legacy, 0.03).selected == greedy_disc(fast, 0.03).selected
        )

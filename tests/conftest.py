"""Shared fixtures for the DisC reproduction test suite."""

from __future__ import annotations

import os
import signal

#: Opt-in runtime lock-order audit (``REPRO_LOCK_AUDIT=1``): swap the
#: ``threading`` lock factories for recording proxies *before* any
#: repro object is constructed, so every lock the library creates
#: during the run lands in the acquisition graph.
#: ``pytest_sessionfinish`` below fails the session on a cycle.
_lockaudit = None
if os.environ.get("REPRO_LOCK_AUDIT") == "1":
    from repro.analysis import lockaudit as _lockaudit

    _lockaudit.install()

import numpy as np
import pytest

#: Service-layer test files run real servers, worker pools and chaos
#: traces — a bug there can hang instead of fail.  With pytest-timeout
#: not available, a SIGALRM watchdog turns a hang into a TimeoutError
#: with a usable traceback.  Main-thread only (where pytest runs test
#: calls); skipped on platforms without SIGALRM.
_WATCHDOG_FILES = {
    "test_service.py",
    "test_shared_cache.py",
    "test_resilience.py",
    "test_supervisor.py",
    "test_cancellation_paths.py",
    "test_obs.py",
}
_WATCHDOG_S = 120


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    watched = (
        hasattr(signal, "SIGALRM")
        and os.path.basename(str(item.fspath)) in _WATCHDOG_FILES
    )
    if not watched:
        yield
        return

    def _timed_out(signum, frame):
        raise TimeoutError(
            f"watchdog: {item.nodeid} still running after {_WATCHDOG_S}s"
        )

    previous = signal.signal(signal.SIGALRM, _timed_out)
    signal.alarm(_WATCHDOG_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)

def pytest_sessionfinish(session, exitstatus):
    if _lockaudit is None:
        return
    snapshot = _lockaudit.report()
    edges = len(snapshot["edges"])
    sites = len(snapshot["sites"])
    if snapshot["cycles"]:
        print("\nrepro-lockaudit: FAIL — lock-order cycle(s) detected:")
        for cycle in snapshot["cycles"]:
            print("  " + " -> ".join(cycle))
        session.exitstatus = 3
    else:
        print(
            f"\nrepro-lockaudit: acyclic ({sites} lock sites, "
            f"{edges} ordered edges, "
            f"{len(snapshot['same_site_pairs'])} same-site pairs)"
        )


from repro.distance import EUCLIDEAN, HAMMING, MANHATTAN
from repro.index import BruteForceIndex, GridIndex
from repro.mtree import MTreeIndex


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def small_uniform(rng):
    """60 uniform points in the unit square."""
    return rng.random((60, 2))


@pytest.fixture
def medium_uniform(rng):
    """300 uniform points in the unit square."""
    return rng.random((300, 2))


@pytest.fixture
def small_clustered(rng):
    """Three visually distinct clusters plus two outliers (35 points)."""
    blobs = [
        rng.normal(loc=(0.2, 0.2), scale=0.03, size=(12, 2)),
        rng.normal(loc=(0.8, 0.3), scale=0.04, size=(11, 2)),
        rng.normal(loc=(0.5, 0.8), scale=0.03, size=(10, 2)),
    ]
    outliers = np.array([[0.05, 0.95], [0.95, 0.95]])
    return np.clip(np.vstack(blobs + [outliers]), 0.0, 1.0)


@pytest.fixture
def categorical_points(rng):
    """40 rows x 5 categorical attributes with small vocabularies."""
    return rng.integers(0, 4, size=(40, 5))


INDEX_FACTORIES = {
    "brute": lambda pts, metric: BruteForceIndex(pts, metric),
    "grid": lambda pts, metric: GridIndex(pts, metric, cell_size=0.08),
    "mtree": lambda pts, metric: MTreeIndex(pts, metric, capacity=6),
}


@pytest.fixture(params=sorted(INDEX_FACTORIES))
def index_factory(request):
    """Parametrises a test over all index engines (grid skips Hamming)."""
    return request.param, INDEX_FACTORIES[request.param]


def make_index(kind, points, metric=EUCLIDEAN):
    return INDEX_FACTORIES[kind](points, metric)

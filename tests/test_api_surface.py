"""Public-API surface snapshot + shim deprecation contract.

Pins the exported names and the signatures of the stable entry points
so an accidental API change fails CI instead of shipping.  The CI
workflow additionally runs this module with ``-W
error::DeprecationWarning`` — the shim-deprecation lane: the deprecated
:class:`~repro.api.DiscDiversifier` must warn (and only it), while the
supported surface stays warning-clean.

Updating this file is the deliberate act that changes the public API.
"""

import inspect
import warnings

import pytest

import repro
from repro import DiscDiversifier, DiscSession, uniform_dataset

#: The exported surface, frozen.  ``DiscSession``/``SelectRequest``/
#: ``EngineSpec``/``execute_request`` arrived with the request-pipeline
#: redesign (ISSUE 4); everything else predates it.
EXPECTED_ALL = sorted([
    "DiscSession",
    "DiscDiversifier",
    "SelectRequest",
    "EngineSpec",
    "build_index",
    "disc_select",
    "execute_request",
    "basic_disc",
    "greedy_disc",
    "greedy_c",
    "fast_c",
    "zoom_in",
    "zoom_out",
    "local_zoom",
    "verify_disc",
    "DiscResult",
    "Dataset",
    "uniform_dataset",
    "clustered_dataset",
    "cities_dataset",
    "cameras_dataset",
    "get_metric",
    "NeighborIndex",
    "BruteForceIndex",
    "GridIndex",
    "MTree",
    "MTreeIndex",
    "__version__",
])

#: callable -> exact signature string (annotations as written).
EXPECTED_SIGNATURES = {
    repro.build_index: (
        "(data: 'Union[Dataset, np.ndarray]', metric=None, *, "
        "engine: 'str' = 'auto', **engine_options) -> 'NeighborIndex'"
    ),
    repro.disc_select: (
        "(data: 'Union[Dataset, np.ndarray]', radius: 'float', *, "
        "metric=None, method: 'str' = 'greedy', engine: 'str' = 'auto', "
        "engine_options: 'Optional[dict]' = None, **method_options) "
        "-> 'DiscResult'"
    ),
    repro.execute_request: (
        "(data: 'Union[Dataset, np.ndarray]', "
        "request: 'Union[SelectRequest, dict]', *, metric=None) "
        "-> 'DiscResult'"
    ),
    DiscSession.__init__: (
        "(self, data: 'Union[Dataset, np.ndarray]', metric=None, *, "
        "engine: 'str' = 'auto', cache_radii: 'int' = 8, "
        "adjacency_cache: 'Optional[AdjacencyCache]' = None, "
        "**engine_options)"
    ),
    DiscSession.select: (
        "(self, radius: 'float', *, method: 'str' = 'greedy', **options) "
        "-> 'DiscResult'"
    ),
    DiscSession.select_many: (
        "(self, radii: 'Sequence[float]', *, method: 'str' = 'greedy', "
        "**options) -> 'List[DiscResult]'"
    ),
    DiscSession.execute: (
        "(self, request: 'Union[SelectRequest, dict]') -> 'DiscResult'"
    ),
    DiscSession.zoom_in: (
        "(self, new_radius: 'float', *, greedy: 'bool' = True) -> 'DiscResult'"
    ),
    DiscSession.zoom_out: (
        "(self, new_radius: 'float', *, variant: 'Optional[str]' = 'a') "
        "-> 'DiscResult'"
    ),
    DiscSession.local_zoom: (
        "(self, center_id: 'int', new_radius: 'float', *, "
        "greedy: 'bool' = True) -> 'DiscResult'"
    ),
    DiscSession.compare_methods: (
        "(self, radius: 'float', *, seed: 'int' = 0) -> 'dict'"
    ),
}


def test_exported_names_match_snapshot():
    assert sorted(repro.__all__) == EXPECTED_ALL


def test_exported_names_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


@pytest.mark.parametrize(
    "func,expected",
    EXPECTED_SIGNATURES.items(),
    ids=[f.__qualname__ for f in EXPECTED_SIGNATURES],
)
def test_signature_snapshot(func, expected):
    assert str(inspect.signature(func)) == expected


def test_diversifier_shim_is_a_session_and_warns():
    data = uniform_dataset(n=60, seed=3)
    with pytest.warns(DeprecationWarning, match="DiscSession"):
        shim = DiscDiversifier(data, engine="brute")
    assert isinstance(shim, DiscSession)
    # Shim signature == session signature (it is the same constructor).
    assert str(inspect.signature(DiscDiversifier.__init__)) == str(
        inspect.signature(DiscSession.__init__)
    )
    assert shim.select(0.2).size >= 1


def test_supported_surface_is_warning_clean():
    """The replacement API must not trip the warnings-as-errors lane."""
    data = uniform_dataset(n=60, seed=3)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        session = DiscSession(data, engine="brute")
        session.select(0.2)
        repro.build_index(data, engine="brute")
        repro.disc_select(data, 0.2, engine="brute")
        repro.execute_request(data, repro.SelectRequest(radius=0.2))

"""Unit tests for repro.distance.metrics."""

import numpy as np
import pytest

from repro.distance import (
    CHEBYSHEV,
    EUCLIDEAN,
    HAMMING,
    MANHATTAN,
    HammingMetric,
    Metric,
    MinkowskiMetric,
    available_metrics,
    get_metric,
)

ALL_METRICS = [EUCLIDEAN, MANHATTAN, CHEBYSHEV, MinkowskiMetric(3), HAMMING]


class TestDistanceValues:
    def test_euclidean_known_value(self):
        assert EUCLIDEAN.distance([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_manhattan_known_value(self):
        assert MANHATTAN.distance([0, 0], [3, 4]) == pytest.approx(7.0)

    def test_chebyshev_known_value(self):
        assert CHEBYSHEV.distance([0, 0], [3, 4]) == pytest.approx(4.0)

    def test_minkowski_p2_matches_euclidean(self):
        m = MinkowskiMetric(2)
        a, b = np.array([0.1, 0.9, 0.4]), np.array([0.7, 0.3, 0.2])
        assert m.distance(a, b) == pytest.approx(EUCLIDEAN.distance(a, b))

    def test_minkowski_p1_matches_manhattan(self):
        m = MinkowskiMetric(1)
        a, b = np.array([0.1, 0.9]), np.array([0.7, 0.3])
        assert m.distance(a, b) == pytest.approx(MANHATTAN.distance(a, b))

    def test_minkowski_rejects_p_below_one(self):
        with pytest.raises(ValueError, match="metric"):
            MinkowskiMetric(0.5)

    def test_hamming_counts_differing_coordinates(self):
        assert HAMMING.distance([1, 2, 3, 4], [1, 0, 3, 9]) == 2.0

    def test_hamming_identical_rows(self):
        assert HAMMING.distance([5, 5, 5], [5, 5, 5]) == 0.0


class TestMetricAxioms:
    @pytest.mark.parametrize("metric", ALL_METRICS, ids=lambda m: m.name)
    def test_identity_and_symmetry(self, metric, rng):
        if isinstance(metric, HammingMetric):
            pts = rng.integers(0, 5, size=(10, 4))
        else:
            pts = rng.random((10, 4))
        for i in range(len(pts)):
            assert metric.distance(pts[i], pts[i]) == pytest.approx(0.0)
            for j in range(i + 1, len(pts)):
                d_ij = metric.distance(pts[i], pts[j])
                assert d_ij >= 0.0
                assert d_ij == pytest.approx(metric.distance(pts[j], pts[i]))

    @pytest.mark.parametrize("metric", ALL_METRICS, ids=lambda m: m.name)
    def test_triangle_inequality(self, metric, rng):
        if isinstance(metric, HammingMetric):
            pts = rng.integers(0, 5, size=(12, 4))
        else:
            pts = rng.random((12, 4))
        for i in range(len(pts)):
            for j in range(len(pts)):
                for k in range(len(pts)):
                    assert metric.distance(pts[i], pts[k]) <= (
                        metric.distance(pts[i], pts[j])
                        + metric.distance(pts[j], pts[k])
                        + 1e-9
                    )


class TestVectorisedForms:
    @pytest.mark.parametrize("metric", ALL_METRICS, ids=lambda m: m.name)
    def test_to_point_matches_scalar(self, metric, rng):
        if isinstance(metric, HammingMetric):
            pts = rng.integers(0, 5, size=(15, 3))
        else:
            pts = rng.random((15, 3))
        target = pts[4]
        vector = metric.to_point(pts, target)
        for i, point in enumerate(pts):
            assert vector[i] == pytest.approx(metric.distance(point, target))

    @pytest.mark.parametrize("metric", ALL_METRICS, ids=lambda m: m.name)
    def test_pairwise_matches_scalar(self, metric, rng):
        if isinstance(metric, HammingMetric):
            pts = rng.integers(0, 5, size=(8, 3))
        else:
            pts = rng.random((8, 3))
        matrix = metric.pairwise(pts)
        assert matrix.shape == (8, 8)
        for i in range(8):
            for j in range(8):
                assert matrix[i, j] == pytest.approx(
                    metric.distance(pts[i], pts[j]), abs=1e-7
                )

    def test_pairwise_two_operands(self, rng):
        a, b = rng.random((5, 2)), rng.random((7, 2))
        matrix = EUCLIDEAN.pairwise(a, b)
        assert matrix.shape == (5, 7)
        assert matrix[2, 3] == pytest.approx(EUCLIDEAN.distance(a[2], b[3]))

    def test_euclidean_pairwise_numerically_safe(self):
        # Nearly-identical points must not produce NaN from negative sq.
        pts = np.array([[0.3, 0.3], [0.3, 0.3 + 1e-12]])
        matrix = EUCLIDEAN.pairwise(pts)
        assert np.all(np.isfinite(matrix))


class TestRegistry:
    def test_get_metric_by_name(self):
        assert get_metric("euclidean") is EUCLIDEAN
        assert get_metric("L2") is EUCLIDEAN
        assert get_metric("manhattan") is MANHATTAN
        assert get_metric("hamming") is HAMMING

    def test_get_metric_passthrough(self):
        assert get_metric(MANHATTAN) is MANHATTAN

    def test_get_metric_unknown(self):
        with pytest.raises(ValueError, match="unknown metric"):
            get_metric("cosine")

    def test_available_metrics_listed(self):
        names = available_metrics()
        assert "euclidean" in names and "hamming" in names

    def test_equality_and_hash(self):
        assert MinkowskiMetric(3) == MinkowskiMetric(3)
        assert MinkowskiMetric(3) != MinkowskiMetric(4)
        assert hash(MinkowskiMetric(3)) == hash(MinkowskiMetric(3))
        assert EUCLIDEAN == get_metric("l2")

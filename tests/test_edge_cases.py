"""Edge-case hardening of the public API and builder parity sweep.

Codifies the sweep used to hunt the PR's bug reports: degenerate inputs
(duplicates, constant coordinates, r=0, r beyond the data extent,
n ∈ {0, 1}) must produce the *same adjacency* from every builder and
engine, and the public entry points must reject non-finite radii and
answer empty datasets instead of crashing.
"""

import numpy as np
import pytest

from repro.api import DiscSession, build_index, disc_select
from repro.core.extensions import StreamingDisC
from repro.datasets import Dataset
from repro.distance import EUCLIDEAN
from repro.graph.blocked import build_blocked_grid, build_grid_auto
from repro.graph.csr import CSRNeighborhood, build_csr_grid, build_csr_pairwise
from repro.index import BruteForceIndex, GridIndex, KDTreeIndex
from repro.validation import validate_radius


# ----------------------------------------------------------------------
# Degenerate-geometry parity sweep: every builder, same adjacency
# ----------------------------------------------------------------------
def _duplicates():
    rng = np.random.default_rng(0)
    base = rng.random((40, 2))
    return np.concatenate([base, base[:15], base[:5]]), 0.1


def _constant_coordinate():
    rng = np.random.default_rng(1)
    points = rng.random((80, 2))
    points[:, 1] = 0.5  # one exactly-degenerate axis
    return points, 0.08


def _all_identical():
    return np.full((30, 2), 0.25), 0.05


def _zero_radius():
    rng = np.random.default_rng(2)
    base = rng.random((50, 2))
    return np.concatenate([base, base[:10]]), 0.0  # only exact twins join

def _radius_beyond_extent():
    rng = np.random.default_rng(3)
    return rng.random((60, 2)) * 0.1, 5.0  # complete graph


def _single_point():
    return np.array([[0.3, 0.7]]), 0.1


def _empty():
    return np.empty((0, 2)), 0.1


EDGE_CASES = {
    "duplicates": _duplicates,
    "constant-coordinate": _constant_coordinate,
    "all-identical": _all_identical,
    "zero-radius": _zero_radius,
    "radius-beyond-extent": _radius_beyond_extent,
    "single-point": _single_point,
    "empty": _empty,
}


def _assert_same_graph(reference: CSRNeighborhood, other, label: str) -> None:
    assert other.n == reference.n, label
    assert other.nnz == reference.nnz, label
    assert np.array_equal(other.degrees, reference.degrees), label
    for i in range(reference.n):
        assert np.array_equal(other.neighbors(i), reference.neighbors(i)), (
            label,
            i,
        )


@pytest.mark.parametrize("case", sorted(EDGE_CASES))
def test_builder_parity_sweep(case):
    points, radius = EDGE_CASES[case]()
    reference = build_csr_pairwise(points, EUCLIDEAN, radius)
    assert reference.n == len(points)
    _assert_same_graph(
        reference, build_csr_grid(points, EUCLIDEAN, radius), "grid"
    )
    _assert_same_graph(
        reference,
        build_blocked_grid(points, EUCLIDEAN, radius, min_block_pairs=16),
        "blocked",
    )
    _assert_same_graph(
        reference, build_grid_auto(points, EUCLIDEAN, radius), "auto"
    )


@pytest.mark.parametrize("case", sorted(set(EDGE_CASES) - {"empty"}))
@pytest.mark.parametrize("engine", ["brute", "grid", "kdtree"])
def test_index_engine_parity_sweep(case, engine):
    """Index-built adjacencies agree with the pairwise oracle (indexes
    reject n=0 at construction; disc_select answers that case, below)."""
    points, radius = EDGE_CASES[case]()
    reference = build_csr_pairwise(points, EUCLIDEAN, radius)
    index = build_index(points, EUCLIDEAN, engine=engine)
    csr = index.csr_neighborhood(radius)
    assert csr is not None
    _assert_same_graph(reference, csr, engine)


@pytest.mark.parametrize("case", sorted(set(EDGE_CASES) - {"empty"}))
def test_selection_parity_on_edge_cases(case):
    points, radius = EDGE_CASES[case]()
    legacy = disc_select(
        points, radius, metric=EUCLIDEAN, engine="brute",
        engine_options={"accelerate": False},
    )
    fast = disc_select(points, radius, metric=EUCLIDEAN, engine="grid")
    assert legacy.selected == fast.selected


# ----------------------------------------------------------------------
# Satellite: NaN / inf / -0.0 radius validation at every entry point
# ----------------------------------------------------------------------
NAN = float("nan")
INF = float("inf")


class TestRadiusValidation:
    def test_validate_radius_contract(self):
        assert validate_radius(0) == 0.0
        assert validate_radius(-0.0) == 0.0
        assert str(validate_radius(-0.0)) == "0.0"  # normalised sign
        assert validate_radius(0.25) == 0.25
        for bad in (NAN, INF, -INF):
            with pytest.raises(ValueError):
                validate_radius(bad)
        with pytest.raises(ValueError, match="non-negative"):
            validate_radius(-0.1)
        with pytest.raises(TypeError):
            validate_radius("0.1")

    @pytest.mark.parametrize("bad", [NAN, INF, -INF, -1.0])
    def test_disc_select_rejects(self, small_uniform, bad):
        with pytest.raises(ValueError):
            disc_select(small_uniform, bad, metric=EUCLIDEAN)

    def test_disc_select_nan_regression(self, small_uniform):
        """The original bug: NaN sailed through `radius < 0` and the
        whole dataset came back as "diverse"."""
        with pytest.raises(ValueError, match="NaN"):
            disc_select(small_uniform, NAN, metric=EUCLIDEAN)

    def test_disc_select_accepts_zero_variants(self, small_uniform):
        for zero in (0, 0.0, -0.0):
            result = disc_select(small_uniform, zero, metric=EUCLIDEAN)
            assert result.size == len(small_uniform)  # no twins: all kept
            assert result.radius == 0.0

    @pytest.mark.parametrize("bad", [NAN, INF, -1.0])
    def test_streaming_rejects(self, bad):
        with pytest.raises(ValueError):
            StreamingDisC(radius=bad)

    @pytest.mark.parametrize("bad", [NAN, INF, -1.0])
    def test_csr_builders_reject(self, small_uniform, bad):
        for builder in (
            build_csr_pairwise,
            build_csr_grid,
            build_blocked_grid,
            build_grid_auto,
        ):
            with pytest.raises(ValueError):
                builder(small_uniform, EUCLIDEAN, bad)

    def test_heuristics_reject_nan(self, small_uniform):
        from repro.core import basic_disc, fast_c, greedy_c, greedy_disc
        from repro.mtree import MTreeIndex

        index = BruteForceIndex(small_uniform, EUCLIDEAN)
        mtree = MTreeIndex(small_uniform, EUCLIDEAN, capacity=8)
        for algo in (basic_disc, greedy_disc, greedy_c, fast_c):
            for idx in (index, mtree):
                with pytest.raises(ValueError):
                    algo(idx, NAN)

    def test_zoom_rejects_nan(self, small_uniform):
        from repro.core import zoom_in, zoom_out

        index = BruteForceIndex(small_uniform, EUCLIDEAN)
        diversifier = DiscSession(small_uniform, EUCLIDEAN, engine="brute")
        previous = diversifier.select(0.2)
        for zoom, direction in ((zoom_in, "in"), (zoom_out, "out")):
            with pytest.raises(ValueError):
                zoom(diversifier.index, previous, NAN)


# ----------------------------------------------------------------------
# Satellite: empty datasets answered, not crashed
# ----------------------------------------------------------------------
class TestEmptyInputs:
    def test_disc_select_empty_returns_empty_result(self):
        for method in ("basic", "greedy", "greedy-c", "fast-c"):
            result = disc_select(
                np.empty((0, 2)), 0.1, metric=EUCLIDEAN, method=method
            )
            assert result.selected == []
            assert result.size == 0
            assert result.radius == 0.1
            assert result.meta.get("empty_input") is True

    def test_disc_select_empty_still_validates_radius(self):
        with pytest.raises(ValueError, match="NaN"):
            disc_select(np.empty((0, 2)), NAN, metric=EUCLIDEAN)
        with pytest.raises(ValueError, match="method"):
            disc_select(np.empty((0, 2)), 0.1, metric=EUCLIDEAN, method="bogus")

    def test_disc_select_empty_still_validates_request(self):
        """A typo'd engine, engine option or heuristic kwarg must fail
        on empty data exactly as it would on real data — no shipping
        green until the first non-empty request."""
        empty = np.empty((0, 2))
        with pytest.raises(ValueError, match="unknown engine"):
            disc_select(empty, 0.1, metric=EUCLIDEAN, engine="bogus")
        with pytest.raises(ValueError, match="valid options"):
            disc_select(
                empty, 0.1, metric=EUCLIDEAN, engine_options={"index": "kdtree"}
            )
        with pytest.raises(ValueError, match="accelerate"):
            disc_select(
                empty, 0.1, metric=EUCLIDEAN, engine_options={"accelerate": 1}
            )
        with pytest.raises(TypeError, match="totally_unknown"):
            disc_select(empty, 0.1, metric=EUCLIDEAN, totally_unknown=True)
        # Positional-parameter collisions and mtree/accelerate=True are
        # rejected on non-empty data, so the empty path must match.
        with pytest.raises(TypeError, match="index"):
            disc_select(empty, 0.1, metric=EUCLIDEAN, index="oops")
        with pytest.raises(ValueError, match="M-tree"):
            disc_select(
                empty, 0.1, metric=EUCLIDEAN,
                engine="mtree", engine_options={"accelerate": True},
            )

    def test_disc_select_empty_variant_labels_match_nonempty(self, small_uniform):
        for kwargs, expected in (
            ({"method": "greedy", "lazy": True}, "Lazy-Grey-Greedy-DisC"),
            ({"method": "greedy", "update_variant": "white"}, "White-Greedy-DisC"),
            ({"method": "basic", "prune": True}, "Basic-DisC (Pruned)"),
            ({"method": "greedy-c"}, "Greedy-C"),
        ):
            on_empty = disc_select(
                np.empty((0, 2)), 0.1, metric=EUCLIDEAN, **kwargs
            )
            on_data = disc_select(small_uniform, 0.1, metric=EUCLIDEAN, **kwargs)
            assert on_empty.algorithm == on_data.algorithm == expected, kwargs

    def test_empty_dataset_object(self):
        data = Dataset(
            name="empty", points=np.empty((0, 2)), metric=EUCLIDEAN
        )
        assert disc_select(data, 0.1).selected == []

    def test_builders_return_empty_adjacency(self):
        for builder in (build_csr_pairwise, build_csr_grid, build_grid_auto):
            csr = builder(np.empty((0, 2)), EUCLIDEAN, 0.1)
            assert csr.n == 0 and csr.nnz == 0
        assert CSRNeighborhood.from_rows([]).n == 0
        assert CSRNeighborhood.empty().degrees.size == 0

    def test_indexes_still_reject_empty_construction(self):
        # Index construction keeps its loud error: an index over nothing
        # has no iteration order or queries to serve.  disc_select
        # short-circuits before ever building one.
        for cls in (BruteForceIndex, GridIndex, KDTreeIndex):
            with pytest.raises(ValueError, match="empty"):
                cls(np.empty((0, 2)), EUCLIDEAN)


# ----------------------------------------------------------------------
# Satellite: unknown engine options name the valid keywords
# ----------------------------------------------------------------------
class TestEngineOptionValidation:
    def test_unknown_keyword_names_engine_and_valid_options(self, small_uniform):
        with pytest.raises(ValueError) as excinfo:
            build_index(small_uniform, EUCLIDEAN, index="kdtree")
        message = str(excinfo.value)
        assert "'index'" in message
        assert "MTreeIndex" in message  # the auto-picked engine
        assert "capacity" in message and "split_policy" in message

    def test_unknown_keyword_per_engine(self, small_uniform):
        with pytest.raises(ValueError, match="leafsize"):
            build_index(small_uniform, EUCLIDEAN, engine="kdtree", leafsizes=4)
        with pytest.raises(ValueError, match="cell_size"):
            build_index(small_uniform, EUCLIDEAN, engine="grid", cellsize=0.1)
        with pytest.raises(ValueError, match="cache_radius"):
            build_index(small_uniform, EUCLIDEAN, engine="brute", cache=0.1)

    def test_valid_options_still_pass(self, small_uniform):
        index = build_index(
            small_uniform, EUCLIDEAN, engine="kdtree", leafsize=8
        )
        assert isinstance(index, KDTreeIndex)
        index = build_index(
            small_uniform, EUCLIDEAN, engine="mtree", capacity=10
        )
        assert index.n == len(small_uniform)
        # accelerate is consumed before the engine signature check.
        index = build_index(
            small_uniform, EUCLIDEAN, engine="grid", accelerate=False
        )
        assert index.accelerate is False

    def test_unknown_engine_name_unchanged(self, small_uniform):
        with pytest.raises(ValueError, match="unknown engine"):
            build_index(small_uniform, EUCLIDEAN, engine="rtree")

    def test_disc_select_surfaces_option_errors(self, small_uniform):
        with pytest.raises(ValueError, match="valid options"):
            disc_select(
                small_uniform, 0.1, metric=EUCLIDEAN,
                engine_options={"index": "kdtree"},
            )

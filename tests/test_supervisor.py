"""Supervised multi-process serving: shm segments, failover, chaos.

Three layers, cheapest first:

* in-process unit tests of the :mod:`repro.service.shm` segment
  registry — publish/attach parity, checksum rejection of torn
  segments, the orphan sweep, and the build-once guarantee across two
  cache managers;
* real 2-worker clusters (``start_supervised``) — routing parity with
  :func:`repro.api.disc_select`, the ``/stats`` rollup, deterministic
  crash-mid-request replay, and the crash-loop quarantine;
* the ``chaos``-marked kill-9 trace (CI's chaos lane; excluded from
  the default run) asserting the PR's acceptance scenario end to end.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.api import disc_select
from repro.datasets import uniform_dataset
from repro.graph.csr import CSRNeighborhood
from repro.service import shm as shm_mod
from repro.service.cache import SharedCacheManager
from repro.service.client import ServiceClient, wait_until_healthy
from repro.service.faults import FaultConfig
from repro.service.server import start_in_thread
from repro.service.shm import SharedSegmentStore, ShmCacheBacking
from repro.service.state import ServiceState
from repro.service.registry import DatasetRegistry
from repro.service.supervisor import build_worker_configs, start_supervised

pytestmark = pytest.mark.skipif(
    not shm_mod.shm_available(), reason="POSIX shared memory not available"
)

ENGINE = {"name": "grid", "options": {"cell_size": 0.1}}


def _fresh_store(**kwargs) -> SharedSegmentStore:
    return SharedSegmentStore(shm_mod.new_run_id(), **kwargs)


def _sample_csr() -> CSRNeighborhood:
    indptr = np.array([0, 2, 3, 5, 5], dtype=np.int64)
    indices = np.array([1, 2, 0, 0, 3], dtype=np.int32)
    return CSRNeighborhood(indptr, indices)


# ----------------------------------------------------------------------
# Shared-memory segment registry (in-process)
# ----------------------------------------------------------------------
class TestSegmentStore:
    def test_publish_then_attach_roundtrip(self):
        store = _fresh_store()
        try:
            status, claim = store.acquire("adj:test:r1")
            assert status == "claim"
            csr = _sample_csr()
            store.publish(claim, "csr", csr.to_shared_arrays(), {"note": "x"})
            status, got = store.acquire("adj:test:r1")
            assert status == "value"
            assert got["kind"] == "csr"
            np.testing.assert_array_equal(got["arrays"]["indptr"], csr.indptr)
            np.testing.assert_array_equal(got["arrays"]["indices"], csr.indices)
            assert got["meta"]["note"] == "x"
            # Attached views are read-only: a worker cannot corrupt the
            # cluster-wide copy in place.
            with pytest.raises(ValueError):
                got["arrays"]["indices"][0] = 99
        finally:
            store.close(sweep=True)
        assert shm_mod.list_run_segments(store.run_id) == []

    def test_second_process_view_shares_one_copy(self):
        first = _fresh_store()
        second = SharedSegmentStore(first.run_id)
        try:
            status, claim = first.acquire("k")
            csr = _sample_csr()
            first.publish(claim, "csr", csr.to_shared_arrays())
            status, got = second.acquire("k")
            assert status == "value"
            np.testing.assert_array_equal(got["arrays"]["indptr"], csr.indptr)
            assert second.counters()["attaches"] >= 1
        finally:
            second.close()
            first.close(sweep=True)

    def test_checksum_rejects_torn_segment(self):
        store = _fresh_store()
        try:
            status, claim = store.acquire("torn")
            data_name = claim.data_name
            store.publish(claim, "csr", _sample_csr().to_shared_arrays())
            # Corrupt one payload byte behind the registry's back.
            with open(f"/dev/shm/{data_name}", "r+b") as handle:
                handle.seek(8)
                byte = handle.read(1)
                handle.seek(8)
                handle.write(bytes([byte[0] ^ 0xFF]))
            # A torn segment must never be served: the reader detects
            # the checksum mismatch and takes over the build slot.
            fresh = SharedSegmentStore(store.run_id)
            try:
                status, got = fresh.acquire("torn")
                assert status == "claim"
                assert fresh.counters()["checksum_failures"] >= 1
                got.abandon()
            finally:
                fresh.close()
        finally:
            store.close(sweep=True)

    def test_sweep_orphans_reclaims_dead_runs(self):
        store = _fresh_store()  # no lease held -> run reads as orphaned
        status, claim = store.acquire("leak")
        store.publish(claim, "csr", _sample_csr().to_shared_arrays())
        names = shm_mod.list_run_segments(store.run_id)
        assert names
        store.close()  # detach WITHOUT sweeping: simulated unclean exit
        removed = shm_mod.sweep_orphans()
        assert set(names) <= set(removed)
        assert shm_mod.list_run_segments(store.run_id) == []

    def test_sweep_orphans_spares_live_runs(self):
        store = _fresh_store(hold_lease=True)
        try:
            status, claim = store.acquire("alive")
            store.publish(claim, "csr", _sample_csr().to_shared_arrays())
            shm_mod.sweep_orphans()
            status, got = store.acquire("alive")
            assert status == "value"
        finally:
            store.close(sweep=True)


class TestShmCacheBacking:
    def test_two_managers_build_once(self):
        """The cluster-wide guarantee in miniature: two cache managers
        (two processes in production), one adjacency build."""
        run = shm_mod.new_run_id()
        store_a = SharedSegmentStore(run)
        store_b = SharedSegmentStore(run)
        cache_a = SharedCacheManager(max_entries=8, backing=ShmCacheBacking(store_a))
        cache_b = SharedCacheManager(max_entries=8, backing=ShmCacheBacking(store_b))
        key = ("uniform", "euclidean", 0.1)
        try:
            assert cache_a.get(key) is None  # miss claims the build
            built = _sample_csr()
            cache_a.put(key, built)
            assert cache_a.cache_info()["shm_stores"] == 1

            got = cache_b.get(key)  # other "process": attach, no build
            assert got is not None
            np.testing.assert_array_equal(got.indptr, built.indptr)
            np.testing.assert_array_equal(got.indices, built.indices)
            info_b = cache_b.cache_info()
            assert info_b["shm_hits"] == 1
            assert info_b["builds"] == 0
        finally:
            cache_a.clear()
            cache_b.clear()
            store_b.close()
            store_a.close(sweep=True)

    def test_abandoned_claim_releases_slot(self):
        store = _fresh_store()
        cache = SharedCacheManager(max_entries=8, backing=ShmCacheBacking(store))
        key = ("uniform", "euclidean", 0.2)
        try:
            assert cache.get(key) is None
            cache.abandon(key)
            # The slot must be claimable again, not wedged "building".
            status, claim = store.acquire(cache.backing._key_str(key), wait_s=5.0)
            assert status == "claim"
            claim.abandon()
        finally:
            store.close(sweep=True)


# ----------------------------------------------------------------------
# Worker config / routing plumbing (in-process)
# ----------------------------------------------------------------------
class TestWorkerConfigs:
    def test_replicate_all_by_default(self):
        configs = build_worker_configs(["a", "b"], 3)
        assert all(c["datasets"] == ["a", "b"] for c in configs)

    def test_sharded_replication(self):
        configs = build_worker_configs(["a", "b", "c"], 3, replication=2)
        assigned = [c["datasets"] for c in configs]
        # dataset i lands on workers (i, i+1) % 3
        assert assigned == [["a", "c"], ["a", "b"], ["b", "c"]]

    def test_per_worker_faults_list(self):
        crash = {"worker_crash_rate": 1.0, "worker_crash_limit": 1}
        configs = build_worker_configs(["a"], 2, faults=[crash, None])
        assert configs[0]["faults"] == crash
        assert configs[1]["faults"] is None
        with pytest.raises(ValueError, match="per-worker faults"):
            build_worker_configs(["a"], 2, faults=[crash])

    def test_bad_replication_rejected(self):
        with pytest.raises(ValueError, match="replication"):
            build_worker_configs(["a"], 2, replication=3)


# ----------------------------------------------------------------------
# Fault config validation (satellite: no silently-inert configs)
# ----------------------------------------------------------------------
class TestFaultConfigValidation:
    def test_unknown_key_lists_valid_names(self):
        with pytest.raises(ValueError) as err:
            FaultConfig.from_dict({"bogus_rate": 0.5})
        message = str(err.value)
        assert "bogus_rate" in message
        assert "worker_crash_rate" in message  # the valid names are listed

    @pytest.mark.parametrize(
        "payload",
        [
            {"worker_crash_rate": 1.5},
            {"worker_crash_rate": "high"},
            {"worker_crash_limit": -1},
            {"worker_crash_limit": True},
            {"worker_stall_hard_s": -0.1},
            {"seed": 1.5},
        ],
    )
    def test_bad_values_rejected(self, payload):
        with pytest.raises(ValueError):
            FaultConfig.from_dict(payload)

    def test_inert_rate_without_duration_rejected(self):
        with pytest.raises(ValueError, match="inert"):
            FaultConfig.from_dict({"worker_stall_hard_rate": 0.5})

    def test_cli_serve_rejects_bad_faults(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="unknown fault config keys"):
            main(
                [
                    "serve",
                    "--port",
                    "0",
                    "--datasets",
                    "uniform",
                    "--faults",
                    '{"typo_rate": 1.0}',
                ]
            )

    def test_cli_serve_rejects_inert_faults(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="inert"):
            main(
                [
                    "serve",
                    "--port",
                    "0",
                    "--datasets",
                    "uniform",
                    "--faults",
                    '{"slow_build_rate": 0.5}',
                ]
            )


# ----------------------------------------------------------------------
# Client keep-alive (satellite)
# ----------------------------------------------------------------------
class TestClientKeepAlive:
    def test_sequential_requests_reuse_one_connection(self):
        registry = DatasetRegistry()
        registry.register_spec(
            "tiny", lambda: uniform_dataset(n=120, seed=7), family="uniform"
        )
        state = ServiceState(registry, cache=None, workers=2)
        try:
            with start_in_thread(state) as running:
                with ServiceClient(running.host, running.port) as client:
                    client.healthz()
                    client.select("tiny", 0.2, engine=ENGINE)
                    client.stats()
                    assert client.opened_connections == 1
                    client.close()  # simulated reset: reopen transparently
                    client.healthz()
                    assert client.opened_connections == 2
        finally:
            state.close()

    def test_wait_until_healthy_single_client(self):
        registry = DatasetRegistry()
        registry.register_spec(
            "tiny", lambda: uniform_dataset(n=120, seed=7), family="uniform"
        )
        state = ServiceState(registry, cache=None, workers=2)
        try:
            with start_in_thread(state) as running:
                payload = wait_until_healthy(running.host, running.port, timeout=10)
                assert payload["status"] == "ok"
        finally:
            state.close()


# ----------------------------------------------------------------------
# Real clusters (subprocess workers)
# ----------------------------------------------------------------------
class TestSupervisedCluster:
    def test_smoke_parity_and_rollup(self):
        """2 workers, one radius: parity with disc_select, one build
        cluster-wide, clean shm teardown."""
        cluster = start_supervised(["uniform"], 2, n=400, threads=2)
        run_id = cluster.run_id
        try:
            reference = [
                int(i)
                for i in disc_select(
                    uniform_dataset(n=400, seed=42),
                    0.1,
                    engine="grid",
                    engine_options={"cell_size": 0.1},
                ).selected
            ]
            with ServiceClient(cluster.host, cluster.port) as client:
                assert client.healthz()["workers"] == {"healthy": 2}
                # Several sequential requests: the rotating pick spreads
                # them over both workers; answers must not depend on
                # which worker served them.
                for _ in range(4):
                    response = client.select("uniform", 0.1, engine=ENGINE)
                    assert response["result"]["selected"] == reference
                stats = client.stats()
            assert len(stats["workers"]) == 2
            assert {w["state"] for w in stats["workers"]} == {"healthy"}
            totals = stats["totals"]
            # builds == unique radii cluster-wide: one worker built, the
            # rest attached the shared segment.
            assert totals["builds"] == 1
            assert totals["shm_stores"] == 1
            assert totals["shm_hits"] >= 1
        finally:
            removed = cluster.stop()
        assert removed  # the run's segments existed and were swept
        assert shm_mod.list_run_segments(run_id) == []

    def test_crash_mid_request_is_replayed(self):
        """Deterministic worker_crash on one worker: the client sees
        200s only; the supervisor logs the replay and restarts the
        corpse."""
        crash = {"seed": 3, "worker_crash_rate": 1.0, "worker_crash_limit": 1}
        cluster = start_supervised(
            ["uniform"],
            2,
            n=300,
            threads=2,
            heartbeat_s=0.1,
            faults=[crash, None],
        )
        try:
            with ServiceClient(cluster.host, cluster.port) as client:
                for _ in range(4):
                    status, payload = client.request(
                        "POST",
                        "/select",
                        {"dataset": "uniform", "radius": 0.1, "engine": ENGINE},
                    )
                    assert status == 200, payload
                deadline = time.monotonic() + 30
                supervisor = None
                while time.monotonic() < deadline:
                    supervisor = client.stats()["supervisor"]
                    if supervisor["restarts"] >= 1:
                        break
                    time.sleep(0.2)
                assert supervisor["replays"] >= 1
                assert supervisor["crashes"] >= 1
                assert supervisor["restarts"] >= 1
                assert supervisor["quarantined"] == 0
        finally:
            cluster.stop()

    def test_crash_loop_quarantines_and_503s(self):
        """A worker that dies on every request trips the loop breaker;
        with no replica left the front answers a structured 503."""
        crash = {"seed": 5, "worker_crash_rate": 1.0}  # no limit: every time
        cluster = start_supervised(
            ["uniform"],
            1,
            n=200,
            threads=2,
            heartbeat_s=0.1,
            quarantine_after=2,
            faults=crash,
        )
        try:
            with ServiceClient(cluster.host, cluster.port) as client:
                status, payload = client.request(
                    "POST",
                    "/select",
                    {"dataset": "uniform", "radius": 0.1, "engine": ENGINE},
                )
                assert status == 503
                assert payload["error"]["code"] in ("no_workers", "replay_exhausted")
                supervisor = client.stats()["supervisor"]
                assert supervisor["quarantined"] == 1
                assert supervisor["crashes"] >= 2
        finally:
            cluster.stop()

    def test_worker_cli_reports_bad_config(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            part for part in ("src", env.get("PYTHONPATH")) if part
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "worker", "--config", "{not json"],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            timeout=60,
        )
        assert proc.returncode == 2
        message = json.loads(proc.stdout.strip().splitlines()[-1])
        assert "worker_error" in message


# ----------------------------------------------------------------------
# Chaos lane (kill -9 mid-trace; excluded from the default run)
# ----------------------------------------------------------------------
@pytest.mark.chaos
def test_kill9_mid_trace_loses_nothing():
    """The acceptance scenario: SIGKILL a worker mid-zoom-trace.

    Zero lost or hung requests, responses byte-identical to the
    fault-free reference, the in-flight gauge drained, the worker
    restarted, and the orphan sweep finds no leaked segment.
    """
    from repro.service.load import run_kill9_trace

    out = run_kill9_trace(n=1200, clients=4, workers=2, kill_delay_s=0.3)
    assert out["killed"] and "pid" in out["killed"]
    assert out["requests"] == out["expected_requests"]
    assert out["failures"] == 0, out["status_counts"]
    assert out["byte_identical"], out["mismatched_radii"]
    assert out["restarts"] >= 1
    assert out["inflight_final"] == 0
    assert out["leaked_segments"] == []
    # PR 10 acceptance: one trace id correlates the front span with the
    # worker that answered after the SIGKILL replay.
    correlation = out["trace_correlation"]
    # >=: the front also logs health/stat polls, not just the trace load.
    assert correlation["front_records"] >= out["requests"]
    assert correlation["correlated"], correlation
    replayed = correlation["replayed_request"]
    assert replayed is not None, "no front record shows a replay"
    assert replayed["proxy_attempts"] >= 2
    assert replayed["served_by_workers"], replayed


@pytest.mark.chaos
def test_chaos_fault_mix_under_supervision():
    """The PR 6 fault mix (build failures, slow builds, stalls, resets)
    replayed through the single-process chaos harness — the chaos lane
    runs both generations of failure modes."""
    from repro.service.load import run_chaos_trace

    out = run_chaos_trace(
        {
            "seed": 11,
            "build_failure_rate": 0.2,
            "build_failure_limit": 4,
            "slow_build_rate": 0.3,
            "slow_build_s": 0.1,
            "connection_reset_rate": 0.1,
            "worker_stall_rate": 0.2,
            "worker_stall_s": 0.1,
        },
        n=1200,
    )
    assert out["requests"] == out["expected_requests"]
    assert out["byte_identical"], out["mismatched_radii"]
    assert out["inflight_final"] == 0

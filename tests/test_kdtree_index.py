"""Tests for the scipy-backed KD-tree index engine."""

import numpy as np
import pytest

from repro.core import basic_disc, greedy_disc, verify_disc
from repro.distance import (
    CHEBYSHEV,
    EUCLIDEAN,
    HAMMING,
    MANHATTAN,
    MinkowskiMetric,
)
from repro.index import BruteForceIndex, KDTreeIndex


class TestQueries:
    @pytest.mark.parametrize(
        "metric",
        [EUCLIDEAN, MANHATTAN, CHEBYSHEV, MinkowskiMetric(3)],
        ids=lambda m: m.name,
    )
    def test_matches_brute_force(self, medium_uniform, metric):
        kdtree = KDTreeIndex(medium_uniform, metric)
        brute = BruteForceIndex(medium_uniform, metric)
        for center in (0, 99, 250):
            for radius in (0.05, 0.2, 0.6):
                assert sorted(kdtree.range_query(center, radius)) == sorted(
                    brute.range_query(center, radius)
                )

    def test_neighborhood_sizes_match(self, medium_uniform):
        kdtree = KDTreeIndex(medium_uniform, EUCLIDEAN)
        brute = BruteForceIndex(medium_uniform, EUCLIDEAN)
        assert np.array_equal(
            kdtree.neighborhood_sizes(0.1), brute.neighborhood_sizes(0.1)
        )

    def test_rejects_hamming(self, categorical_points):
        with pytest.raises(TypeError, match="Minkowski"):
            KDTreeIndex(categorical_points, HAMMING)

    def test_stats_counted(self, small_uniform):
        index = KDTreeIndex(small_uniform, EUCLIDEAN)
        index.range_query(0, 0.2)
        assert index.stats.range_queries == 1


class TestAlgorithmsOnKDTree:
    def test_basic_disc(self, medium_uniform):
        result = basic_disc(KDTreeIndex(medium_uniform, EUCLIDEAN), 0.12)
        report = verify_disc(medium_uniform, EUCLIDEAN, result.selected, 0.12)
        assert report.is_disc_diverse

    def test_greedy_disc_matches_brute(self, medium_uniform):
        """Same iteration order + same neighborhoods -> identical runs."""
        kd = greedy_disc(KDTreeIndex(medium_uniform, EUCLIDEAN), 0.12)
        bf = greedy_disc(BruteForceIndex(medium_uniform, EUCLIDEAN), 0.12)
        assert kd.selected == bf.selected

"""Unit tests for the ``repro.live`` subsystem (PR 9).

Covers the three layers beneath the ``/mutate`` endpoint:

* :class:`MutableDataset` — versioning, stable arrival ids, batch
  validation, compaction, snapshot handles;
* :class:`IncrementalNeighborhood` — byte-parity of incremental
  snapshots with fresh CSR builds across insert/delete churn;
* :func:`repair_selection` — Definition 1 validity of repaired
  selections plus the kept/added/removed accounting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import verify_disc
from repro.datasets import Dataset
from repro.distance import EUCLIDEAN
from repro.graph import IncrementalNeighborhood, build_csr_pairwise
from repro.live import LiveCacheView, MutableDataset, MutationError
from repro.live.repair import jaccard, repair_selection, repair_selection_delta

RADIUS = 0.15


def _dataset(points, name="live-test"):
    return Dataset(name=name, points=np.asarray(points, dtype=float), metric=EUCLIDEAN)


def _live(rng, n=40, **kwargs):
    return MutableDataset("live-test", _dataset(rng.random((n, 2))), **kwargs)


class TestMutableDataset:
    def test_versioned_identity(self, rng):
        live = _live(rng)
        assert live.dataset_id == "live-test@v0"
        delta = live.apply(inserts=rng.random((3, 2)))
        assert delta["version"] == 1
        assert live.dataset_id == "live-test@v1"
        assert delta["inserted"] == [40, 41, 42]

    def test_ids_are_arrival_positions_forever(self, rng):
        live = _live(rng, n=10)
        live.apply(deletes=[3, 7])
        delta = live.apply(inserts=rng.random((2, 2)))
        # Tombstones never renumber: inserts continue after every id
        # ever assigned, and alive_ids skips the dead ones.
        assert delta["inserted"] == [10, 11]
        assert live.n_total == 12
        assert live.n_alive == 10
        alive = live.alive_ids()
        assert 3 not in alive and 7 not in alive
        assert {10, 11} <= set(int(i) for i in alive)

    def test_empty_batch_rejected(self, rng):
        live = _live(rng)
        with pytest.raises(MutationError, match="empty"):
            live.apply()
        assert live.version == 0

    def test_bad_deletes_rejected_before_applying(self, rng):
        live = _live(rng, n=10)
        with pytest.raises(MutationError, match="unknown ids"):
            live.apply(deletes=[99])
        with pytest.raises(MutationError, match="duplicate"):
            live.apply(deletes=[1, 1])
        live.apply(deletes=[4])
        with pytest.raises(MutationError, match="already-deleted"):
            live.apply(deletes=[4])
        # Validation happens before anything mutates: a batch mixing a
        # valid insert with a bad delete must not leak the insert.
        with pytest.raises(MutationError):
            live.apply(inserts=[[0.5, 0.5]], deletes=[4])
        assert live.n_total == 10
        assert live.version == 1

    def test_bad_inserts_rejected(self, rng):
        live = _live(rng)
        with pytest.raises(MutationError, match="points"):
            live.apply(inserts=[[1.0, 2.0, 3.0]])
        with pytest.raises(MutationError, match="non-finite"):
            live.apply(inserts=[[np.nan, 0.0]])

    def test_compaction_preserves_points(self, rng):
        live = _live(rng, n=8, compact_every=2)
        rows = [rng.random((1, 2)) for _ in range(5)]
        expected = np.concatenate([live.points_all()] + rows)
        for row in rows:
            live.apply(inserts=row)
        assert live.compactions >= 2
        np.testing.assert_array_equal(live.points_all(), expected)

    def test_snapshot_handle_frozen_and_cached(self, rng):
        live = _live(rng, n=12)
        live.apply(deletes=[0, 5])
        handle = live.snapshot_handle()
        assert handle.dataset_id == "live-test@v1"
        assert handle.spec["live"] is True
        assert handle.spec["version"] == 1
        assert handle.dataset.points.shape[0] == 10
        with pytest.raises(ValueError):
            handle.dataset.points[0, 0] = 99.0
        assert live.snapshot_handle() is handle  # cached per version
        live.apply(inserts=[[0.5, 0.5]])
        assert live.snapshot_handle() is not handle

    def test_mutation_log_records_deltas(self, rng):
        live = _live(rng, n=6)
        live.apply(inserts=[[0.1, 0.2]])
        live.apply(deletes=[2])
        log = live.mutation_log()
        assert [d["version"] for d in log] == [1, 2]
        assert log[0]["inserted"] == [6]
        assert log[1]["deleted"] == [2]


class TestIncrementalAdjacency:
    def _fresh(self, points):
        return build_csr_pairwise(np.asarray(points), EUCLIDEAN, RADIUS)

    def _assert_parity(self, incremental, points, alive):
        snap = incremental.snapshot_csr(alive)
        fresh = self._fresh(np.asarray(points)[alive])
        np.testing.assert_array_equal(snap.indptr, fresh.indptr)
        np.testing.assert_array_equal(snap.indices, fresh.indices)

    def test_append_matches_fresh_build(self, rng):
        points = rng.random((60, 2))
        incremental = IncrementalNeighborhood(points[:40], EUCLIDEAN, RADIUS)
        points_so_far = points[:40]
        for batch_end in (50, 60):
            count = batch_end - points_so_far.shape[0]
            points_so_far = points[:batch_end]
            incremental.append(points_so_far, count)
            alive = np.ones(batch_end, dtype=bool)
            self._assert_parity(incremental, points_so_far, alive)

    def test_alive_mask_filtering_matches_fresh_build(self, rng):
        points = rng.random((80, 2))
        incremental = IncrementalNeighborhood(points, EUCLIDEAN, RADIUS)
        alive = np.ones(80, dtype=bool)
        alive[rng.choice(80, size=25, replace=False)] = False
        self._assert_parity(incremental, points, alive)

    def test_interleaved_churn_parity(self, rng):
        """Inserts and deletes interleaved across many versions."""
        points = rng.random((50, 2))
        incremental = IncrementalNeighborhood(points, EUCLIDEAN, RADIUS)
        alive = np.ones(50, dtype=bool)
        for _ in range(6):
            batch = rng.random((7, 2))
            points = np.concatenate([points, batch])
            incremental.append(points, 7)
            alive = np.concatenate([alive, np.ones(7, dtype=bool)])
            victims = rng.choice(np.flatnonzero(alive), size=4, replace=False)
            alive[victims] = False
            self._assert_parity(incremental, points, alive)

    def test_dataset_adjacency_snapshot_parity(self, rng):
        live = _live(rng, n=50)
        live.apply(inserts=rng.random((10, 2)), deletes=[1, 2, 3])
        live.apply(inserts=rng.random((5, 2)), deletes=[50, 51])
        csr, alive_ids = live.adjacency_snapshot(RADIUS)
        fresh = self._fresh(live.points_all()[live.alive_mask()])
        np.testing.assert_array_equal(csr.indptr, fresh.indptr)
        np.testing.assert_array_equal(csr.indices, fresh.indices)
        np.testing.assert_array_equal(alive_ids, live.alive_ids())
        # Same version, same bucket: one snapshot object is reused.
        assert live.adjacency_snapshot(RADIUS)[0] is csr


class TestRepairSelection:
    def _select(self, live):
        """A valid selection over the current version, in global ids."""
        from repro.api import disc_select

        handle = live.snapshot_handle()
        result = disc_select(handle.dataset, RADIUS, engine="grid")
        alive_ids = live.alive_ids()
        return [int(alive_ids[i]) for i in result.selected]

    def _assert_valid(self, live, repaired):
        handle = live.snapshot_handle()
        report = verify_disc(
            handle.dataset.points, EUCLIDEAN, repaired["local"], RADIUS
        )
        assert report.is_disc_diverse, str(report)

    def test_repair_after_churn_is_disc_diverse(self, rng):
        live = _live(rng, n=200)
        previous = self._select(live)
        alive = live.alive_ids()
        victims = [int(i) for i in rng.choice(alive, size=20, replace=False)]
        live.apply(inserts=rng.random((20, 2)), deletes=victims)
        csr, alive_ids = live.adjacency_snapshot(RADIUS)
        repaired = repair_selection(csr, alive_ids, previous)
        self._assert_valid(live, repaired)
        # Accounting: kept ∪ added == selected, removed == previous we lost.
        assert sorted(repaired["kept"] + repaired["added"]) == repaired["selected"]
        assert set(repaired["removed"]) == set(previous) - set(repaired["kept"])
        assert repaired["jaccard_previous"] == jaccard(
            repaired["selected"], previous
        )

    def test_survivors_kept_verbatim(self, rng):
        live = _live(rng, n=150)
        previous = self._select(live)
        # Delete only non-selected points: every previous black survives
        # and deletes never add edges, so the selection needs no repair
        # beyond covering freshly-uncovered points (there are none).
        spare = sorted(set(int(i) for i in live.alive_ids()) - set(previous))
        live.apply(deletes=spare[:10])
        csr, alive_ids = live.adjacency_snapshot(RADIUS)
        repaired = repair_selection(csr, alive_ids, previous)
        assert repaired["kept"] == sorted(previous)
        assert repaired["removed"] == []
        assert repaired["jaccard_previous"] == 1.0
        self._assert_valid(live, repaired)

    def test_repair_covers_inserts_outside_coverage(self, rng):
        live = _live(rng, n=30)
        previous = self._select(live)
        # An insert far outside the unit square cannot be covered by
        # any existing black: repair must add it (or a neighbor).
        live.apply(inserts=[[5.0, 5.0]])
        csr, alive_ids = live.adjacency_snapshot(RADIUS)
        repaired = repair_selection(csr, alive_ids, previous)
        assert 30 in repaired["added"]
        self._assert_valid(live, repaired)

    def test_empty_previous_degenerates_to_greedy_cover(self, rng):
        live = _live(rng, n=60)
        csr, alive_ids = live.adjacency_snapshot(RADIUS)
        repaired = repair_selection(csr, alive_ids, [])
        assert repaired["kept"] == []
        self._assert_valid(live, repaired)

    def test_delta_path_matches_full_repair(self, rng):
        """The O(delta) frontier repair (what ``/mutate`` runs) must be
        pick-for-pick identical to the full compacted-snapshot repair
        whenever ``previous`` is fresh — same greedy, same tie-breaks,
        no compaction."""
        live = _live(rng, n=300)
        previous = self._select(live)
        for _ in range(4):
            alive = live.alive_ids()
            victims = [int(i) for i in rng.choice(alive, size=12, replace=False)]
            delta = live.apply(inserts=rng.random((10, 2)), deletes=victims)
            csr, alive_ids = live.adjacency_snapshot(RADIUS)
            full = repair_selection(csr, alive_ids, previous)
            fast = repair_selection_delta(
                live.ensure_adjacency(RADIUS),
                live.alive_mask(),
                previous,
                deleted=delta["deleted"],
                inserted=delta["inserted"],
            )
            assert fast == full
            self._assert_valid(live, fast)
            previous = fast["selected"]

    def test_jaccard_basics(self):
        assert jaccard([], []) == 1.0
        assert jaccard([1, 2], [1, 2]) == 1.0
        assert jaccard([1, 2], [3, 4]) == 0.0
        assert jaccard([1, 2, 3], [2, 3, 4]) == 0.5


class TestLiveCacheView:
    def test_miss_resolves_from_incremental_adjacency(self, rng):
        from repro.service.cache import SharedCacheManager

        live = _live(rng, n=40)
        manager = SharedCacheManager(max_entries=8)
        view = LiveCacheView(manager, live.dataset_id, EUCLIDEAN, live)
        first = view.get(RADIUS)
        assert first is live.adjacency_snapshot(RADIUS)[0]
        assert view.get(RADIUS) is first  # now a plain cache hit
        assert manager.hits >= 1
        # The build slot was resolved (counted) by the live path itself.
        assert manager.builds == 1

"""Tests for the benchmark report aggregator."""

import os

import pytest

from repro.experiments.report import collect_results, render_report, write_report


@pytest.fixture
def results_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    (tmp_path / "table3a_uniform.txt").write_text("TABLE3A CONTENT\n")
    (tmp_path / "fig07a_uniform.txt").write_text("FIG7A CONTENT\n")
    (tmp_path / "custom_thing.txt").write_text("CUSTOM CONTENT\n")
    (tmp_path / "ignore.json").write_text("{}")
    return tmp_path


class TestCollect:
    def test_collects_txt_only(self, results_env):
        results = collect_results()
        assert set(results) == {"table3a_uniform", "fig07a_uniform", "custom_thing"}
        assert results["table3a_uniform"] == "TABLE3A CONTENT\n"

    def test_missing_directory_is_empty(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "nope"))
        assert collect_results() == {}


class TestRender:
    def test_sections_in_paper_order(self, results_env):
        text = render_report()
        table_pos = text.index("Table 3 — solution sizes")
        fig_pos = text.index("Figure 7 — node accesses")
        other_pos = text.index("Other outputs")
        assert table_pos < fig_pos < other_pos
        assert "TABLE3A CONTENT" in text
        assert "CUSTOM CONTENT" in text

    def test_render_with_explicit_results(self):
        text = render_report({"lemma7_x": "LEMMA CONTENT"})
        assert "Lemma 7" in text
        assert "LEMMA CONTENT" in text

    def test_empty_results(self):
        text = render_report({})
        assert text.startswith("# DisC reproduction")


class TestWrite:
    def test_writes_default_path(self, results_env):
        path = write_report()
        assert os.path.exists(path)
        assert path.endswith("REPORT.md")
        with open(path) as handle:
            assert "TABLE3A CONTENT" in handle.read()

    def test_writes_custom_path(self, results_env, tmp_path):
        path = write_report(str(tmp_path / "custom.md"))
        assert os.path.exists(path)

"""Tests for the invariant verifier and the theoretical-bounds module."""

import math

import numpy as np
import pytest

from repro.core.bounds import (
    GOLDEN_RATIO,
    harmonic_number,
    lemma4_independent_annulus,
    lemma5_zoom_in_bound,
    lemma6_zoom_out_removed_bound,
    lemma7_maxmin_factor,
    max_independent_neighbors,
    theorem1_ratio,
    theorem2_ratio,
)
from repro.core.verify import (
    coverage_violations,
    dissimilarity_violations,
    is_maximal_independent,
    verify_disc,
)
from repro.distance import CHEBYSHEV, EUCLIDEAN, HAMMING, MANHATTAN


SQUARE = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])


class TestVerifier:
    def test_valid_disc_subset(self):
        # Opposite corners cover the square at r = 1.1 and are > 1.1 apart.
        report = verify_disc(SQUARE, EUCLIDEAN, [0, 3], 1.1)
        assert report.is_disc_diverse
        assert "OK" in str(report)

    def test_uncovered_object_detected(self):
        report = verify_disc(SQUARE, EUCLIDEAN, [0], 1.0)
        assert not report.is_covering
        assert 3 in report.uncovered

    def test_dependent_pair_detected(self):
        report = verify_disc(SQUARE, EUCLIDEAN, [0, 1, 2, 3], 1.0)
        assert not report.is_independent
        assert (0, 1) in report.too_close

    def test_empty_selection(self):
        assert coverage_violations(SQUARE, EUCLIDEAN, [], 1.0) == [0, 1, 2, 3]
        assert dissimilarity_violations(SQUARE, EUCLIDEAN, [], 1.0) == []

    def test_duplicate_selection_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            dissimilarity_violations(SQUARE, EUCLIDEAN, [0, 0], 1.0)

    def test_out_of_range_ids_rejected(self):
        with pytest.raises(IndexError):
            dissimilarity_violations(SQUARE, EUCLIDEAN, [0, 9], 1.0)

    def test_maximal_independent_equivalence(self):
        assert is_maximal_independent(SQUARE, EUCLIDEAN, [0, 3], 1.1)
        # Independent but not maximal (corner 3 uncovered at small r).
        assert not is_maximal_independent(SQUARE, EUCLIDEAN, [0], 1.0)

    def test_hamming_verification(self, categorical_points):
        # Selecting everything is covering but likely not independent.
        all_ids = list(range(len(categorical_points)))
        report = verify_disc(categorical_points, HAMMING, all_ids, 1)
        assert report.is_covering


class TestIndependentNeighborConstants:
    def test_paper_values(self):
        assert max_independent_neighbors(EUCLIDEAN, 2) == 5  # Lemma 2
        assert max_independent_neighbors(MANHATTAN, 2) == 7  # Lemma 3
        assert max_independent_neighbors(EUCLIDEAN, 3) == 24
        assert max_independent_neighbors(EUCLIDEAN, 1) == 2

    def test_unknown_combinations_return_none(self):
        assert max_independent_neighbors(EUCLIDEAN, 7) is None
        assert max_independent_neighbors(CHEBYSHEV, 2) is None
        assert max_independent_neighbors(HAMMING, 2) is None

    def test_dim_validation(self):
        with pytest.raises(ValueError):
            max_independent_neighbors(EUCLIDEAN, 0)

    def test_lemma2_is_geometrically_tight_enough(self, rng):
        """Empirical check: no 2-d point admits more than 5 pairwise-
        independent Euclidean neighbors (greedy packing attempt)."""
        radius = 1.0
        for _ in range(50):
            # Random neighbors of the origin within the unit disk.
            angles = rng.uniform(0, 2 * math.pi, size=40)
            radii = rng.uniform(0.55, 1.0, size=40)
            candidates = np.column_stack(
                [radii * np.cos(angles), radii * np.sin(angles)]
            )
            chosen: list = []
            for candidate in candidates:
                if all(
                    np.linalg.norm(candidate - other) > radius for other in chosen
                ):
                    chosen.append(candidate)
            assert len(chosen) <= 5

    def test_theorem1_ratio_alias(self):
        assert theorem1_ratio(EUCLIDEAN, 2) == 5


class TestHarmonicAndTheorem2:
    def test_harmonic_values(self):
        assert harmonic_number(0) == 0.0
        assert harmonic_number(1) == 1.0
        assert harmonic_number(3) == pytest.approx(1.0 + 0.5 + 1 / 3)

    def test_harmonic_negative_rejected(self):
        with pytest.raises(ValueError):
            harmonic_number(-1)

    def test_theorem2_close_to_log(self):
        assert theorem2_ratio(100) == pytest.approx(math.log(100), rel=0.15)

    def test_theorem2_validation(self):
        with pytest.raises(ValueError):
            theorem2_ratio(-1)


class TestLemma4:
    def test_euclidean_formula(self):
        assert lemma4_independent_annulus(EUCLIDEAN, 1.0, 2.0) == 9 * math.ceil(
            math.log(2.0, GOLDEN_RATIO)
        )

    def test_manhattan_formula(self):
        # gamma = ceil((3-1)/1) = 2 -> 4 * (3 + 5) = 32
        assert lemma4_independent_annulus(MANHATTAN, 1.0, 3.0) == 32

    def test_monotone_in_ratio(self):
        small = lemma4_independent_annulus(EUCLIDEAN, 1.0, 1.5)
        large = lemma4_independent_annulus(EUCLIDEAN, 1.0, 8.0)
        assert large > small

    def test_validation(self):
        with pytest.raises(ValueError):
            lemma4_independent_annulus(EUCLIDEAN, 0.0, 1.0)
        with pytest.raises(ValueError):
            lemma4_independent_annulus(EUCLIDEAN, 2.0, 1.0)

    def test_unsupported_metric_returns_none(self):
        assert lemma4_independent_annulus(CHEBYSHEV, 1.0, 2.0) is None


class TestZoomBounds:
    def test_lemma5_bound(self):
        bound = lemma5_zoom_in_bound(EUCLIDEAN, 0.1, 0.2, 10)
        assert bound == 10 * lemma4_independent_annulus(EUCLIDEAN, 0.1, 0.2)

    def test_lemma6_bound(self):
        assert lemma6_zoom_out_removed_bound(
            EUCLIDEAN, 0.1, 0.2
        ) == lemma4_independent_annulus(EUCLIDEAN, 0.1, 0.2)

    def test_lemma7_factor(self):
        assert lemma7_maxmin_factor() == 3.0

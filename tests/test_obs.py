"""Observability layer: span tracing, metrics registry, trace sink.

Four layers, cheapest first:

* pure-unit coverage of :mod:`repro.obs.trace` (mint/adopt/malformed
  headers, phase nesting, the executor ``attach`` hop, retroactive
  phases, ``phase_totals``);
* :mod:`repro.obs.metrics` (name validation, get-or-create sharing,
  Prometheus text shape, cluster snapshot merging);
* :mod:`repro.obs.sink` (record schema + validator, size-capped
  rotation, torn-line tolerance, the summarize rollup and CLI);
* live servers — the ``/metrics`` contract (content type, counter
  monotonicity, histogram bucket sums), ``Server-Timing`` parsing,
  trace-log records, header adoption, and trace-id propagation across
  a 2-worker supervised cluster including deterministic crash-replay.
"""

from __future__ import annotations

import http.client
import json
import os
import re
import threading
import time

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.sink import (
    TRACE_SCHEMA,
    TraceSink,
    build_record,
    iter_trace_records,
    render_trace_summary,
    summarize_traces,
    validate_trace_record,
)
from repro.service import shm as shm_mod
from repro.service.cache import SharedCacheManager
from repro.service.client import ServiceClient, parse_server_timing
from repro.service.registry import DatasetRegistry
from repro.service.server import start_in_thread
from repro.service.state import ServiceState
from repro.service.supervisor import start_supervised

N = 600
SEED = 7
RADIUS = 0.1
ENGINE = {"name": "grid", "options": {"cell_size": RADIUS}}

TRACE_RE = re.compile(r"[0-9a-f]{16,32}:[0-9a-f]{8,32}\Z")


# ----------------------------------------------------------------------
# trace: spans, headers, context propagation
# ----------------------------------------------------------------------
class TestTrace:
    def test_request_scope_mints_and_finishes(self):
        with obs_trace.request_scope("request") as root:
            assert obs_trace.current_span() is root
            assert len(root.trace_id) == 16
            assert set(root.trace_id) <= set("0123456789abcdef")
            assert root.parent_id is None
            assert root.duration_ms is None  # still open
        assert root.duration_ms is not None and root.duration_ms >= 0
        assert obs_trace.current_span() is None

    def test_header_adoption_and_parent(self):
        header = "deadbeefdeadbeef:cafebabe"
        with obs_trace.request_scope("request", header=header) as root:
            assert root.trace_id == "deadbeefdeadbeef"
            assert root.parent_id == "cafebabe"
            # The outgoing hop carries *this* span as the parent.
            out = obs_trace.format_trace_header(root)
            assert out == f"deadbeefdeadbeef:{root.span_id}"

    @pytest.mark.parametrize(
        "bad",
        ["", "not-hex", "abc:def:ghi", "a" * 40, "deadbeef:XYZ", "g" * 16],
    )
    def test_malformed_header_mints_fresh(self, bad):
        assert obs_trace.parse_trace_header(bad) == (None, None)
        with obs_trace.request_scope("request", header=bad) as root:
            assert len(root.trace_id) == 16  # fresh mint, not the junk

    def test_parse_format_roundtrip(self):
        with obs_trace.request_scope("request") as root:
            trace_id, parent = obs_trace.parse_trace_header(
                obs_trace.format_trace_header(root)
            )
        assert trace_id == root.trace_id
        assert parent == root.span_id

    def test_phase_nesting_builds_tree(self):
        with obs_trace.request_scope("request") as root:
            with obs_trace.phase("selection") as sel:
                with obs_trace.phase("adjacency-build", engine="grid") as build:
                    assert obs_trace.current_span() is build
                assert build.duration_ms is not None
                assert obs_trace.current_span() is sel
        assert [c.name for c in root.children] == ["selection"]
        assert [c.name for c in sel.children] == ["adjacency-build"]
        assert build.annotations == {"engine": "grid"}
        assert build.trace_id == root.trace_id

    def test_phase_is_noop_outside_trace(self):
        assert obs_trace.current_span() is None
        with obs_trace.phase("selection") as span:
            assert span is None
        obs_trace.annotate(ignored=True)  # must not raise
        obs_trace.annotate_root(ignored=True)
        assert obs_trace.record_phase("build", 1.0) is None

    def test_attach_carries_span_across_thread(self):
        seen = {}

        def thunk(span):
            with obs_trace.attach(span):
                with obs_trace.phase("in-thread") as child:
                    seen["trace_id"] = child.trace_id

        with obs_trace.request_scope("request") as root:
            worker = threading.Thread(target=thunk, args=(obs_trace.current_span(),))
            worker.start()
            worker.join()
        assert seen["trace_id"] == root.trace_id
        assert [c.name for c in root.children] == ["in-thread"]
        with obs_trace.attach(None) as nothing:  # no-op scope
            assert nothing is None

    def test_record_phase_and_totals(self):
        with obs_trace.request_scope("request") as root:
            obs_trace.record_phase("adjacency-build", 30.0, coalesced=False)
            obs_trace.record_phase("adjacency-build", 12.5)
            with obs_trace.phase("selection"):
                pass
        totals = obs_trace.phase_totals(root)
        assert totals["adjacency-build"] == pytest.approx(42.5)
        assert "request" not in totals  # the root is the total, not a phase
        assert totals["selection"] >= 0

    def test_annotate_root_from_nested_phase(self):
        with obs_trace.request_scope("request") as root:
            with obs_trace.phase("selection"):
                obs_trace.annotate_root(features={"dataset": "uniform"})
                obs_trace.annotate(local=True)
        assert root.annotations["features"] == {"dataset": "uniform"}
        assert root.children[0].annotations == {"local": True}


# ----------------------------------------------------------------------
# metrics: registry, rendering, merging
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_inc_and_labels(self):
        reg = obs_metrics.MetricsRegistry()
        c = reg.counter("repro_things_total", "things", labelnames=("kind",))
        c.inc(kind="a")
        c.inc(2, kind="a")
        c.inc(kind="b")
        assert c.value(kind="a") == 3
        assert c.value(kind="b") == 1
        with pytest.raises(ValueError):
            c.inc(-1, kind="a")

    def test_name_and_label_validation(self):
        reg = obs_metrics.MetricsRegistry()
        for bad in ("things_total", "repro_Things", "repro_", "repro_x-y"):
            with pytest.raises(ValueError):
                reg.counter(bad, "bad name")
        with pytest.raises(ValueError):
            reg.counter("repro_ok_total", "bad label", labelnames=("0kind",))

    def test_get_or_create_shares_and_conflicts_raise(self):
        reg = obs_metrics.MetricsRegistry()
        first = reg.counter("repro_shared_total", "shared")
        second = reg.counter("repro_shared_total", "shared")
        assert first is second
        with pytest.raises(ValueError):
            reg.gauge("repro_shared_total", "now a gauge")  # type conflict
        with pytest.raises(ValueError):
            reg.counter("repro_shared_total", "shared", labelnames=("k",))

    def test_gauge_set_and_add(self):
        reg = obs_metrics.MetricsRegistry()
        g = reg.gauge("repro_inflight", "inflight")
        g.set(5)
        g.add(-2)
        assert g.value() == 3

    def test_histogram_buckets_and_render(self):
        reg = obs_metrics.MetricsRegistry()
        h = reg.histogram(
            "repro_latency_seconds", "latency", buckets=(0.1, 1.0)
        )
        for v in (0.05, 0.5, 0.7, 5.0):
            h.observe(v)
        assert h.value() == {"count": 4, "sum": pytest.approx(6.25)}
        text = reg.render()
        assert "# TYPE repro_latency_seconds histogram" in text
        # Rendered buckets are cumulative; +Inf equals _count.
        assert 'repro_latency_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_latency_seconds_bucket{le="1"} 3' in text
        assert 'repro_latency_seconds_bucket{le="+Inf"} 4' in text
        assert "repro_latency_seconds_count 4" in text
        assert "repro_latency_seconds_sum 6.25" in text

    def test_histogram_rejects_bad_buckets(self):
        reg = obs_metrics.MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("repro_bad_seconds", "x", buckets=(1.0, 0.5))
        with pytest.raises(ValueError):
            reg.histogram("repro_worse_seconds", "x", buckets=(1.0, float("inf")))

    def test_render_escapes_label_values(self):
        reg = obs_metrics.MetricsRegistry()
        c = reg.counter("repro_paths_total", "paths", labelnames=("path",))
        c.inc(path='with"quote\\and\nnewline')
        text = reg.render()
        assert '\\"quote' in text and "\\\\and" in text and "\\n" in text

    def test_merge_snapshots_sums_counters_and_buckets(self):
        snaps = []
        for count in (1, 2):
            reg = obs_metrics.MetricsRegistry()
            c = reg.counter("repro_reqs_total", "reqs", labelnames=("ep",))
            c.inc(count, ep="/select")
            h = reg.histogram("repro_dur_seconds", "dur", buckets=(0.1, 1.0))
            h.observe(0.05 * count)
            snaps.append(reg.snapshot())
        merged = obs_metrics.merge_snapshots(snaps)
        (counter_sample,) = merged["repro_reqs_total"]["samples"]
        assert counter_sample["value"] == 3
        (hist_sample,) = merged["repro_dur_seconds"]["samples"]
        assert hist_sample["count"] == 2
        assert hist_sample["buckets"][0] == [0.1, 2]
        text = obs_metrics.render_snapshot(merged)
        assert 'repro_reqs_total{ep="/select"} 3' in text

    def test_registry_reset_clears_instruments(self):
        reg = obs_metrics.MetricsRegistry()
        reg.counter("repro_gone_total", "gone").inc()
        reg.reset()
        assert reg.snapshot() == {}


# ----------------------------------------------------------------------
# sink: records, validation, rotation, summaries
# ----------------------------------------------------------------------
def _finished_root(status_phase: str = "selection") -> obs_trace.Span:
    with obs_trace.request_scope("request") as root:
        obs_trace.annotate_root(
            features={"dataset": "uniform", "radius": 0.1}, coalesced=False
        )
        with obs_trace.phase(status_phase):
            obs_trace.record_phase("adjacency-build", 3.0)
    return root


class TestSink:
    def test_build_record_shape(self):
        root = _finished_root()
        record = build_record(root, 200, "POST", "/select", worker={"worker_id": 1})
        assert record["schema"] == TRACE_SCHEMA
        assert record["trace_id"] == root.trace_id
        assert record["status"] == 200
        # The feature vector is lifted out of annotations...
        assert record["features"] == {"dataset": "uniform", "radius": 0.1}
        # ...and the leftovers stay under "annotations".
        assert record["annotations"] == {"coalesced": False}
        assert record["worker"] == {"worker_id": 1}
        (selection,) = record["spans"]
        assert selection["name"] == "selection"
        assert selection["children"][0]["name"] == "adjacency-build"
        assert validate_trace_record(record) == []

    def test_validator_flags_each_field(self):
        record = build_record(_finished_root(), 200, "POST", "/select")
        for mutate, fragment in [
            (lambda r: r.pop("trace_id"), "trace_id"),
            (lambda r: r.__setitem__("schema", "v0"), "schema"),
            (lambda r: r.__setitem__("duration_ms", -1), "duration_ms"),
            (lambda r: r.__setitem__("features", []), "features"),
            (lambda r: r.__setitem__("status", "200"), "status"),
            (
                lambda r: r["spans"][0]["children"].append({"duration_ms": 1.0}),
                "children[1]",
            ),
        ]:
            broken = json.loads(json.dumps(record))
            mutate(broken)
            problems = validate_trace_record(broken)
            assert problems, fragment
            assert any(fragment in p for p in problems), problems
        assert validate_trace_record("not a dict") == ["record is not an object"]

    def test_rotation_keeps_newest_in_path(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        record = build_record(_finished_root(), 200, "POST", "/select")
        line_bytes = len(
            json.dumps(record, separators=(",", ":"), sort_keys=True) + "\n"
        )
        sink = TraceSink(path, max_bytes=line_bytes * 3 + 1)
        try:
            for _ in range(7):
                sink.emit(record)
        finally:
            sink.close()
        assert os.path.exists(path + ".1")
        newest = list(iter_trace_records(path))
        rotated = list(iter_trace_records(path + ".1"))
        assert sink.written == 7
        # Disk is bounded: one live file + one backup, each capped, so
        # a second rotation drops the oldest generation.
        assert 0 < len(newest) <= 3
        assert len(rotated) == 3
        assert len(newest) + len(rotated) < 7
        with pytest.raises(ValueError):
            TraceSink(path, max_bytes=0)

    def test_iter_skips_blank_and_torn_lines(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        record = build_record(_finished_root(), 200, "POST", "/select")
        good = json.dumps(record)
        path.write_text(f"{good}\n\n{good}\n{{\"schema\": \"repro-tr")
        records = list(iter_trace_records(str(path)))
        assert len(records) == 2
        assert all(validate_trace_record(r) == [] for r in records)

    def test_summarize_and_render(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        lines = []
        for status in (200, 200, 404):
            lines.append(json.dumps(build_record(_finished_root(), status, "POST", "/select")))
        lines.append("not json at all")
        path.write_text("\n".join(lines) + "\n")
        summary = summarize_traces([str(path)])
        assert summary["records"] == 3
        assert summary["statuses"] == {"200": 2, "404": 1}
        build = summary["phases"]["adjacency-build"]
        assert build["count"] == 3
        assert build["total_ms"] == pytest.approx(9.0)
        assert build["p50_ms"] == pytest.approx(3.0)
        assert len(summary["slowest"]) == 3
        text = render_trace_summary(summary)
        assert "adjacency-build" in text and "slowest traces:" in text

    def test_trace_cli_summarize_and_validate(self, tmp_path, capsys):
        from repro.cli import main

        good_path = tmp_path / "good.jsonl"
        good_path.write_text(
            json.dumps(build_record(_finished_root(), 200, "POST", "/select")) + "\n"
        )
        bad_path = tmp_path / "bad.jsonl"
        bad_path.write_text('{"schema": "wrong", "spans": 3}\n')

        assert main(["trace", "validate", str(good_path)]) == 0
        assert main(["trace", "validate", str(bad_path)]) != 0
        capsys.readouterr()
        assert main(["trace", "summarize", str(good_path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["records"] == 1
        assert "selection" in summary["phases"]
        assert main(["trace", "summarize", str(good_path)]) == 0
        assert "adjacency-build" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Live single-process server: /metrics contract, Server-Timing, trace log
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def traced_service(tmp_path_factory):
    trace_log = str(tmp_path_factory.mktemp("obs") / "trace.jsonl")
    registry = DatasetRegistry()
    registry.register_builtin("uniform", n=N, seed=SEED)
    state = ServiceState(
        registry, cache=SharedCacheManager(max_entries=16), workers=2
    )
    with start_in_thread(state, trace_log=trace_log) as running:
        running.trace_log = trace_log
        yield running


@pytest.fixture()
def client(traced_service):
    with ServiceClient(traced_service.host, traced_service.port) as c:
        yield c


def _http_get(host, port, path):
    conn = http.client.HTTPConnection(host, port, timeout=60)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        body = response.read().decode("utf-8")
        return response.status, dict(response.getheaders()), body
    finally:
        conn.close()


def _wait_for_record(trace_log: str, trace_id: str, timeout_s: float = 5.0) -> dict:
    """The record for ``trace_id``, polling briefly: the server emits
    the sink line *after* draining the response, so a client that just
    got its answer can race the write."""
    deadline = time.monotonic() + timeout_s
    while True:
        matches = [
            r for r in iter_trace_records(trace_log) if r["trace_id"] == trace_id
        ]
        if matches or time.monotonic() >= deadline:
            assert len(matches) == 1, f"{len(matches)} records for {trace_id}"
            return matches[0]
        time.sleep(0.02)


def _sample(text: str, name: str, label_fragment: str = "") -> float:
    """The first exposition sample of ``name`` whose labels contain
    ``label_fragment`` (summed would hide regressions; first is enough
    for the monotonicity deltas used here)."""
    for line in text.splitlines():
        if line.startswith("#"):
            continue
        ident, _, value = line.rpartition(" ")
        if ident != name and not ident.startswith(name + "{"):
            continue
        if label_fragment and label_fragment not in ident:
            continue
        return float(value)
    raise AssertionError(f"no sample {name!r} ({label_fragment!r}) in exposition")


class TestMetricsEndpoint:
    def test_content_type_and_line_shape(self, traced_service, client):
        client.select("uniform", RADIUS, engine=ENGINE)
        status, headers, body = _http_get(
            traced_service.host, traced_service.port, "/metrics"
        )
        assert status == 200
        assert headers["Content-Type"] == "text/plain; version=0.0.4; charset=utf-8"
        assert body.endswith("\n")
        sample_re = re.compile(
            r"[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9][0-9eE.+-]*\Z"
        )
        for line in body.splitlines():
            if not line or line.startswith("#"):
                continue
            assert sample_re.fullmatch(line), line
        # Every instrument is repro_-namespaced (span-discipline's twin).
        for line in body.splitlines():
            if line and not line.startswith("#"):
                assert line.startswith("repro_"), line

    def test_counters_are_monotonic_across_requests(self, traced_service, client):
        host, port = traced_service.host, traced_service.port
        _, _, before = _http_get(host, port, "/metrics")
        served = _sample(before, "repro_http_responses_total", 'status="200"')
        client.select("uniform", RADIUS, engine=ENGINE)
        client.select("uniform", RADIUS, engine=ENGINE)
        _, _, after = _http_get(host, port, "/metrics")
        # Delta-based: the registry is process-global, other tests also
        # drive this server.
        assert _sample(after, "repro_http_responses_total", 'status="200"') >= served + 2
        assert (
            _sample(after, "repro_traces_written_total")
            >= _sample(before, "repro_traces_written_total") + 2
        )

    def test_histogram_bucket_sums_are_cumulative(self, traced_service, client):
        client.select("uniform", RADIUS, engine=ENGINE)
        _, _, body = _http_get(traced_service.host, traced_service.port, "/metrics")
        buckets = [
            float(line.rpartition(" ")[2])
            for line in body.splitlines()
            if line.startswith("repro_request_duration_seconds_bucket{")
            and 'path="/select"' in line
        ]
        assert buckets, body
        assert buckets == sorted(buckets)  # cumulative counts never decrease
        count = _sample(body, "repro_request_duration_seconds_count", 'path="/select"')
        assert buckets[-1] == count  # the +Inf bucket is the total
        assert _sample(body, "repro_request_duration_seconds_sum", 'path="/select"') > 0

    def test_stats_folds_in_metrics_and_queue_depth(self, client):
        stats = client.stats()
        assert "queue_depth" in stats
        snapshot = stats["metrics"]
        assert "repro_http_requests_total" in snapshot
        assert snapshot["repro_http_requests_total"]["type"] == "counter"


class TestServerTracing:
    def test_server_timing_header_is_parsed(self, client):
        client.select("uniform", RADIUS, engine=ENGINE)
        timing = client.last_server_timing
        assert timing is not None
        assert timing["total"] > 0
        assert "select" in timing
        assert parse_server_timing('total;dur=12.5, build;dur=3.0') == {
            "total": 12.5,
            "build": 3.0,
        }
        assert parse_server_timing(None) is None

    def test_response_carries_trace_header(self, client):
        client.select("uniform", RADIUS, engine=ENGINE)
        assert client.last_trace is not None
        assert TRACE_RE.fullmatch(client.last_trace), client.last_trace

    def test_trace_log_records_are_valid_and_featureful(self, traced_service, client):
        client.select("uniform", RADIUS, engine=ENGINE)
        wanted = client.last_trace.split(":")[0]
        record = _wait_for_record(traced_service.trace_log, wanted)
        records = list(iter_trace_records(traced_service.trace_log))
        assert records
        assert all(validate_trace_record(r) == [] for r in records)
        assert record["path"] == "/select"
        assert record["status"] == 200
        features = record["features"]
        assert features["dataset"] == "uniform"
        assert features["n"] == N
        assert features["radius"] == RADIUS
        names = {s["name"] for s in record["spans"]}
        assert {"validate", "selection"} <= names

    def test_cache_phases_appear_under_selection(self, traced_service, client):
        client.select("uniform", RADIUS, engine=ENGINE)
        wanted = client.last_trace.split(":")[0]
        record = _wait_for_record(traced_service.trace_log, wanted)
        (selection,) = [s for s in record["spans"] if s["name"] == "selection"]
        child_names = {c["name"] for c in selection.get("children", [])}
        # The radius is warm by now: at minimum the cache lookup ran.
        assert "cache-lookup" in child_names

    def test_incoming_header_is_adopted(self, traced_service):
        conn = http.client.HTTPConnection(
            traced_service.host, traced_service.port, timeout=60
        )
        try:
            payload = json.dumps(
                {"dataset": "uniform", "radius": RADIUS, "engine": ENGINE}
            )
            conn.request(
                "POST",
                "/select",
                body=payload,
                headers={
                    "Content-Type": "application/json",
                    "X-Repro-Trace": "feedfacefeedface:cafebabe",
                },
            )
            response = conn.getresponse()
            response.read()
            echoed = response.getheader("X-Repro-Trace")
        finally:
            conn.close()
        assert echoed.split(":")[0] == "feedfacefeedface"
        record = _wait_for_record(traced_service.trace_log, "feedfacefeedface")
        assert record["parent_span_id"] == "cafebabe"


# ----------------------------------------------------------------------
# Supervised cluster: one trace id front-to-worker, even across a crash
# ----------------------------------------------------------------------
@pytest.mark.skipif(
    not shm_mod.shm_available(), reason="POSIX shared memory not available"
)
class TestSupervisedTracing:
    def test_trace_id_propagates_front_to_worker(self, tmp_path):
        trace_log = str(tmp_path / "cluster.jsonl")
        cluster = start_supervised(
            ["uniform"], 2, n=400, threads=2, trace_log=trace_log
        )
        try:
            trace_ids = []
            with ServiceClient(cluster.host, cluster.port) as client:
                for _ in range(3):
                    client.select("uniform", RADIUS, engine=ENGINE)
                    trace_ids.append(client.last_trace.split(":")[0])
                # Satellite: the rollup carries the cluster capacity and
                # degradation counters alongside the cache totals.
                totals = client.stats()["totals"]
                assert {
                    "queue_depth",
                    "migrations",
                    "stale_served",
                    "corrupt_entries",
                    "degraded_responses",
                } <= set(totals)
                status, headers, body = _http_get(
                    cluster.host, cluster.port, "/metrics"
                )
            assert status == 200
            assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
            # The front merges worker snapshots: worker-side selection
            # counters surface in the front's exposition.
            assert "repro_http_requests_total" in body
        finally:
            cluster.stop()

        front_records = [
            r for r in iter_trace_records(trace_log) if r["path"] == "/select"
        ]
        assert {r["trace_id"] for r in front_records} == set(trace_ids)
        assert all(validate_trace_record(r) == [] for r in front_records)
        assert all(r["worker"] == {"role": "front"} for r in front_records)
        for record in front_records:
            names = {s["name"] for s in record["spans"]}
            assert "proxy" in names

        worker_records = []
        for k in range(2):
            worker_log = f"{trace_log}.w{k}"
            if os.path.exists(worker_log):
                worker_records.extend(iter_trace_records(worker_log))
        worker_by_trace = {r["trace_id"]: r for r in worker_records}
        for trace_id in trace_ids:
            worker_record = worker_by_trace[trace_id]  # same id, other process
            assert worker_record["worker"] is not None
            assert worker_record["worker"] != {"role": "front"}
            # The worker root's parent is the front's proxy hop.
            assert "parent_span_id" in worker_record

    def test_crash_replay_preserves_trace_id(self, tmp_path):
        trace_log = str(tmp_path / "crash.jsonl")
        crash = {"seed": 3, "worker_crash_rate": 1.0, "worker_crash_limit": 1}
        cluster = start_supervised(
            ["uniform"],
            2,
            n=300,
            threads=2,
            heartbeat_s=0.1,
            faults=[crash, None],
            trace_log=trace_log,
        )
        try:
            with ServiceClient(cluster.host, cluster.port) as client:
                for _ in range(4):
                    status, payload = client.request(
                        "POST",
                        "/select",
                        {"dataset": "uniform", "radius": RADIUS, "engine": ENGINE},
                    )
                    assert status == 200, payload
        finally:
            cluster.stop()

        replayed = [
            r
            for r in iter_trace_records(trace_log)
            if len([s for s in r["spans"] if s["name"] == "proxy"]) >= 2
        ]
        assert replayed, "no front record shows a second proxy attempt"
        record = replayed[0]
        assert record["status"] == 200
        assert record.get("annotations", {}).get("replayed") is True
        # The replayed attempts hit *different* workers under one id...
        attempts = [s for s in record["spans"] if s["name"] == "proxy"]
        assert len({a["annotations"]["worker"] for a in attempts}) == 2
        # ...and the replica that answered logged the same trace id.
        worker_ids = set()
        for k in range(2):
            worker_log = f"{trace_log}.w{k}"
            if os.path.exists(worker_log):
                worker_ids.update(
                    r["trace_id"] for r in iter_trace_records(worker_log)
                )
        assert record["trace_id"] in worker_ids

"""Tests for M-tree statistics: fat-factor and tree profiling."""

import numpy as np
import pytest

from repro.distance import EUCLIDEAN
from repro.mtree import MTree, MTreeIndex, fat_factor, profile_tree


def build(points, capacity=5, policy="min_overlap"):
    tree = MTree(EUCLIDEAN, capacity=capacity, split_policy=policy)
    for i, p in enumerate(points):
        tree.insert(i, p)
    return tree


class TestFatFactor:
    def test_bounds(self, medium_uniform):
        for policy in ("min_overlap", "random"):
            factor = fat_factor(build(medium_uniform, policy=policy))
            assert 0.0 <= factor <= 1.0

    def test_single_leaf_tree_is_zero(self, rng):
        tree = build(rng.random((4, 2)), capacity=5)
        assert fat_factor(tree) == 0.0

    def test_empty_tree_is_zero(self):
        assert fat_factor(MTree(EUCLIDEAN, capacity=4)) == 0.0

    def test_min_overlap_beats_random(self, rng):
        """The paper's MinOverlap policy should produce notably less
        overlap than random promotion (Section 6, Figure 10 setup)."""
        points = rng.random((500, 2))
        good = fat_factor(build(points, policy="min_overlap"))
        bad = fat_factor(build(points, policy="random"))
        assert good < bad

    def test_does_not_touch_query_stats(self, medium_uniform):
        index = MTreeIndex(medium_uniform, EUCLIDEAN, capacity=5)
        before = index.stats.node_accesses
        fat_factor(index.tree)
        assert index.stats.node_accesses == before


class TestPointQueryAccesses:
    def test_at_least_height(self, medium_uniform):
        tree = build(medium_uniform)
        h = tree.height()
        for entry_point in (medium_uniform[0], medium_uniform[170]):
            assert tree.point_query_accesses(entry_point) >= h


class TestProfile:
    def test_profile_fields(self, medium_uniform):
        tree = build(medium_uniform, capacity=7)
        profile = profile_tree(tree)
        assert profile.size == 300
        assert profile.capacity == 7
        assert profile.policy == "min_overlap"
        assert profile.node_count >= profile.leaf_count
        assert profile.height >= 2
        assert 0.0 <= profile.fat_factor <= 1.0
        assert "MTree[" in str(profile)

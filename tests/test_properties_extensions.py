"""Property-based tests for the Section 8 extensions."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.extensions import (
    StreamingDisC,
    multiradius_disc,
    verify_multiradius,
    weighted_disc,
)
from repro.core.verify import verify_disc
from repro.distance import EUCLIDEAN
from repro.index import BruteForceIndex

COMMON = dict(
    deadline=None,
    max_examples=20,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def clouds(draw, max_points=30):
    n = draw(st.integers(2, max_points))
    flat = draw(
        st.lists(
            st.floats(0.0, 1.0, allow_nan=False, width=32),
            min_size=n * 2,
            max_size=n * 2,
        )
    )
    return np.array(flat, dtype=float).reshape(n, 2)


class TestWeightedProperties:
    @given(
        points=clouds(),
        radius=st.floats(0.05, 1.0),
        alpha=st.floats(0.0, 1.0),
        seed=st.integers(0, 10),
    )
    @settings(**COMMON)
    def test_always_disc_diverse(self, points, radius, alpha, seed):
        weights = np.random.default_rng(seed).random(len(points))
        index = BruteForceIndex(points, EUCLIDEAN)
        result = weighted_disc(index, radius, weights, alpha=alpha)
        assert verify_disc(points, EUCLIDEAN, result.selected, radius).is_disc_diverse

    @given(points=clouds(), radius=st.floats(0.05, 1.0))
    @settings(**COMMON)
    def test_total_weight_recorded(self, points, radius):
        weights = np.ones(len(points))
        index = BruteForceIndex(points, EUCLIDEAN)
        result = weighted_disc(index, radius, weights)
        assert result.meta["total_weight"] == result.size


class TestMultiRadiusProperties:
    @given(points=clouds(), seed=st.integers(0, 10))
    @settings(**COMMON)
    def test_heterogeneous_validity(self, points, seed):
        radii = np.random.default_rng(seed).uniform(0.05, 0.5, size=len(points))
        index = BruteForceIndex(points, EUCLIDEAN)
        result = multiradius_disc(index, radii)
        outcome = verify_multiradius(points, EUCLIDEAN, result.selected, radii)
        assert outcome["uncovered"] == []
        assert outcome["too_close"] == []


class TestStreamingProperties:
    @given(points=clouds(), radius=st.floats(0.05, 1.0))
    @settings(**COMMON)
    def test_final_state_disc_diverse(self, points, radius):
        stream = StreamingDisC(radius=radius)
        stream.extend(points)
        assert verify_disc(
            points, EUCLIDEAN, stream.selected_ids, radius
        ).is_disc_diverse

    @given(points=clouds(), radius=st.floats(0.05, 1.0))
    @settings(**COMMON)
    def test_selection_monotone(self, points, radius):
        """Online selections are never retracted."""
        stream = StreamingDisC(radius=radius)
        previous: list = []
        for point in points:
            stream.add(point)
            assert stream.selected_ids[: len(previous)] == previous
            previous = stream.selected_ids

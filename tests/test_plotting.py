"""Tests for the ASCII scatter renderer."""

import numpy as np
import pytest

from repro.experiments.plotting import ascii_scatter


class TestAsciiScatter:
    def test_dimensions(self, small_uniform):
        text = ascii_scatter(small_uniform, width=40, height=10)
        lines = text.splitlines()
        assert len(lines) == 12  # 10 rows + 2 borders
        assert all(len(line) == 42 for line in lines)

    def test_title_prepended(self, small_uniform):
        text = ascii_scatter(small_uniform, title="hello")
        assert text.splitlines()[0] == "hello"

    def test_selected_marked(self, small_uniform):
        text = ascii_scatter(small_uniform, selected=[0, 1, 2])
        assert "@" in text

    def test_no_selection_no_marker(self, small_uniform):
        assert "@" not in ascii_scatter(small_uniform)

    def test_points_rendered(self, small_uniform):
        assert "." in ascii_scatter(small_uniform)

    def test_orientation_y_up(self):
        """A point with max y must appear near the top of the plot."""
        points = np.array([[0.5, 0.0], [0.5, 1.0]])
        text = ascii_scatter(points, selected=[1], width=11, height=5)
        lines = text.splitlines()
        assert "@" in lines[1]  # first row inside the top border

    def test_degenerate_single_point(self):
        text = ascii_scatter(np.array([[0.3, 0.7]]))
        assert "." in text or "o" in text

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="(n, 2)"):
            ascii_scatter(np.zeros((5, 3)))

    def test_dense_cells_use_o(self):
        points = np.vstack([np.full((50, 2), 0.5), np.array([[0.0, 0.0]])])
        text = ascii_scatter(points, width=10, height=5)
        assert "o" in text

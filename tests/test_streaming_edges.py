"""Edge cases for :class:`StreamingDisC` expiry and degenerate inputs.

PR 9 hardening: the live-serving stack leans on the streaming repair
rule, so the invariants are pinned here independently of the service —
removal errors, duplicate objects, the ``r = 0`` degenerate radius, and
a randomized add/remove stream asserting Definition 1 after *every*
mutation plus ``rebuild()`` parity at the end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import verify_disc
from repro.core.extensions import StreamingDisC
from repro.distance import EUCLIDEAN


def _assert_window_disc(stream: StreamingDisC, points: np.ndarray, radius: float):
    """Definition 1 over the *alive* window, in arrival-id space."""
    alive = stream.alive_ids()
    assert alive, "helper expects a non-empty window"
    local_of = {arrival: local for local, arrival in enumerate(alive)}
    window = np.stack([points[i] for i in alive])
    selected = [local_of[b] for b in stream.selected_ids]
    report = verify_disc(window, EUCLIDEAN, selected, radius)
    assert report.is_disc_diverse, str(report)


class TestRemoveErrors:
    def test_remove_nonexistent_raises_index_error(self):
        stream = StreamingDisC(radius=0.2)
        stream.add([0.5, 0.5])
        with pytest.raises(IndexError, match="out of range"):
            stream.remove(1)
        with pytest.raises(IndexError, match="out of range"):
            stream.remove(-1)

    def test_remove_twice_raises_value_error(self):
        stream = StreamingDisC(radius=0.2)
        stream.add([0.1, 0.1])
        stream.add([0.9, 0.9])
        stream.remove(0)
        with pytest.raises(ValueError, match="already removed"):
            stream.remove(0)

    def test_failed_remove_leaves_state_intact(self):
        stream = StreamingDisC(radius=0.2)
        stream.add([0.1, 0.1])
        with pytest.raises(IndexError):
            stream.remove(7)
        assert stream.n_alive == 1
        assert stream.selected_ids == [0]

    def test_remove_grey_never_repairs(self):
        stream = StreamingDisC(radius=0.5)
        stream.add([0.5, 0.5])
        stream.add([0.6, 0.5])  # grey: covered by arrival 0
        assert stream.remove(1) is False
        assert stream.selected_ids == [0]
        assert stream.n_alive == 1


class TestDuplicates:
    def test_duplicate_covers_then_replaces_its_black(self):
        stream = StreamingDisC(radius=0.1)
        stream.add([0.5, 0.5])
        assert stream.add([0.5, 0.5]) is False  # exact duplicate is grey
        # Expiring the black leaves the duplicate uncovered; repair must
        # promote it (distance 0 < any positive radius elsewhere).
        assert stream.remove(0) is True
        assert stream.selected_ids == [1]
        assert stream.n_alive == 1

    def test_many_duplicates_keep_one_representative(self):
        stream = StreamingDisC(radius=0.1)
        for _ in range(5):
            stream.add([0.3, 0.7])
        assert stream.size == 1
        for victim in (0, 1, 2, 3):
            stream.remove(victim)
            assert stream.size == 1
        assert stream.alive_ids() == [4]
        assert stream.selected_ids == [4]


class TestZeroRadius:
    def test_all_distinct_points_selected(self):
        stream = StreamingDisC(radius=0.0)
        points = np.array([[0.0, 0.0], [0.1, 0.0], [0.2, 0.0]])
        assert stream.extend(points) == 3
        assert stream.selected_ids == [0, 1, 2]
        _assert_window_disc(stream, points, 0.0)

    def test_duplicates_stay_grey_at_zero_radius(self):
        stream = StreamingDisC(radius=0.0)
        points = np.array([[0.4, 0.4], [0.4, 0.4], [0.8, 0.8]])
        assert stream.extend(points) == 2
        assert stream.selected_ids == [0, 2]
        stream.remove(0)
        assert stream.selected_ids == [2, 1]  # survivor order, then repair
        _assert_window_disc(stream, points, 0.0)


class TestRandomizedStream:
    def test_definition_one_after_every_mutation(self, rng):
        radius = 0.18
        points = rng.random((120, 2))
        stream = StreamingDisC(radius=radius)
        removable: list[int] = []
        for i, point in enumerate(points):
            stream.add(point)
            removable.append(i)
            _assert_window_disc(stream, points, radius)
            # Interleave removals (~1 in 3 arrivals), of arbitrary
            # color: grey removals must be no-ops, black removals must
            # repair back to a maximal independent set.
            if i >= 4 and rng.random() < 0.34:
                victim = removable.pop(int(rng.integers(len(removable))))
                stream.remove(victim)
                _assert_window_disc(stream, points, radius)
        assert stream.n_alive == len(removable)

    def test_rebuild_parity_after_churn(self, rng):
        radius = 0.2
        points = rng.random((90, 2))
        stream = StreamingDisC(radius=radius)
        stream.extend(points)
        for victim in rng.choice(90, size=30, replace=False):
            stream.remove(int(victim))
        _assert_window_disc(stream, points, radius)
        rebuilt = stream.rebuild()
        # rebuild() returns arrival ids restricted to the alive window
        # and must satisfy Definition 1 over exactly that window.
        alive = stream.alive_ids()
        assert set(rebuilt.selected) <= set(alive)
        local_of = {arrival: local for local, arrival in enumerate(alive)}
        window = np.stack([points[i] for i in alive])
        report = verify_disc(
            window, EUCLIDEAN, [local_of[b] for b in rebuilt.selected], radius
        )
        assert report.is_disc_diverse, str(report)
        assert rebuilt.size <= stream.size

"""Tests for M-tree k-nearest-neighbor queries."""

import numpy as np
import pytest

from repro.distance import EUCLIDEAN, HAMMING, MANHATTAN
from repro.mtree import MTreeIndex


def oracle_knn(points, metric, point, k):
    d = metric.to_point(points, np.asarray(point))
    order = np.lexsort((np.arange(len(points)), d))
    return [int(i) for i in order[:k]]


class TestKnnQuery:
    @pytest.mark.parametrize("metric", [EUCLIDEAN, MANHATTAN], ids=lambda m: m.name)
    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_matches_oracle(self, medium_uniform, metric, k):
        index = MTreeIndex(medium_uniform, metric, capacity=6)
        for target in (medium_uniform[17], np.array([0.5, 0.5]), np.array([2.0, 2.0])):
            got = index.knn_query(target, k)
            expected = oracle_knn(medium_uniform, metric, target, k)
            got_d = sorted(metric.to_point(medium_uniform[got], target))
            exp_d = sorted(metric.to_point(medium_uniform[expected], target))
            assert np.allclose(got_d, exp_d), (metric.name, k)

    def test_deterministic_tie_break_on_duplicates(self):
        points = np.array([[0.5, 0.5]] * 6 + [[0.9, 0.9]])
        index = MTreeIndex(points, EUCLIDEAN, capacity=3)
        got = index.knn_query(np.array([0.5, 0.5]), 3)
        assert got == [0, 1, 2]

    def test_k_equals_n(self, small_uniform):
        index = MTreeIndex(small_uniform, EUCLIDEAN, capacity=5)
        got = index.knn_query(np.array([0.1, 0.1]), len(small_uniform))
        assert sorted(got) == list(range(len(small_uniform)))

    def test_k_validation(self, small_uniform):
        index = MTreeIndex(small_uniform, EUCLIDEAN, capacity=5)
        with pytest.raises(ValueError, match="k must be"):
            index.knn_query(np.array([0.1, 0.1]), 0)
        with pytest.raises(ValueError, match="k must be"):
            index.knn_query(np.array([0.1, 0.1]), len(small_uniform) + 1)

    def test_counts_node_accesses(self, medium_uniform):
        index = MTreeIndex(medium_uniform, EUCLIDEAN, capacity=6)
        before = index.stats.node_accesses
        index.knn_query(np.array([0.5, 0.5]), 3)
        assert index.stats.node_accesses > before

    def test_pruning_beats_full_scan(self, medium_uniform):
        """Best-first kNN must not touch every node for small k."""
        index = MTreeIndex(medium_uniform, EUCLIDEAN, capacity=6)
        total_nodes = index.tree.node_count()
        index.stats.reset()
        index.knn_query(np.array([0.5, 0.5]), 1)
        assert index.stats.node_accesses < total_nodes

    def test_hamming_knn(self, categorical_points):
        index = MTreeIndex(categorical_points, HAMMING, capacity=4)
        got = index.knn_query(categorical_points[0], 5)
        d_got = HAMMING.to_point(categorical_points[got], categorical_points[0])
        d_all = np.sort(HAMMING.to_point(categorical_points, categorical_points[0]))
        assert np.allclose(np.sort(d_got), d_all[:5])

"""Chaos lane for live datasets: kill -9 mid-mutation-stream (PR 9).

A 2-worker supervised cluster serves one *live* dataset while a client
streams mutation batches.  One worker is SIGKILLed mid-stream; the
front must keep accepting mutations on the survivor, replay the full
authoritative log into the restarted worker before it takes traffic,
and converge every replica on the same version.  Asserted invariants:

* zero lost mutations — every replica's live version equals the
  front's mutation-log length;
* post-crash selects answer at the converged version;
* clean shm teardown — no orphaned segments after ``stop()``.

Excluded from tier-1 (``-m chaos`` selects it; CI's chaos lane runs on
main pushes).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro.service.shm as shm_mod
from repro.service import ServiceClient
from repro.service.supervisor import start_supervised

RADIUS = 0.1
ENGINE = {"name": "grid", "options": {"cell_size": RADIUS}}


def _worker_versions(stats: dict, dataset: str) -> list:
    """The live dataset's version on every healthy replica."""
    versions = []
    for worker in stats["workers"]:
        payload = worker.get("stats")
        if not payload:
            continue
        for row in payload["datasets"]:
            if row["id"] == dataset and row.get("live"):
                versions.append(row["version"])
    return versions


@pytest.mark.chaos
def test_kill9_mid_mutation_stream_converges():
    rng = np.random.default_rng(29)
    cluster = start_supervised(
        ["uniform"], 2, n=600, seed=42, threads=2, heartbeat_s=0.1, live=True
    )
    run_id = cluster.run_id
    applied = 0
    try:
        with ServiceClient(cluster.host, cluster.port) as client:
            base = client.select("uniform", RADIUS, engine=ENGINE)
            assert base["version"] == 0
            previous = base["selected_global"]

            for _ in range(3):
                response = client.mutate(
                    "uniform",
                    inserts=rng.random((4, 2)).tolist(),
                    deletes=[int(i) for i in rng.choice(previous, 1)],
                    repair={"radius": RADIUS, "previous": previous},
                )
                applied += 1
                previous = response["repair"]["selected"]
                assert response["version"] == applied
                assert response["replicas_applied"] == 2

            cluster.kill_worker(0)

            # Keep mutating while the corpse is detected and restarted:
            # the survivor absorbs the stream, the front logs every batch.
            for _ in range(4):
                response = client.mutate(
                    "uniform",
                    inserts=rng.random((4, 2)).tolist(),
                    repair={"radius": RADIUS, "previous": previous},
                )
                applied += 1
                previous = response["repair"]["selected"]
                assert response["version"] == applied

            # Wait for the restart + replay to converge both replicas.
            deadline = time.monotonic() + 30
            stats = None
            while time.monotonic() < deadline:
                stats = client.stats()
                versions = _worker_versions(stats, "uniform")
                if len(versions) == 2 and set(versions) == {applied}:
                    break
                time.sleep(0.2)
            supervisor = stats["supervisor"]
            assert supervisor["crashes"] >= 1
            assert supervisor["restarts"] >= 1
            assert supervisor["mutations_routed"] == applied
            assert supervisor["mutation_log"] == {"uniform": applied}
            # Zero lost mutations: every replica sits at exactly the
            # logged version (replay delivered the batches the corpse
            # missed, and only those).
            assert _worker_versions(stats, "uniform") == [applied, applied]
            assert supervisor["mutations_replayed"] >= 1

            # The converged cluster serves version-stamped selects from
            # either replica.
            for _ in range(4):
                response = client.select("uniform", RADIUS, engine=ENGINE)
                assert response["version"] == applied
    finally:
        cluster.stop()
    assert shm_mod.list_run_segments(run_id) == []
    assert shm_mod.sweep_orphans() == []

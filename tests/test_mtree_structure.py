"""Structural tests for the M-tree: inserts, splits, chains, policies."""

import numpy as np
import pytest

from repro.distance import EUCLIDEAN, HAMMING, MANHATTAN
from repro.mtree import (
    BalancedPolicy,
    MaxSpreadPolicy,
    MinOverlapPolicy,
    MTree,
    RandomPolicy,
    get_split_policy,
)


def build_tree(points, metric=EUCLIDEAN, capacity=5, policy="min_overlap"):
    tree = MTree(metric, capacity=capacity, split_policy=policy)
    for i, p in enumerate(points):
        tree.insert(i, p)
    return tree


class TestInsertAndGrow:
    def test_single_leaf_until_capacity(self, rng):
        points = rng.random((5, 2))
        tree = build_tree(points, capacity=5)
        assert tree.height() == 1
        assert tree.root.is_leaf
        assert len(tree) == 5

    def test_root_split_grows_height(self, rng):
        points = rng.random((6, 2))
        tree = build_tree(points, capacity=5)
        assert tree.height() == 2
        assert not tree.root.is_leaf

    def test_large_build_invariants(self, rng):
        points = rng.random((400, 2))
        tree = build_tree(points, capacity=6)
        tree.check_invariants()
        assert tree.height() >= 3

    @pytest.mark.parametrize("metric", [EUCLIDEAN, MANHATTAN], ids=lambda m: m.name)
    def test_invariants_across_metrics(self, rng, metric):
        points = rng.random((150, 3))
        tree = build_tree(points, metric=metric, capacity=4)
        tree.check_invariants()

    def test_hamming_tree(self, categorical_points):
        tree = build_tree(categorical_points, metric=HAMMING, capacity=4)
        tree.check_invariants()

    def test_duplicate_points_allowed(self):
        points = np.array([[0.5, 0.5]] * 10)
        tree = build_tree(points, capacity=3)
        tree.check_invariants()
        assert len(tree) == 10

    def test_duplicate_id_rejected(self, rng):
        tree = MTree(EUCLIDEAN, capacity=4)
        tree.insert(0, rng.random(2))
        with pytest.raises(ValueError, match="already indexed"):
            tree.insert(0, rng.random(2))

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            MTree(EUCLIDEAN, capacity=1)

    def test_frozen_tree_rejects_insert(self, rng):
        tree = build_tree(rng.random((10, 2)), capacity=4)
        tree.freeze()
        with pytest.raises(RuntimeError, match="frozen"):
            tree.insert(99, rng.random(2))
        tree.unfreeze()
        tree.insert(99, rng.random(2))


class TestLeafChain:
    def test_chain_covers_all_objects(self, rng):
        points = rng.random((120, 2))
        tree = build_tree(points, capacity=4)
        ids = list(tree.objects_in_leaf_order())
        assert sorted(ids) == list(range(120))

    def test_chain_is_doubly_linked(self, rng):
        tree = build_tree(rng.random((80, 2)), capacity=4)
        leaves = list(tree.leaves())
        assert leaves[0].prev_leaf is None
        assert leaves[-1].next_leaf is None
        for left, right in zip(leaves, leaves[1:]):
            assert left.next_leaf is right
            assert right.prev_leaf is left

    def test_leaf_of_map_consistent(self, rng):
        points = rng.random((100, 2))
        tree = build_tree(points, capacity=4)
        for object_id, leaf in tree.leaf_of.items():
            assert any(e.object_id == object_id for e in leaf.entries)


class TestSplitPolicies:
    @pytest.mark.parametrize(
        "policy", ["min_overlap", "max_spread", "balanced", "random"]
    )
    def test_all_policies_build_valid_trees(self, rng, policy):
        points = rng.random((150, 2))
        tree = build_tree(points, capacity=5, policy=policy)
        tree.check_invariants()
        assert sorted(tree.objects_in_leaf_order()) == list(range(150))

    def test_policy_resolution(self):
        assert isinstance(get_split_policy("min_overlap"), MinOverlapPolicy)
        assert isinstance(get_split_policy("MinOverlap"), MinOverlapPolicy)
        assert isinstance(get_split_policy("max_spread"), MaxSpreadPolicy)
        assert isinstance(get_split_policy("balanced"), BalancedPolicy)
        assert isinstance(get_split_policy("random", seed=1), RandomPolicy)
        policy = MinOverlapPolicy()
        assert get_split_policy(policy) is policy
        with pytest.raises(ValueError, match="unknown split policy"):
            get_split_policy("bogus")

    def test_partition_never_leaves_side_empty(self):
        # All-duplicate entries are the degenerate case for partitioning.
        points = np.array([[0.2, 0.2]] * 7)
        tree = build_tree(points, capacity=3)
        tree.check_invariants()

    def test_balanced_partition_sizes(self, rng):
        from repro.mtree.node import LeafEntry, Node

        policy = BalancedPolicy()
        points = rng.random((9, 2))
        entries = [LeafEntry(i, p) for i, p in enumerate(points)]
        node = Node(is_leaf=True, entries=entries)
        p1, p2 = policy.promote(node, entries, EUCLIDEAN)
        g1, g2 = policy.partition(entries, p1, p2, EUCLIDEAN)
        assert abs(len(g1) - len(g2)) <= 1
        assert len(g1) + len(g2) == 9


class TestTraversal:
    def test_node_count_and_height(self, rng):
        tree = build_tree(rng.random((60, 2)), capacity=4)
        nodes = list(tree.nodes())
        assert len(nodes) == tree.node_count()
        leaves = [n for n in nodes if n.is_leaf]
        assert len(leaves) == sum(1 for _ in tree.leaves())

    def test_repr_smoke(self, rng):
        tree = build_tree(rng.random((30, 2)), capacity=4)
        assert "MTree" in repr(tree)

"""Figures 11-13: zooming-in vs recomputing from scratch.

For each consecutive radius pair (larger -> smaller) on Clustered and
Cities: solution size (Fig 11), node accesses (Fig 12) and the Jaccard
distance to the previous solution (Fig 13) for Greedy-DisC-from-scratch,
Zoom-In, and Greedy-Zoom-In.

Shape checks:

* zooming yields similar solution sizes (within ~25% of from-scratch),
* zooming costs fewer node accesses than recomputing,
* zoomed solutions are much closer to the previous solution (smaller
  Jaccard distance) than from-scratch ones — the paper's headline
  usability claim.
"""

import pytest

from repro.experiments import format_series, zoom_in_experiment, zoom_in_series

SERIES = ["Greedy-DisC", "Zoom-In", "Greedy-Zoom-In"]


@pytest.mark.parametrize("key", ["Clustered", "Cities"])
def test_zoom_in(benchmark, suite, register, key):
    dataset_key, radii = zoom_in_series()[key]
    exp = suite[dataset_key]
    rows = zoom_in_experiment(exp, radii)
    targets = [row["radius_to"] for row in rows]

    for figure, field in (("11", "sizes"), ("12", "node_accesses"), ("13", "jaccard")):
        series = {
            name: [row[field][name] for row in rows] for name in SERIES
        }
        register(
            f"fig{figure}_zoom_in_{key.lower()}_{field}",
            format_series(
                f"Figure {figure}: zoom-in {field} — {key} (n={exp.dataset.n})",
                "radius",
                targets,
                series,
            ),
        )

    for row in rows:
        scratch = row["sizes"]["Greedy-DisC"]
        for name in ("Zoom-In", "Greedy-Zoom-In"):
            assert row["sizes"][name] <= scratch * 1.25 + 3, (key, row)
        # Fewer accesses than recomputation for the arbitrary variant.
        assert row["node_accesses"]["Zoom-In"] < row["node_accesses"]["Greedy-DisC"]
        # Zoomed results stay closer to what the user saw before.
        assert row["jaccard"]["Zoom-In"] <= row["jaccard"]["Greedy-DisC"] + 1e-9
        assert (
            row["jaccard"]["Greedy-Zoom-In"] <= row["jaccard"]["Greedy-DisC"] + 1e-9
        )

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_zoom_in_preserves_previous_solution(benchmark, suite):
    """Lemma 5(i) at benchmark scale: every zoom-in keeps all previous
    selections, so its Jaccard distance is exactly |added| / |union|."""
    dataset_key, radii = zoom_in_series()["Clustered"]
    rows = zoom_in_experiment(suite[dataset_key], radii[:3])
    for row in rows:
        assert row["jaccard"]["Greedy-Zoom-In"] < 1.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

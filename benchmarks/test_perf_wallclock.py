"""Wall-clock perf tier: index build + Greedy-DisC across engines.

Unlike the figure benchmarks (node accesses, solution sizes), this tier
times real seconds on uniform / clustered / cities workloads at
n ∈ {2000, 10000, 50000} and persists ``results/BENCH_perf.json`` so
every future PR can be judged against a recorded trajectory.

Marked ``slow`` and therefore excluded from the default ``pytest``
run (see pytest.ini); select with ``pytest -m slow benchmarks/`` or run
``python -m repro bench`` from the CLI.  ``REPRO_BENCH_QUICK=1``
restricts to n=2000 for a seconds-scale smoke run.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import (
    render_bench_table,
    run_wallclock_bench,
    write_bench_json,
)

pytestmark = pytest.mark.slow

#: The tentpole target: CSR-accelerated Greedy-DisC must beat the seed
#: brute-force path by at least this factor on n=10000 uniform.
MIN_SPEEDUP_10K_UNIFORM = 10.0


@pytest.fixture(scope="module")
def payload():
    quick = bool(os.environ.get("REPRO_BENCH_QUICK"))
    return run_wallclock_bench(quick=quick)


def test_wallclock_bench_emits_json(payload, register):
    path = write_bench_json(payload)
    assert os.path.exists(path)
    register("BENCH_perf", render_bench_table(payload))
    # Every (workload, n) with a legacy reference also asserted parity
    # inside run_wallclock_bench; reaching here means selections agreed.
    assert payload["runs"], "benchmark produced no runs"


def test_csr_speedup_at_10k_uniform(payload):
    key = "uniform-10000"
    if key not in payload["speedups"]:
        pytest.skip("10k tier not in this run (REPRO_BENCH_QUICK)")
    assert payload["speedups"][key] >= MIN_SPEEDUP_10K_UNIFORM, payload["speedups"]

"""Wall-clock perf tier: index build + Greedy-DisC across engines.

Unlike the figure benchmarks (node accesses, solution sizes), this tier
times real seconds on uniform / clustered / cities workloads at
n ∈ {2000, ..., 200000} (clustered additionally at 500000, feasible
only through the blocked adjacency) and persists
``results/BENCH_perf.json`` so every future PR can be judged against a
recorded trajectory.

Marked ``slow`` and therefore excluded from the default ``pytest``
run (see pytest.ini); select with ``pytest -m slow benchmarks/`` or run
``python -m repro bench`` from the CLI.  ``REPRO_BENCH_QUICK=1``
restricts to n=2000 for a seconds-scale smoke run.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import (
    render_bench_table,
    run_wallclock_bench,
    write_bench_json,
)

pytestmark = pytest.mark.slow

#: The PR 1 tentpole target: CSR-accelerated Greedy-DisC must beat the
#: seed brute-force path by at least this factor on n=10000 uniform.
MIN_SPEEDUP_10K_UNIFORM = 10.0

#: PR 1 reference (ROADMAP / BENCH_perf.json @ 75bd2c8): best-engine
#: build+select on 50k clustered was 18.27s (kdtree-csr).  The PR 2
#: selection+build acceleration layer must improve it at least 3x.
PR1_CLUSTERED_50K_TOTAL_S = 18.27
MIN_CLUSTERED_50K_GAIN = 3.0

#: PR 2 selection target at the 50k tier (best engine per workload).
MAX_SELECT_50K_S = 0.6

#: PR 3 targets: the blocked adjacency must beat PR 2's 200k clustered
#: build+select (24.6s, grid-csr @ 8a390b0) and keep a measurable share
#: of the edges implicit; the new 500k clustered tier must complete.
PR2_CLUSTERED_200K_TOTAL_S = 24.6
MIN_BLOCKED_DENSE_FRACTION = 0.25
MAX_CLUSTERED_500K_TOTAL_S = 180.0


@pytest.fixture(scope="module")
def payload():
    quick = bool(os.environ.get("REPRO_BENCH_QUICK"))
    return run_wallclock_bench(quick=quick)


def test_wallclock_bench_emits_json(payload, register):
    path = write_bench_json(payload)
    assert os.path.exists(path)
    register("BENCH_perf", render_bench_table(payload))
    # Every (workload, n) also asserted cross-engine parity inside
    # run_wallclock_bench; reaching here means selections agreed.
    assert payload["runs"], "benchmark produced no runs"


def test_csr_speedup_at_10k_uniform(payload):
    key = "uniform-10000"
    if key not in payload["speedups"]:
        pytest.skip("10k tier not in this run (REPRO_BENCH_QUICK)")
    assert payload["speedups"][key] >= MIN_SPEEDUP_10K_UNIFORM, payload["speedups"]


def _runs_at(payload, workload, n):
    return [
        run for run in payload["runs"]
        if run["workload"] == workload and run["n"] == n
    ]


def test_clustered_50k_build_select_gain(payload):
    runs = _runs_at(payload, "clustered", 50000)
    if not runs:
        pytest.skip("50k tier not in this run (REPRO_BENCH_QUICK)")
    best = min(run["total_s"] for run in runs)
    assert best * MIN_CLUSTERED_50K_GAIN <= PR1_CLUSTERED_50K_TOTAL_S, runs


def test_selection_below_target_at_50k(payload):
    checked = 0
    for workload in ("uniform", "clustered", "cities"):
        runs = _runs_at(payload, workload, 50000)
        if not runs:
            continue
        checked += 1
        best = min(run["select_s"] for run in runs)
        assert best <= MAX_SELECT_50K_S, (workload, runs)
    if not checked:
        pytest.skip("50k tier not in this run (REPRO_BENCH_QUICK)")


def test_scale_tiers_record_per_phase_timings(payload):
    runs = _runs_at(payload, "uniform", 100000)
    if not runs:
        pytest.skip("100k tier not in this run (REPRO_BENCH_QUICK)")
    for run in runs:
        assert {"index_s", "adjacency_s", "select_s"} <= set(run)
        assert run["radius"] < 0.05  # density-preserving scaling applied


def test_blocked_beats_pr2_at_200k_clustered(payload):
    """The PR 3 tentpole: implicit dense blocks at the adjacency-bound
    tier — faster than the flat build *and* holding back a measurable
    share of the edge mass from materialisation."""
    runs = _runs_at(payload, "clustered", 200000)
    if not runs:
        pytest.skip("200k tier not in this run (REPRO_BENCH_QUICK)")
    grid = [run for run in runs if run["engine"] == "grid-csr"]
    assert grid, runs
    run = grid[0]
    assert run["adjacency_blocked"], "200k clustered should pick blocked"
    assert run["total_s"] <= PR2_CLUSTERED_200K_TOTAL_S, run
    # The blocked build's own wall-clock (the ISSUE's `adjacency_blocked_s`
    # field) must be present, positive, and the dominant share of build.
    assert 0 < run["adjacency_blocked_s"] <= run["build_s"], run
    assert run["stored_nnz"] < run["peak_nnz"], run
    assert run["dense_edge_fraction"] >= MIN_BLOCKED_DENSE_FRACTION, run


def test_clustered_500k_tier_feasible(payload):
    """The tier the flat CSR could not reach (≈ 950M logical edges)."""
    runs = _runs_at(payload, "clustered", 500000)
    if not runs:
        pytest.skip("500k tier not in this run (REPRO_BENCH_QUICK)")
    run = runs[0]
    assert run["engine"] == "grid-csr"
    assert run["adjacency_blocked"], run
    assert run["solution_size"] > 0
    assert run["total_s"] <= MAX_CLUSTERED_500K_TOTAL_S, run

"""Wall-clock perf tier: index build + Greedy-DisC across engines.

Unlike the figure benchmarks (node accesses, solution sizes), this tier
times real seconds on uniform / clustered / cities workloads at
n ∈ {2000, 10000, 50000} and persists ``results/BENCH_perf.json`` so
every future PR can be judged against a recorded trajectory.

Marked ``slow`` and therefore excluded from the default ``pytest``
run (see pytest.ini); select with ``pytest -m slow benchmarks/`` or run
``python -m repro bench`` from the CLI.  ``REPRO_BENCH_QUICK=1``
restricts to n=2000 for a seconds-scale smoke run.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import (
    render_bench_table,
    run_wallclock_bench,
    write_bench_json,
)

pytestmark = pytest.mark.slow

#: The PR 1 tentpole target: CSR-accelerated Greedy-DisC must beat the
#: seed brute-force path by at least this factor on n=10000 uniform.
MIN_SPEEDUP_10K_UNIFORM = 10.0

#: PR 1 reference (ROADMAP / BENCH_perf.json @ 75bd2c8): best-engine
#: build+select on 50k clustered was 18.27s (kdtree-csr).  The PR 2
#: selection+build acceleration layer must improve it at least 3x.
PR1_CLUSTERED_50K_TOTAL_S = 18.27
MIN_CLUSTERED_50K_GAIN = 3.0

#: PR 2 selection target at the 50k tier (best engine per workload).
MAX_SELECT_50K_S = 0.6


@pytest.fixture(scope="module")
def payload():
    quick = bool(os.environ.get("REPRO_BENCH_QUICK"))
    return run_wallclock_bench(quick=quick)


def test_wallclock_bench_emits_json(payload, register):
    path = write_bench_json(payload)
    assert os.path.exists(path)
    register("BENCH_perf", render_bench_table(payload))
    # Every (workload, n) also asserted cross-engine parity inside
    # run_wallclock_bench; reaching here means selections agreed.
    assert payload["runs"], "benchmark produced no runs"


def test_csr_speedup_at_10k_uniform(payload):
    key = "uniform-10000"
    if key not in payload["speedups"]:
        pytest.skip("10k tier not in this run (REPRO_BENCH_QUICK)")
    assert payload["speedups"][key] >= MIN_SPEEDUP_10K_UNIFORM, payload["speedups"]


def _runs_at(payload, workload, n):
    return [
        run for run in payload["runs"]
        if run["workload"] == workload and run["n"] == n
    ]


def test_clustered_50k_build_select_gain(payload):
    runs = _runs_at(payload, "clustered", 50000)
    if not runs:
        pytest.skip("50k tier not in this run (REPRO_BENCH_QUICK)")
    best = min(run["total_s"] for run in runs)
    assert best * MIN_CLUSTERED_50K_GAIN <= PR1_CLUSTERED_50K_TOTAL_S, runs


def test_selection_below_target_at_50k(payload):
    checked = 0
    for workload in ("uniform", "clustered", "cities"):
        runs = _runs_at(payload, workload, 50000)
        if not runs:
            continue
        checked += 1
        best = min(run["select_s"] for run in runs)
        assert best <= MAX_SELECT_50K_S, (workload, runs)
    if not checked:
        pytest.skip("50k tier not in this run (REPRO_BENCH_QUICK)")


def test_scale_tiers_record_per_phase_timings(payload):
    runs = _runs_at(payload, "uniform", 100000)
    if not runs:
        pytest.skip("100k tier not in this run (REPRO_BENCH_QUICK)")
    for run in runs:
        assert {"index_s", "adjacency_s", "select_s"} <= set(run)
        assert run["radius"] < 0.05  # density-preserving scaling applied

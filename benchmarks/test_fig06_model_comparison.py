"""Figure 6: qualitative comparison of DisC against MaxSum, MaxMin,
k-medoids and r-C on a clustered dataset (matched k).

The paper shows scatter plots; we regenerate the quantitative content
behind them:

* DisC and r-C cover 100% of the dataset at radius r,
* MaxSum and k-medoids fail to cover it (outskirts / centres only),
* MaxMin covers more than MaxSum but less than DisC,
* MaxMin achieves the largest fMin, DisC's fMin is still > r,
* k-medoids achieves the lowest representation error.
"""

import pytest

from repro.experiments import (
    format_table,
    model_comparison,
    radius_for_target_size,
)

TARGET_K = 15


def test_fig06(benchmark, suite, register):
    # Figure 6 compares selections only (no access counts), so the CSR
    # engine is sound — and fast enough for REPRO_SCALE=paper.
    dataset = suite["Clustered"].dataset
    radius = radius_for_target_size(
        dataset, TARGET_K, low=0.05, high=0.6, tolerance=1, engine="csr"
    )
    table = benchmark.pedantic(
        lambda: model_comparison(dataset, radius, engine="csr"),
        rounds=1,
        iterations=1,
    )

    headers = ["method", "k", "fMin", "fSum", "coverage", "repr. error"]
    rows = [
        [
            name,
            row["size"],
            row["fmin"],
            row["fsum"],
            row["coverage"],
            row["representation_error"],
        ]
        for name, row in table.items()
    ]
    register(
        "fig06_model_comparison",
        format_table(
            f"Figure 6: diversification models on Clustered (r={radius:.3f}, "
            f"k≈{TARGET_K})",
            headers,
            rows,
            float_fmt="{:.3f}",
        ),
    )

    disc = table["DisC (GMIS)"]
    rc = table["r-C (GDS)"]
    maxmin = table["MaxMin (MMIN)"]
    maxsum = table["MaxSum (MSUM)"]
    kmed = table["k-medoids (KMED)"]

    # Coverage: DisC and r-C are complete by construction.
    assert disc["coverage"] == pytest.approx(1.0)
    assert rc["coverage"] == pytest.approx(1.0)
    # MaxSum focuses on the outskirts; k-medoids on the centres: both
    # leave parts of the dataset unrepresented.
    assert maxsum["coverage"] < 1.0
    assert kmed["coverage"] < 1.0
    # MaxMin does better than MaxSum on coverage (paper's observation).
    assert maxmin["coverage"] >= maxsum["coverage"]

    # Objective sanity: each specialist wins its own metric.
    assert maxmin["fmin"] >= disc["fmin"]
    assert maxsum["fsum"] >= disc["fsum"]
    assert kmed["representation_error"] <= maxsum["representation_error"]

    # DisC dissimilarity: its fMin exceeds the radius.
    assert disc["fmin"] > radius

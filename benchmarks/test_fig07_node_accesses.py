"""Figure 7 (a-d): M-tree node accesses for Basic-DisC, Grey-Greedy-DisC
and Greedy-C, with and without the pruning rule.

Shape checks from the paper:

* Greedy variants cost more accesses than Basic-DisC, and the gap grows
  with the radius (greedy performs far more range queries),
* Basic-DisC's cost *decreases* as the radius grows (single leaf pass;
  bigger neighborhoods mean fewer queries),
* pruning saves accesses for both prunable heuristics — most at small
  radii (up to ~50%).
"""

import pytest

from repro.experiments import FIG7_ALGORITHMS, format_series, run_algorithm, sweep

DATASET_KEYS = ["Uniform", "Clustered", "Cities", "Cameras"]
PANEL = dict(zip(DATASET_KEYS, "abcd"))


def _render(exp, records):
    series = {
        name: [rec.node_accesses for rec in records[name]]
        for name in FIG7_ALGORITHMS
    }
    return format_series(
        f"Figure 7{PANEL[exp.name]}: node accesses — {exp.name} (n={exp.dataset.n})",
        "radius",
        exp.radii,
        series,
    )


@pytest.mark.parametrize("key", DATASET_KEYS)
def test_fig07(benchmark, suite, register, key):
    exp = suite[key]
    records = sweep(exp, FIG7_ALGORITHMS)
    register(f"fig07{PANEL[key]}_{key.lower()}", _render(exp, records))

    basic = [r.node_accesses for r in records["B-DisC"]]
    basic_pruned = [r.node_accesses for r in records["B-DisC (Pruned)"]]
    greedy = [r.node_accesses for r in records["Gr-G-DisC"]]
    greedy_pruned = [r.node_accesses for r in records["Gr-G-DisC (Pruned)"]]

    # Pruning helps (strictly, except degenerate tiny-radius ties).
    assert all(p <= u for p, u in zip(basic_pruned, basic))
    assert all(p <= u for p, u in zip(greedy_pruned, greedy))
    assert sum(p < u for p, u in zip(greedy_pruned, greedy)) >= len(greedy) - 1

    # Greedy costs more than basic at every radius.
    assert all(g > b for g, b in zip(greedy, basic))

    # Basic gets cheaper as the radius grows (compare ends of the sweep).
    assert basic[-1] < basic[0]

    # The greedy-vs-basic gap widens with the radius.
    assert greedy[-1] / basic[-1] > greedy[0] / basic[0]

    benchmark.pedantic(
        lambda: run_algorithm(
            "B-DisC (Pruned)", exp.dataset, exp.radii[0], use_cache=False
        ),
        rounds=1,
        iterations=1,
    )

"""Figures 14-16: zooming-out vs recomputing from scratch.

For each consecutive radius pair (smaller -> larger) on Clustered and
Cities: solution size (Fig 14), node accesses (Fig 15) and Jaccard
distance to the previous solution (Fig 16) for Greedy-DisC-from-scratch,
Zoom-Out, and Greedy-Zoom-Out (a)/(b)/(c).

Shape checks:

* all zoom-out variants produce sizes comparable to from-scratch,
* every variant's Jaccard distance beats from-scratch (more of the old
  solution retained),
* variant (c) achieves the smallest (or tied) adapted sizes among the
  greedy variants but is the costliest of them — matching the paper's
  discussion.
"""

import pytest

from repro.experiments import format_series, zoom_out_experiment, zoom_out_series

SERIES = [
    "Greedy-DisC",
    "Zoom-Out",
    "Greedy-Zoom-Out (a)",
    "Greedy-Zoom-Out (b)",
    "Greedy-Zoom-Out (c)",
]


@pytest.mark.parametrize("key", ["Clustered", "Cities"])
def test_zoom_out(benchmark, suite, register, key):
    dataset_key, radii = zoom_out_series()[key]
    exp = suite[dataset_key]
    rows = zoom_out_experiment(exp, radii)
    targets = [row["radius_to"] for row in rows]

    for figure, field in (("14", "sizes"), ("15", "node_accesses"), ("16", "jaccard")):
        series = {name: [row[field][name] for row in rows] for name in SERIES}
        register(
            f"fig{figure}_zoom_out_{key.lower()}_{field}",
            format_series(
                f"Figure {figure}: zoom-out {field} — {key} (n={exp.dataset.n})",
                "radius",
                targets,
                series,
            ),
        )

    for row in rows:
        scratch_size = row["sizes"]["Greedy-DisC"]
        scratch_jaccard = row["jaccard"]["Greedy-DisC"]
        for name in SERIES[1:]:
            assert row["sizes"][name] <= scratch_size * 1.6 + 3, (key, name, row)
            assert row["jaccard"][name] <= scratch_jaccard + 0.05, (key, name, row)

    # Variant (c) sizes track variant (a) closely (the paper reports (c)
    # smallest and (a) similar; at reduced scale they may swap within a
    # small band).
    total_c = sum(row["sizes"]["Greedy-Zoom-Out (c)"] for row in rows)
    total_a = sum(row["sizes"]["Greedy-Zoom-Out (a)"] for row in rows)
    assert total_c <= total_a * 1.02 + len(rows)

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""Serving-layer load benchmark: multi-client zoom trace over HTTP.

Regenerates ``results/BENCH_service.json`` — the record behind the
serving claims: shared-cache hit rate, request coalescing (computations
< requests), byte-parity with direct ``disc_select`` calls, and the
throughput win over the stateless no-cache baseline.  Runs in the
``bench`` lane (the CI fast lane smokes the same harness via
``python -m repro bench --service --quick``).
"""

from repro.service.load import (
    render_service_table,
    run_service_bench,
    write_service_json,
)


def test_service_load_records_win(register):
    payload = run_service_bench()

    assert payload["schema"] == "bench-service-v5"
    # Every served selection matched a direct disc_select call — the
    # supervised multi-worker phase included.
    assert payload["parity"] is True
    shared = payload["phases"]["shared"]
    no_cache = payload["phases"]["no_cache"]
    assert shared["requests"] == no_cache["requests"] == payload["requests_per_phase"]
    # Coalescing: strictly fewer computations than requests arrived.
    assert payload["coalesced"] is True
    assert shared["computations"] < shared["requests"]
    # The stateless baseline computes every request.
    assert no_cache["computations"] == no_cache["requests"]
    # Shared-cache effectiveness on a repeated-radius zoom trace.
    assert payload["cache_hit_rate"] >= 0.5
    assert shared["cache"]["builds"] == payload["unique_radii"]
    # The acceptance bar for the serving layer.
    assert payload["speedup"] >= 1.5

    # Supervised multi-worker phase: the ownership protocol holds
    # cluster-wide (one adjacency build per unique radius, served to
    # every worker through shared memory) and teardown leaks nothing.
    supervised = payload["phases"]["supervised"]
    multi = payload["multiworker"]
    assert supervised["requests"] == payload["requests_per_phase"]
    assert multi["builds_equal_unique_radii"] is True
    assert multi["shm_hits"] >= 1
    assert supervised["inflight_final"] == 0
    assert multi["leaked_segments"] == []
    # Throughput scaling is a hardware claim, not a software one: on a
    # box with fewer cores than workers the processes time-slice one
    # CPU and the IPC hop is pure overhead.  The recorded numbers stay
    # honest either way; the scaling bar only applies off core-bound
    # hardware.
    assert multi["core_bound"] == (payload["cpu_count"] < multi["workers"])
    if not multi["core_bound"]:
        assert multi["speedup_vs_single_process"] >= 2.5

    # Tracing-overhead lane (PR 10): the traced replay of the shared
    # phase must emit schema-valid span records for every request while
    # costing <= 5% added p50 latency.
    tracing = payload["tracing"]
    traced = payload["phases"]["traced"]
    assert traced["requests"] == payload["requests_per_phase"]
    assert tracing["trace_records"] >= traced["requests"]
    assert tracing["invalid_records"] == 0
    assert "selection" in tracing["phases_seen"]
    assert tracing["responses_with_server_timing"] == traced["requests"]
    assert tracing["responses_with_trace_header"] == traced["requests"]
    assert tracing["overhead_pct"] is not None
    assert tracing["within_target"] is True

    # Mutation-trace lane (PR 9): live churn through /mutate + repair.
    # The repaired selection must be independently verified r-DisC
    # diverse, at least as stable (Jaccard) as recomputing from
    # scratch, and >= 5x faster than re-register + recompute.
    mutation = payload["mutation"]
    assert mutation["verified_disc_diverse"] is True
    assert mutation["repair_at_least_as_stable"] is True
    assert mutation["meets_5x"] is True
    assert mutation["final_version"] == mutation["batches"]

    register("BENCH_service", render_service_table(payload))
    path = write_service_json(payload)
    print(f"[saved to {path}]")

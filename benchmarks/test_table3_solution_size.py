"""Table 3 (a-d): solution size per radius for the DisC heuristics.

Paper rows: B-DisC, G-DisC, L-Gr-G-DisC, L-Wh-G-DisC, G-C; one sub-table
per dataset.  Shape checks encoded below:

* sizes decrease monotonically with the radius,
* Greedy-DisC never exceeds Basic-DisC by more than noise,
* the lazy variants sit at or above exact greedy,
* Greedy-C is within a small factor of Greedy-DisC (relaxing
  independence "does not reduce the size considerably"),
* Clustered sizes < Uniform sizes at equal radius.

Engine: solution sizes are what Table 3 reports, so this suite runs on
the CSR fast path (``engine="csr"``) — greedy/covering selections are
engine-identical, and the flip makes ``REPRO_SCALE=paper`` regeneration
minutes instead of hours.  Node-access figures (7-12, 15) stay
M-tree-only: the M-tree is the paper's cost instrument.
"""

import pytest

from repro.experiments import TABLE3_ALGORITHMS, format_table, run_algorithm, sweep

DATASET_KEYS = ["Uniform", "Clustered", "Cities", "Cameras"]
SUBTABLE = dict(zip(DATASET_KEYS, "abcd"))


def _render(exp, records):
    headers = ["algorithm"] + [f"r={r:g}" for r in exp.radii]
    rows = [
        [name] + [rec.size for rec in records[name]] for name in TABLE3_ALGORITHMS
    ]
    return format_table(
        f"Table 3{SUBTABLE[exp.name]}: solution size — {exp.name} "
        f"(n={exp.dataset.n})",
        headers,
        rows,
    )


@pytest.mark.parametrize("key", DATASET_KEYS)
def test_table3(benchmark, suite, register, key):
    exp = suite[key]
    records = sweep(exp, TABLE3_ALGORITHMS, engine="csr")
    register(f"table3{SUBTABLE[key]}_{key.lower()}", _render(exp, records))

    basic = [r.size for r in records["B-DisC"]]
    greedy = [r.size for r in records["Gr-G-DisC"]]
    lazy_grey = [r.size for r in records["L-Gr-G-DisC (Pruned)"]]
    lazy_white = [r.size for r in records["L-Wh-G-DisC (Pruned)"]]
    cover = [r.size for r in records["G-C"]]

    # Monotone decrease with the radius.
    for series in (basic, greedy):
        assert all(a >= b for a, b in zip(series, series[1:])), (key, series)
    # Greedy beats (or ties) basic at almost every radius.
    wins = sum(1 for g, b in zip(greedy, basic) if g <= b)
    assert wins >= len(greedy) - 1, (key, greedy, basic)
    # Lazy variants track exact greedy closely.  They are usually a bit
    # larger (stale counts), but — as in the paper's own Table 3 (e.g.
    # Clustered r=0.07: L-Wh 41 < G-DisC 43) — they can also edge it out,
    # so only a closeness band is asserted.
    for lazy in (lazy_grey, lazy_white):
        for l, g in zip(lazy, greedy):
            assert l >= g * 0.9 - 2, (key, lazy, greedy)
            assert l <= g * 1.3 + 3, (key, lazy, greedy)
    # Greedy-C stays close to Greedy-DisC.
    for c, g in zip(cover, greedy):
        assert c <= g * 1.25 + 2, (key, cover, greedy)

    # Timing target: the reference heuristic at the middle radius.
    mid = exp.radii[len(exp.radii) // 2]
    benchmark.pedantic(
        lambda: run_algorithm(
            "Gr-G-DisC", exp.dataset, mid, use_cache=False, engine="csr"
        ),
        rounds=1,
        iterations=1,
    )


def test_clustered_smaller_than_uniform(benchmark, suite):
    """Section 6: clustered data needs fewer diverse objects at equal r."""
    uniform = suite["Uniform"]
    clustered = suite["Clustered"]
    records_u = sweep(uniform, ["Gr-G-DisC"], engine="csr")["Gr-G-DisC"]
    records_c = sweep(clustered, ["Gr-G-DisC"], engine="csr")["Gr-G-DisC"]
    smaller = sum(1 for u, c in zip(records_u, records_c) if c.size <= u.size)
    assert smaller >= len(records_u) - 1
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

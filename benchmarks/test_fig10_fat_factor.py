"""Figure 10: node accesses under M-trees of varying fat-factor, built
with four splitting policies (Uniform and Clustered datasets).

Shape checks:

* the MinOverlap policy yields the lowest fat-factor, random the highest,
* on Uniform data, higher fat-factor means more node accesses for the
  same (identical) solution — checked at the smallest radius, where
  overlap matters most,
* on Clustered data the effect is muted (locality + pruning),
* the split policy never changes which objects are selected.
"""

import pytest

from repro.experiments import fat_factor_sweep, format_series

RADII = [0.1, 0.3, 0.5, 0.7, 0.9]
POLICIES = ("min_overlap", "max_spread", "balanced", "random")


@pytest.mark.parametrize("key", ["Uniform", "Clustered"])
def test_fig10(benchmark, suite, register, key):
    exp = suite[key]
    rows = fat_factor_sweep(exp.dataset, RADII, policies=POLICIES)
    series = {
        f"{row['policy']} (f={row['fat_factor']:.3f})": row["node_accesses"]
        for row in rows
    }
    register(
        f"fig10_{key.lower()}_fat_factor",
        format_series(
            f"Figure 10: node accesses vs fat-factor — {key} (n={exp.dataset.n})",
            "radius",
            RADII,
            series,
        ),
    )

    factors = {row["policy"]: row["fat_factor"] for row in rows}
    assert factors["min_overlap"] <= min(factors.values()) + 1e-9
    assert factors["random"] >= factors["min_overlap"]

    # Tree shape never changes the selected objects.
    assert len({tuple(row["sizes"]) for row in rows}) == 1

    if key == "Uniform":
        by_factor = sorted(rows, key=lambda row: row["fat_factor"])
        # Lowest-overlap tree is cheaper than highest-overlap tree at the
        # smallest radius, where navigation dominates.
        assert by_factor[0]["node_accesses"][0] < by_factor[-1]["node_accesses"][0]

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fig10_convergence_at_huge_radius(benchmark, suite):
    """Paper: 'all lines begin to converge for r > 0.7' — a single
    object covers nearly everything, so tree shape stops mattering.
    Check the relative spread shrinks from r=0.1 to r=0.9 on Uniform."""
    exp = suite["Uniform"]
    rows = fat_factor_sweep(exp.dataset, [0.1, 0.9], policies=POLICIES)
    first = [row["node_accesses"][0] for row in rows]
    last = [row["node_accesses"][1] for row in rows]
    spread_first = (max(first) - min(first)) / max(first)
    spread_last = (max(last) - min(last)) / max(last)
    assert spread_last <= spread_first + 0.05
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""Section 6 textual claims not tied to a numbered figure:

* Fast-C needs up to ~30% fewer node accesses than Greedy-C while
  computing similar-sized solutions,
* doubling the M-tree node capacity cuts accesses substantially
  (the paper reports ~45%),
* bottom-up range queries save only a small fraction of accesses
  (paper: mostly under 5%, we allow a loose band).
"""

import pytest

from repro.experiments import (
    bottom_up_comparison,
    capacity_comparison,
    fast_c_comparison,
    format_table,
)


def test_fast_c_saves_accesses(benchmark, suite, register):
    exp = suite["Uniform"]
    radii = exp.radii[1:6:2]
    rows = benchmark.pedantic(
        lambda: fast_c_comparison(exp.dataset, radii), rounds=1, iterations=1
    )
    register(
        "misc_fast_c",
        format_table(
            "Fast-C vs Greedy-C — Uniform",
            ["radius", "G-C size", "Fast-C size", "G-C accesses",
             "Fast-C accesses", "saving"],
            [
                [r["radius"], r["greedy_c_size"], r["fast_c_size"],
                 r["greedy_c_accesses"], r["fast_c_accesses"],
                 f"{r['access_saving']:.0%}"]
                for r in rows
            ],
            float_fmt="{:.3g}",
        ),
    )
    # Fast-C never costs meaningfully more than Greedy-C and its
    # solutions are at least as large (truncated queries can only miss
    # coverage).  The paper reports savings up to 30% on its deeper
    # 10000-object trees; at reduced scale the stop-at-grey rule rarely
    # triggers, so we assert closeness rather than a strict win (the
    # discrepancy is recorded in EXPERIMENTS.md).
    for row in rows:
        assert row["fast_c_accesses"] <= row["greedy_c_accesses"] * 1.05, row
        assert row["fast_c_size"] >= row["greedy_c_size"], row
        assert row["fast_c_size"] <= row["greedy_c_size"] * 1.3 + 5, row


def test_capacity_scaling(benchmark, suite, register):
    exp = suite["Uniform"]
    radius = exp.radii[1]
    rows = benchmark.pedantic(
        lambda: capacity_comparison(exp.dataset, radius), rounds=1, iterations=1
    )
    register(
        "misc_capacity",
        format_table(
            f"Node capacity vs accesses — Uniform, r={radius:g}",
            ["capacity", "size", "node accesses"],
            [[r["capacity"], r["size"], r["node_accesses"]] for r in rows],
        ),
    )
    accesses = [r["node_accesses"] for r in rows]
    # 25 -> 50 -> 100: each doubling must reduce accesses meaningfully.
    assert accesses[1] < accesses[0]
    assert accesses[2] < accesses[1]
    # Paper's order of magnitude: doubling saves tens of percent.
    assert accesses[1] / accesses[0] < 0.85
    # Capacity never changes the solution.
    assert len({r["size"] for r in rows}) == 1


def test_bottom_up_band(benchmark, suite, register):
    exp = suite["Uniform"]
    row = benchmark.pedantic(
        lambda: bottom_up_comparison(exp.dataset, exp.radii[2]), rounds=1, iterations=1
    )
    register(
        "misc_bottom_up",
        format_table(
            f"Bottom-up vs top-down range queries — Uniform, r={row['radius']:g}",
            ["queries", "top-down", "bottom-up", "saving"],
            [[row["queries"], row["top_down_accesses"], row["bottom_up_accesses"],
              f"{row['saving']:.1%}"]],
        ),
    )
    # The two strategies are close: bottom-up may win or lose a little,
    # but never by a large factor (paper: benefit mostly < 5%).
    ratio = row["bottom_up_accesses"] / row["top_down_accesses"]
    assert 0.7 <= ratio <= 1.3, row


def test_grey_white_same_solutions_different_cost(benchmark, suite, register):
    """Section 5.1's two count-maintenance strategies are semantically
    equivalent (identical selections) but not cost-equivalent."""
    from repro.experiments import sweep

    exp = suite["Clustered"]
    records = sweep(exp, ["Gr-G-DisC (Pruned)", "Wh-G-DisC (Pruned)"])
    grey = records["Gr-G-DisC (Pruned)"]
    white = records["Wh-G-DisC (Pruned)"]
    assert [g.size for g in grey] == [w.size for w in white]
    costs_differ = sum(
        1 for g, w in zip(grey, white) if g.node_accesses != w.node_accesses
    )
    assert costs_differ >= len(grey) // 2
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

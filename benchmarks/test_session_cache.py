"""Session adjacency-cache benchmark: regenerates BENCH_session.json.

The repeated-radius zoom sequence of :func:`repro.experiments.perf.
run_session_bench` — a :class:`~repro.api.DiscSession` replaying the
pattern through its LRU adjacency cache vs the stateless one-shot
``disc_select`` path that rebuilds per request.  Selections are
asserted identical inside the harness; this lane records the wall-clock
and cache counters.
"""

import pytest

from repro.experiments import (
    render_session_table,
    run_session_bench,
    write_session_json,
)

pytestmark = pytest.mark.bench


def test_session_cache_bench_records_win():
    payload = run_session_bench()
    assert payload["cache"]["hits"] > 0
    assert payload["cache"]["misses"] == payload["unique_radii"]
    # The session must not lose to one-shot rebuilding on a repeated
    # pattern; the committed JSON records the actual margin.
    assert payload["session_s"] < payload["one_shot_s"]
    path = write_session_json(payload)
    print(render_session_table(payload))
    print(f"[saved to {path}]")

"""Figure 8 (a-d): node accesses for all pruned Greedy-DisC variants
(grey / white / lazy-grey / lazy-white) against pruned Basic-DisC.

Shape checks:

* lazy variants never cost more than their exact counterparts,
* grey and white variants select identical subsets (both exact), so any
  cost difference is purely the update strategy,
* on the Clustered dataset at larger radii the white variant's relative
  cost improves (many neighbors grey out at once, leaving few whites to
  recount) — checked as a weak trend.
"""

import pytest

from repro.experiments import FIG8_ALGORITHMS, format_series, run_algorithm, sweep

DATASET_KEYS = ["Uniform", "Clustered", "Cities", "Cameras"]
PANEL = dict(zip(DATASET_KEYS, "abcd"))


def _render(exp, records):
    series = {
        name: [rec.node_accesses for rec in records[name]]
        for name in FIG8_ALGORITHMS
    }
    return format_series(
        f"Figure 8{PANEL[exp.name]}: greedy variants node accesses — "
        f"{exp.name} (n={exp.dataset.n})",
        "radius",
        exp.radii,
        series,
    )


@pytest.mark.parametrize("key", DATASET_KEYS)
def test_fig08(benchmark, suite, register, key):
    exp = suite[key]
    records = sweep(exp, FIG8_ALGORITHMS)
    register(f"fig08{PANEL[key]}_{key.lower()}", _render(exp, records))

    grey = records["Gr-G-DisC (Pruned)"]
    white = records["Wh-G-DisC (Pruned)"]
    lazy_grey = records["L-Gr-G-DisC (Pruned)"]
    lazy_white = records["L-Wh-G-DisC (Pruned)"]

    # Exact grey and white maintain the same counts -> same solutions.
    for g, w in zip(grey, white):
        assert g.size == w.size, (key, g.radius)

    # Lazy update radii can only reduce the update-query cost.
    assert all(l.node_accesses <= g.node_accesses for l, g in zip(lazy_grey, grey))
    assert all(
        l.node_accesses <= w.node_accesses for l, w in zip(lazy_white, white)
    )

    benchmark.pedantic(
        lambda: run_algorithm(
            "Wh-G-DisC (Pruned)", exp.dataset, exp.radii[-1], use_cache=False
        ),
        rounds=1,
        iterations=1,
    )


def test_white_variant_gains_on_clustered(benchmark, suite):
    """Paper: 'White-Greedy-DisC performs very well for the clustered
    dataset as r increases'.  Check the cost ratio white/grey shrinks
    from the smallest to the largest radius."""
    exp = suite["Clustered"]
    records = sweep(exp, ["Gr-G-DisC (Pruned)", "Wh-G-DisC (Pruned)"])
    grey = [r.node_accesses for r in records["Gr-G-DisC (Pruned)"]]
    white = [r.node_accesses for r in records["Wh-G-DisC (Pruned)"]]
    assert white[-1] / grey[-1] < white[0] / grey[0]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""Lemma 7: DisC's minimum pairwise distance λ is within a factor 3 of
the optimal MaxMin value λ* for the same k.

We use greedy MaxMin as the comparator: λ_greedy <= λ*, so the observed
ratio λ_greedy / λ_DisC must stay below 3 with slack (and empirically
does, typically < 2).
"""

import pytest

from repro.experiments import format_table, lemma7_experiment


@pytest.mark.parametrize("key", ["Uniform", "Clustered"])
def test_lemma7(benchmark, suite, register, key):
    exp = suite[key]
    rows = benchmark.pedantic(
        lambda: lemma7_experiment(exp.dataset, exp.radii), rounds=1, iterations=1
    )
    assert rows, "at least one radius must yield k >= 2"

    register(
        f"lemma7_{key.lower()}",
        format_table(
            f"Lemma 7: λ(MaxMin greedy) vs λ(DisC) — {key} (bound: 3x)",
            ["radius", "k", "λ DisC", "λ MaxMin", "ratio"],
            [
                [
                    row["radius"],
                    row["k"],
                    row["lambda_disc"],
                    row["lambda_maxmin_greedy"],
                    row["ratio"],
                ]
                for row in rows
            ],
            float_fmt="{:.4f}",
        ),
    )

    for row in rows:
        # DisC's dissimilarity condition: λ > r.
        assert row["lambda_disc"] > row["radius"], row
        # Lemma 7 with the greedy lower bound on λ*.
        assert row["ratio"] <= row["bound"] + 1e-9, row

"""Ablations and Section 8 extension benchmarks.

Not figures from the paper, but experiments DESIGN.md commits to:

* **build-time |N_r| counting** — the Section 5.1 design choice Greedy-
  DisC relies on (paper claims up to 45% fewer accesses),
* **weighted DisC** — the alpha knob's effect on captured relevance
  (paper Section 8 objective: maximum-weight DisC subset),
* **streaming DisC** — online maintenance vs offline consolidation.
"""

import numpy as np
import pytest

from repro.core.extensions import StreamingDisC, weighted_disc
from repro.core.verify import verify_disc
from repro.experiments import format_table, precompute_ablation
from repro.index import BruteForceIndex


def test_precompute_ablation(benchmark, suite, register):
    exp = suite["Uniform"]
    radii = exp.radii[::2]
    rows = benchmark.pedantic(
        lambda: precompute_ablation(exp.dataset, radii), rounds=1, iterations=1
    )
    register(
        "ablation_precompute",
        format_table(
            "Ablation: build-time |N_r| counting vs post-build init — Uniform",
            ["radius", "size", "build-time", "post-build", "saving"],
            [
                [r["radius"], r["size"], r["build_time_accesses"],
                 r["post_hoc_accesses"], f"{r['saving']:.0%}"]
                for r in rows
            ],
            float_fmt="{:.3g}",
        ),
    )
    # The design choice must pay off at every radius (identical output
    # is asserted inside the runner).
    for row in rows:
        assert row["saving"] > 0.0, row


def test_weighted_alpha_sweep(benchmark, suite, register):
    """More relevance focus -> more captured weight per selected object,
    while every solution stays r-DisC diverse."""
    exp = suite["Clustered"]
    data = exp.dataset
    rng = np.random.default_rng(5)
    weights = rng.random(data.n) ** 2
    radius = exp.radii[3]
    alphas = [0.0, 0.25, 0.5, 0.75, 1.0]

    def run():
        rows = []
        for alpha in alphas:
            index = BruteForceIndex(data.points, data.metric, cache_radius=radius)
            result = weighted_disc(index, radius, weights, alpha=alpha)
            report = verify_disc(data.points, data.metric, result.selected, radius)
            assert report.is_disc_diverse
            rows.append(
                {
                    "alpha": alpha,
                    "size": result.size,
                    "total_weight": result.meta["total_weight"],
                    "weight_per_object": result.meta["total_weight"] / result.size,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    register(
        "ablation_weighted_alpha",
        format_table(
            f"Extension: weighted DisC alpha sweep — Clustered, r={radius:g}",
            ["alpha", "size", "total weight", "weight/object"],
            [
                [r["alpha"], r["size"], r["total_weight"], r["weight_per_object"]]
                for r in rows
            ],
            float_fmt="{:.3f}",
        ),
    )
    assert rows[-1]["weight_per_object"] >= rows[0]["weight_per_object"]


def test_streaming_vs_offline(benchmark, suite, register):
    """Online DisC stays valid at all times; offline consolidation
    shrinks it by a bounded factor (Theorem 1 limits the gap to B=5
    on 2-d Euclidean data)."""
    exp = suite["Clustered"]
    data = exp.dataset
    radius = exp.radii[2]

    def run():
        stream = StreamingDisC(radius=radius)
        stream.extend(data.points)
        rebuilt = stream.rebuild()
        return stream, rebuilt

    stream, rebuilt = benchmark.pedantic(run, rounds=1, iterations=1)
    report = verify_disc(data.points, data.metric, stream.selected_ids, radius)
    assert report.is_disc_diverse
    assert rebuilt.size <= stream.size <= 5 * rebuilt.size

    register(
        "ablation_streaming",
        format_table(
            f"Extension: streaming vs offline DisC — Clustered, r={radius:g}",
            ["mode", "size"],
            [["online (arrival order)", stream.size],
             ["offline greedy rebuild", rebuilt.size]],
        ),
    )

"""Figure 9: impact of dataset cardinality (a-b) and dimensionality (c-d)
on Greedy-DisC solution size and node accesses (Clustered data).

Shape checks:

* solution size is much more sensitive to cardinality at small radii
  than at large radii (9a),
* node accesses grow with cardinality (9b),
* solution size grows with dimensionality — the curse of dimensionality
  makes space sparser (9c).
"""

import os

import pytest

from repro.experiments import (
    cardinality_sweep,
    current_scale,
    dimensionality_sweep,
    format_series,
)

RADII = [0.01, 0.03, 0.05, 0.07]

if current_scale() == "paper":
    CARDINALITIES = [5000, 10000, 15000]
    DIM_N = 10000
else:
    CARDINALITIES = [1250, 2500, 3750]
    DIM_N = 2500
DIMS = [2, 4, 6, 8, 10]


def test_fig09ab_cardinality(benchmark, register):
    sweeps = cardinality_sweep(CARDINALITIES, RADII)
    sizes = {
        f"r={radius:g}": [rec.size for rec in records]
        for radius, records in sweeps.items()
    }
    accesses = {
        f"r={radius:g}": [rec.node_accesses for rec in records]
        for radius, records in sweeps.items()
    }
    register(
        "fig09a_cardinality_size",
        format_series("Figure 9a: solution size vs cardinality (Clustered 2-d)",
                      "n", CARDINALITIES, sizes),
    )
    register(
        "fig09b_cardinality_accesses",
        format_series("Figure 9b: node accesses vs cardinality (Clustered 2-d)",
                      "n", CARDINALITIES, accesses),
    )

    small_r = sweeps[RADII[0]]
    large_r = sweeps[RADII[-1]]
    # 9a: relative growth of |S| with n is larger at small radii.
    growth_small = small_r[-1].size / max(small_r[0].size, 1)
    growth_large = large_r[-1].size / max(large_r[0].size, 1)
    assert growth_small > growth_large
    # 9b: more data, more accesses (reference radius).
    mid = sweeps[RADII[1]]
    assert mid[-1].node_accesses > mid[0].node_accesses

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fig09cd_dimensionality(benchmark, register):
    sweeps = dimensionality_sweep(DIMS, RADII, n=DIM_N)
    sizes = {
        f"r={radius:g}": [rec.size for rec in records]
        for radius, records in sweeps.items()
    }
    accesses = {
        f"r={radius:g}": [rec.node_accesses for rec in records]
        for radius, records in sweeps.items()
    }
    register(
        "fig09c_dimensionality_size",
        format_series(
            f"Figure 9c: solution size vs dimensionality (Clustered, n={DIM_N})",
            "d", DIMS, sizes),
    )
    register(
        "fig09d_dimensionality_accesses",
        format_series(
            f"Figure 9d: node accesses vs dimensionality (Clustered, n={DIM_N})",
            "d", DIMS, accesses),
    )

    # 9c: sparser space at higher d -> more diverse objects, for every r.
    for radius, records in sweeps.items():
        assert records[-1].size > records[0].size, radius

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""Benchmark-suite fixtures.

Every benchmark regenerates one of the paper's tables/figures, renders it
as text, *saves* it under ``results/`` and *registers* it so the full set
prints in the terminal summary at the end of the run.

Scale: the default is a reduced cardinality (see
``repro.experiments.config``); run with ``REPRO_SCALE=paper`` for the
paper's exact dataset sizes.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import current_scale, experiment_suite, save_text

_REGISTERED = []

_BENCH_ROOT = os.path.dirname(os.path.abspath(__file__))


def pytest_collection_modifyitems(config, items):
    """Mark everything under benchmarks/ as ``bench``.

    The figure/table regenerations take minutes at default scale; the
    marker keeps the default run (tier-1 verify) functional-only while
    ``pytest -m bench`` (or ``-m "bench and not slow"``) remains the
    lane that rebuilds the paper's outputs.
    """
    for item in items:
        if str(item.fspath).startswith(_BENCH_ROOT):
            item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def suite():
    """The four evaluation datasets at the active scale."""
    return experiment_suite()


@pytest.fixture(scope="session")
def register():
    """Persist a rendered table/series and queue it for the summary."""

    def _register(name: str, text: str) -> None:
        path = save_text(name, text)
        _REGISTERED.append((name, path, text))

    return _register


def pytest_terminal_summary(terminalreporter):
    if not _REGISTERED:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line(
        f"=== DisC reproduction outputs (scale={current_scale()}) ==="
    )
    for name, path, text in _REGISTERED:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
        terminalreporter.write_line(f"[saved to {path}]")

    from repro.experiments.report import write_report

    report_path = write_report()
    terminalreporter.write_line("")
    terminalreporter.write_line(f"[aggregate report: {report_path}]")

"""Multi-user serving layer: shared datasets, shared cache, async HTTP.

The paper frames DisC diversity as an *interactive* operation — users
tune the radius ``r`` by zooming in and out of a result set — which
makes serving it an online, repeated-radius, shared-dataset workload.
This package is that serving layer:

* :class:`~repro.service.registry.DatasetRegistry` — named datasets
  loaded once per process, handed out as immutable handles;
* :class:`~repro.service.cache.SharedCacheManager` /
  :class:`~repro.service.cache.SharedCacheView` — the process-wide,
  thread-safe adjacency cache keyed ``(dataset, metric, radius
  bucket)`` that sessions and serving indexes attach to instead of
  owning private LRUs;
* :class:`~repro.service.state.ServiceState` — datasets + indexes +
  cache + a bounded thread pool behind one object;
* :class:`~repro.service.server.DiscServer` — the stdlib asyncio
  JSON-over-HTTP front end (``repro serve``) with single-flight
  request coalescing;
* :class:`~repro.service.client.ServiceClient` — a keep-alive stdlib
  client with jittered retry/backoff and idempotent retries;
* :mod:`~repro.service.resilience` — deadline budgets, the per-key
  circuit breaker, retry policies and the structured error contract;
* :mod:`~repro.service.faults` — deterministic, seedable fault
  injection (``repro serve --faults``) driving the chaos suite;
* :mod:`repro.service.load` — the multi-client zoom-trace load
  harness behind ``repro bench --service`` and
  ``results/BENCH_service.json``;
* :mod:`~repro.service.shm` — the refcounted, checksummed
  ``multiprocessing.shared_memory`` segment registry (one adjacency
  build per radius machine-wide, orphan sweep on startup);
* :mod:`~repro.service.supervisor` — the crash-resilient worker pool
  behind ``repro serve --workers N``: failover routing with
  idempotent request replay, heartbeat supervision with exponential
  backoff and crash-loop quarantine, per-worker ``/stats`` rollup.
"""

from repro.service.cache import SharedCacheManager, SharedCacheView, radius_bucket
from repro.service.client import (
    RetryPolicy,
    ServiceClient,
    ServiceError,
    wait_until_healthy,
)
from repro.service.faults import FaultConfig, FaultInjector, InjectedFault
from repro.service.registry import BUILTIN_DATASETS, DatasetHandle, DatasetRegistry
from repro.service.resilience import (
    BuildFailed,
    CancellationToken,
    CircuitBreaker,
    CircuitOpen,
    OperationCancelled,
)
from repro.service.server import DiscServer, RunningService, start_in_thread
from repro.service.shm import (
    SharedSegmentStore,
    ShmCacheBacking,
    shm_available,
    sweep_orphans,
)
from repro.service.state import ServiceState, canonical_key
from repro.service.supervisor import (
    Supervisor,
    SupervisorCluster,
    WorkerProcess,
    start_supervised,
)

__all__ = [
    "BUILTIN_DATASETS",
    "BuildFailed",
    "CancellationToken",
    "CircuitBreaker",
    "CircuitOpen",
    "DatasetHandle",
    "DatasetRegistry",
    "DiscServer",
    "FaultConfig",
    "FaultInjector",
    "InjectedFault",
    "OperationCancelled",
    "RetryPolicy",
    "RunningService",
    "ServiceClient",
    "ServiceError",
    "ServiceState",
    "SharedCacheManager",
    "SharedCacheView",
    "SharedSegmentStore",
    "ShmCacheBacking",
    "Supervisor",
    "SupervisorCluster",
    "WorkerProcess",
    "canonical_key",
    "radius_bucket",
    "shm_available",
    "start_in_thread",
    "start_supervised",
    "sweep_orphans",
    "wait_until_healthy",
]

"""Deterministic, seedable fault injection for the serving stack.

Chaos testing without monkeypatching: the production code exposes a
small number of *named injection points* and calls into the configured
:class:`FaultInjector` at each one.  With no injector configured every
hook is a no-op; with one, each point draws from its **own**
``random.Random`` stream seeded by ``(seed, point name)`` — so the
decision sequence at every point is reproducible for a given seed and
call order, and enabling one fault never perturbs another's stream.

Injection points
----------------
``build_failure``
    The adjacency build raises (at the shared-cache miss-claim in
    :class:`~repro.service.cache.SharedCacheManager`), exercising
    single-flight error propagation and the circuit breaker.
``slow_build``
    A cooperative sleep before the build — slices of ~10 ms with a
    cancellation checkpoint between them, so deadlines still fire.
``corrupt_cache``
    The value stored by ``put`` is swapped for a poisoned wrapper; the
    cache's integrity check detects it on the next read and rebuilds.
``connection_reset``
    The server aborts the socket instead of writing a response.
``worker_stall``
    A cooperative stall inside the compute path (after validation),
    exercising deadline expiry and executor-slot release.
``worker_crash``
    The worker *process* dies (SIGKILL to self) at dispatch — the
    hardest failure the supervisor must mask: the socket vanishes
    mid-request and the front replays on another worker.  In-process
    servers (no supervisor) degrade it to an :class:`InjectedFault`
    503 instead of killing the test runner; pass
    ``process_faults=True`` (the worker entry point does) to arm the
    real kill.
``worker_stall_hard``
    A *blocking* sleep on the worker's event loop at dispatch — unlike
    ``worker_stall`` it freezes health checks too, so the supervisor's
    heartbeat (not a request deadline) must detect and SIGKILL the
    worker.  Also gated by ``process_faults``.

Configured via :class:`FaultConfig` (plain dict round-trip for the
``repro serve --faults`` JSON flag).  Validation is strict both ways:
unknown keys raise listing the valid names, and a fault that could
never fire (a rate without its duration, a non-numeric rate) raises
instead of being silently inert.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time
from dataclasses import dataclass, field, fields
from typing import Optional

from repro.cancellation import CancellationToken, current_token

__all__ = ["FaultConfig", "FaultInjector", "InjectedFault", "CorruptedEntry"]


class InjectedFault(RuntimeError):
    """An injected failure (so tests can tell it from organic bugs)."""

    def __init__(self, point: str) -> None:
        super().__init__(f"injected fault at {point!r}")
        self.point = point


class CorruptedEntry:
    """A poisoned stand-in for a cached adjacency.

    The shared cache stamps every entry with its value's type name at
    ``put`` time and re-checks on read (a cheap stand-in for a
    checksum); this wrapper never matches the stamp, so reads detect
    the corruption and rebuild instead of serving garbage.
    """

    __slots__ = ("original",)

    nbytes = 0

    def __init__(self, original: object) -> None:
        self.original = original

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"CorruptedEntry({type(self.original).__name__})"


@dataclass
class FaultConfig:
    """Which faults fire, how often, and from which seed."""

    seed: int = 0
    build_failure_rate: float = 0.0
    #: Stop injecting build failures after this many (None = no limit) —
    #: lets breaker tests fail N builds then watch recovery.
    build_failure_limit: Optional[int] = None
    slow_build_rate: float = 0.0
    slow_build_s: float = 0.0
    corrupt_cache_rate: float = 0.0
    connection_reset_rate: float = 0.0
    worker_stall_rate: float = 0.0
    worker_stall_s: float = 0.0
    worker_crash_rate: float = 0.0
    #: Stop killing after this many crashes (None = every draw) — chaos
    #: tests crash once and watch the replay rather than crash-looping.
    worker_crash_limit: Optional[int] = None
    worker_stall_hard_rate: float = 0.0
    worker_stall_hard_s: float = 0.0

    #: rate field -> duration field that must be > 0 for it to matter.
    _PAIRED_DURATIONS = {
        "slow_build_rate": "slow_build_s",
        "worker_stall_rate": "worker_stall_s",
        "worker_stall_hard_rate": "worker_stall_hard_s",
    }

    def __post_init__(self) -> None:
        for name in (
            "build_failure_rate",
            "slow_build_rate",
            "corrupt_cache_rate",
            "connection_reset_rate",
            "worker_stall_rate",
            "worker_crash_rate",
            "worker_stall_hard_rate",
        ):
            rate = getattr(self, name)
            if isinstance(rate, bool) or not isinstance(rate, (int, float)):
                raise ValueError(f"{name} must be a number, got {rate!r}")
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        for name in ("slow_build_s", "worker_stall_s", "worker_stall_hard_s"):
            duration = getattr(self, name)
            if isinstance(duration, bool) or not isinstance(duration, (int, float)):
                raise ValueError(f"{name} must be a number, got {duration!r}")
            if duration < 0:
                raise ValueError(f"{name} must be >= 0, got {duration}")
        for name in ("build_failure_limit", "worker_crash_limit"):
            limit = getattr(self, name)
            if limit is not None and (
                isinstance(limit, bool)
                or not isinstance(limit, int)
                or limit < 0
            ):
                raise ValueError(f"{name} must be None or an int >= 0, got {limit!r}")
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise ValueError(f"seed must be an int, got {self.seed!r}")
        # A rate whose paired duration is zero would never observably
        # fire — almost certainly a typo'd config; refuse it.
        for rate_name, duration_name in self._PAIRED_DURATIONS.items():
            if getattr(self, rate_name) > 0 and getattr(self, duration_name) <= 0:
                raise ValueError(
                    f"{rate_name} > 0 is inert without {duration_name} > 0; "
                    f"set {duration_name} or drop {rate_name}"
                )

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown fault config keys: {sorted(unknown)} "
                f"(known: {sorted(known)})"
            )
        return cls(**payload)

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def any_enabled(self) -> bool:
        return any(
            getattr(self, f.name) > 0
            for f in fields(self)
            if f.name.endswith("_rate")
        )


class FaultInjector:
    """The runtime side of :class:`FaultConfig`: draws + counters.

    Thread-safe; every injection point owns an independent seeded
    stream and a fired-counter (surfaced under ``/stats`` → ``faults``).
    """

    _POINTS = (
        "build_failure",
        "slow_build",
        "corrupt_cache",
        "connection_reset",
        "worker_stall",
        "worker_crash",
        "worker_stall_hard",
    )

    def __init__(
        self,
        config: Optional[FaultConfig] = None,
        *,
        process_faults: bool = False,
    ) -> None:
        self.config = config or FaultConfig()
        #: Arm the process-level faults (SIGKILL self, blocking loop
        #: stall).  Only the supervised worker entry point sets this —
        #: an in-process test server maps the same draws to 503s.
        self.process_faults = bool(process_faults)
        self._lock = threading.Lock()
        self._streams = {
            point: random.Random(f"{self.config.seed}:{point}")
            for point in self._POINTS
        }
        self.fired = {point: 0 for point in self._POINTS}
        self._build_failures_injected = 0
        self._worker_crashes_injected = 0

    # ------------------------------------------------------------------
    def _fire(self, point: str, rate: float) -> bool:
        if rate <= 0.0:
            return False
        with self._lock:
            hit = self._streams[point].random() < rate
            if hit:
                self.fired[point] += 1
            return hit

    @staticmethod
    def _cooperative_sleep(duration: float, token: Optional[CancellationToken]) -> None:
        """Sleep in ~10 ms slices, checkpointing between them."""
        deadline = time.monotonic() + duration
        while True:
            if token is not None:
                token.checkpoint()
            left = deadline - time.monotonic()
            if left <= 0:
                return
            time.sleep(min(0.01, left))

    # ------------------------------------------------------------------
    # Injection points (each called from exactly one place in the stack)
    # ------------------------------------------------------------------
    def on_build(self) -> None:
        """Cache miss-claim: maybe raise, maybe sleep (cooperatively)."""
        config = self.config
        if config.build_failure_rate > 0:
            with self._lock:
                limit = config.build_failure_limit
                exhausted = (
                    limit is not None and self._build_failures_injected >= limit
                )
            if not exhausted and self._fire(
                "build_failure", config.build_failure_rate
            ):
                with self._lock:
                    self._build_failures_injected += 1
                raise InjectedFault("build_failure")
        if config.slow_build_s > 0 and self._fire(
            "slow_build", config.slow_build_rate
        ):
            self._cooperative_sleep(config.slow_build_s, current_token())

    def maybe_corrupt(self, value: object) -> object:
        """Cache put: maybe swap the stored value for a poisoned one."""
        if self._fire("corrupt_cache", self.config.corrupt_cache_rate):
            return CorruptedEntry(value)
        return value

    def should_reset_connection(self) -> bool:
        """Server response path: abort the socket instead of answering?"""
        return self._fire("connection_reset", self.config.connection_reset_rate)

    def on_compute(self) -> None:
        """Worker compute entry: maybe stall (cooperatively)."""
        config = self.config
        if config.worker_stall_s > 0 and self._fire(
            "worker_stall", config.worker_stall_rate
        ):
            self._cooperative_sleep(config.worker_stall_s, current_token())

    def on_dispatch(self) -> None:
        """Server dispatch of a compute request: process-level chaos.

        ``worker_crash`` SIGKILLs the process *before* any response can
        be written — the supervisor sees the connection die and must
        replay.  ``worker_stall_hard`` blocks the event loop itself
        (deliberately NOT cooperative), so ``/healthz`` goes dark and
        only the heartbeat's probe timeout can catch it.  Without
        ``process_faults`` both degrade to a 503 so single-process
        deployments can still smoke-test the config.
        """
        config = self.config
        if config.worker_crash_rate > 0:
            with self._lock:
                limit = config.worker_crash_limit
                exhausted = (
                    limit is not None and self._worker_crashes_injected >= limit
                )
            if not exhausted and self._fire(
                "worker_crash", config.worker_crash_rate
            ):
                with self._lock:
                    self._worker_crashes_injected += 1
                if self.process_faults:
                    os.kill(os.getpid(), signal.SIGKILL)  # no return
                raise InjectedFault("worker_crash")
        if config.worker_stall_hard_s > 0 and self._fire(
            "worker_stall_hard", config.worker_stall_hard_rate
        ):
            if self.process_faults:
                time.sleep(config.worker_stall_hard_s)  # blocks the loop
            else:
                self._cooperative_sleep(
                    config.worker_stall_hard_s, current_token()
                )

    # ------------------------------------------------------------------
    def counters(self) -> dict:
        with self._lock:
            return {"config": self.config.to_dict(), "fired": dict(self.fired)}

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"FaultInjector(fired={self.fired})"

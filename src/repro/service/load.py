"""Load-generation harness: multi-client zoom traces against the server.

The serving claim is quantitative — a shared adjacency cache plus
request coalescing should beat a stateless service on exactly the
traffic the paper's interactive mode generates: many users zooming
over the same dataset, radii repeating constantly.  This harness
replays that trace and records the evidence in
``results/BENCH_service.json``:

* ``clients`` threads each replay the session zoom pattern
  (:data:`~repro.experiments.perf.SESSION_ZOOM_PATTERN` multiples of
  the workload's benchmark radius) through real HTTP ``/select``
  calls, step-synchronised with a barrier so identical requests land
  concurrently — the coalescing opportunity a popular view creates;
* phase **no_cache** serves them statelessly (fresh index per request,
  no shared cache, no coalescing) — the ``disc_select``-per-request
  baseline;
* phase **shared** serves them with the
  :class:`~repro.service.cache.SharedCacheManager` and single-flight
  enabled;
* phase **deadline** replays the shared configuration with a
  per-request ``timeout_ms`` budget sized from the no-cache latency
  distribution — proving the cooperative-cancellation checkpoints
  keep even timed-out requests' observed latency within
  ``timeout_ms`` + :data:`DEADLINE_SLACK_MS`, and that degraded
  (stale-tier) responses are counted separately;
* every successful response is checked byte-identical against a
  direct :func:`repro.api.disc_select` call (``parity``), so neither
  the speedup nor the resilience is bought with a different answer.

:func:`run_chaos_trace` is the fault-injection variant the resilience
suite drives: the same 4-client zoom trace replayed against a server
with a seeded :class:`~repro.service.faults.FaultInjector` (build
failures, slow builds, connection resets, worker stalls) and
retry-enabled clients — asserting zero hung requests, the in-flight
gauge draining to zero, and byte-parity of every successful response
with the fault-free run.

The **supervised** phase replays the trace against a
:func:`~repro.service.supervisor.start_supervised` worker pool (shared
memory adjacency, failover routing) and rolls up per-worker ``/stats``
at the front — the headline claim being ``builds == unique radii``
*cluster-wide*: N workers, one adjacency build per radius, everyone
else attaches the segment.  :func:`run_kill9_trace` is its chaos twin:
SIGKILL a worker mid-trace and assert zero lost requests (the front
replays them), byte-parity, a completed restart, and no leaked
``/dev/shm`` segments after shutdown.

The **mutation** lane (PR 9) churns a *live* dataset through ``POST
/mutate`` batches carrying selection-repair requests and compares the
wall-clock against the immutable alternative (re-register the churned
points, recompute from scratch, every batch) — recording the repaired
selection's independently verified Definition 1 validity and the
Jaccard stability of consecutive selections in both lanes.

Reported per phase: wall-clock, throughput, latency percentiles, the
server's ``/stats`` computation/coalescing/timeout counters and the
shared cache's hit/miss/build accounting.  ``python -m repro bench
--service`` runs it from the CLI; ``benchmarks/test_service_load.py``
asserts the headline numbers.
"""

from __future__ import annotations

import json
import os
import platform
import shutil
import tempfile
import threading
import time
from typing import Dict, List, Optional, Union

import numpy as np

from repro import __version__
from repro.experiments.perf import SESSION_ZOOM_PATTERN, _WORKLOADS, bench_radius
from repro.experiments.tables import format_table, results_dir
from repro.obs.sink import iter_trace_records, validate_trace_record
from repro.service.cache import SharedCacheManager
from repro.service.client import RetryPolicy, ServiceClient, ServiceError
from repro.service.faults import FaultConfig, FaultInjector
from repro.service.registry import DatasetRegistry
from repro.service.server import start_in_thread
from repro.service.state import ServiceState

__all__ = [
    "DEADLINE_SLACK_MS",
    "run_chaos_trace",
    "run_kill9_trace",
    "run_service_bench",
    "render_service_table",
    "write_service_json",
]

#: Allowance on top of ``timeout_ms`` for the observed latency of a
#: deadline-bounded request: one cooperative-cancellation checkpoint
#: interval (the worst case between two ``token.checkpoint()`` calls in
#: the greedy loops / CSR builders) plus response serialisation.  The
#: acceptance bar is p99 <= timeout_ms + this slack.
DEADLINE_SLACK_MS = 250.0


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


def _latency_summary(latencies_s: List[float]) -> dict:
    ordered = sorted(latencies_s)
    return {
        "p50_ms": round(_percentile(ordered, 0.50) * 1e3, 3),
        "p90_ms": round(_percentile(ordered, 0.90) * 1e3, 3),
        "p99_ms": round(_percentile(ordered, 0.99) * 1e3, 3),
        "max_ms": round((ordered[-1] if ordered else 0.0) * 1e3, 3),
        "mean_ms": round(
            (sum(ordered) / len(ordered) if ordered else 0.0) * 1e3, 3
        ),
    }


def _client_worker(
    host: str,
    port: int,
    dataset: str,
    radii: List[float],
    engine_payload: dict,
    barrier: threading.Barrier,
    records: List[dict],
    errors: List[BaseException],
    timeout_ms: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
) -> None:
    """One simulated user: replay the zoom trace, record every outcome.

    Non-200 responses (deadline 408/504, breaker/injected 503) are
    recorded with their status instead of killing the worker — a load
    phase under faults or deadlines must observe failures, not abort
    on them.  Only transport errors that survive the client's retry
    budget and truly unexpected exceptions escape to ``errors``.
    """
    try:
        with ServiceClient(host, port, retry=retry) as client:
            for radius in radii:
                barrier.wait()
                t0 = time.perf_counter()
                try:
                    response = client.select(
                        dataset, radius, engine=engine_payload, timeout_ms=timeout_ms
                    )
                except ServiceError as exc:
                    records.append(
                        {
                            "radius": radius,
                            "latency_s": time.perf_counter() - t0,
                            "status": exc.status,
                            "code": exc.code,
                            "coalesced": False,
                            "degraded": False,
                            "selected": None,
                            "server_timing": client.last_server_timing,
                            "trace": client.last_trace,
                        }
                    )
                    continue
                records.append(
                    {
                        "radius": radius,
                        "latency_s": time.perf_counter() - t0,
                        "status": 200,
                        "code": None,
                        "coalesced": bool(response.get("coalesced")),
                        "degraded": bool(response.get("degraded")),
                        "selected": response["result"]["selected"],
                        "server_timing": client.last_server_timing,
                        "trace": client.last_trace,
                    }
                )
    except BaseException as exc:  # surface in the main thread
        errors.append(exc)
        barrier.abort()


def _run_phase(
    *,
    workload: str,
    n: int,
    radii: List[float],
    clients: int,
    engine_payload: dict,
    shared: bool,
    cache_entries: int,
    ttl_s: Optional[float],
    mode: Optional[str] = None,
    timeout_ms: Optional[float] = None,
    fault_config: Optional[FaultConfig] = None,
    client_retry: Optional[RetryPolicy] = None,
    failure_threshold: int = 3,
    breaker_reset_s: float = 30.0,
    drain_wait_s: float = 10.0,
    trace_log: Optional[str] = None,
) -> dict:
    """One trace replay against a freshly started server."""
    registry = DatasetRegistry()
    # The perf-harness workload generators pin seed=42 internally, so
    # the bench compares like for like with BENCH_perf/BENCH_session.
    registry.register_spec(
        workload,
        lambda: _WORKLOADS[workload](n),
        family=workload,
        n=n,
        seed=42,
    )
    faults = FaultInjector(fault_config) if fault_config is not None else None
    cache = (
        SharedCacheManager(
            max_entries=cache_entries,
            ttl_s=ttl_s,
            failure_threshold=failure_threshold,
            breaker_reset_s=breaker_reset_s,
            faults=faults,
        )
        if shared
        else None
    )
    state = ServiceState(
        registry,
        cache=cache,
        workers=clients,
        coalesce=shared,
        reuse_indexes=shared,
        faults=faults,
    )
    with start_in_thread(state, trace_log=trace_log) as running:
        # Load the dataset + build the serving index outside the timed
        # window in the shared phase (a warm server); the no-cache
        # phase pays index builds per request by construction.
        registry.get(workload)
        barrier = threading.Barrier(clients)
        records: List[dict] = []
        errors: List[BaseException] = []
        threads = [
            threading.Thread(
                target=_client_worker,
                args=(
                    running.host,
                    running.port,
                    workload,
                    radii,
                    engine_payload,
                    barrier,
                    records,
                    errors,
                    timeout_ms,
                    client_retry,
                ),
                name=f"disc-load-{i}",
            )
            for i in range(clients)
        ]
        t0 = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        duration = time.perf_counter() - t0
        if errors:
            raise errors[0]
        # The stats probe retries through injected connection resets so
        # a chaos run can still read its own evidence; it also waits
        # for the in-flight gauge to drain — a timed-out request must
        # release its executor slot within one checkpoint interval, so
        # a gauge stuck above zero means a leaked computation.
        probe_retry = RetryPolicy(
            retries=8, base_s=0.01, cap_s=0.1, budget_s=2.0, statuses=(), seed=97
        )
        with ServiceClient(running.host, running.port, retry=probe_retry) as probe:
            stats = probe.stats()
            drain_deadline = time.monotonic() + drain_wait_s
            while stats["inflight"] > 0 and time.monotonic() < drain_deadline:
                time.sleep(0.05)
                stats = probe.stats()
    request_count = len(records)
    cache_stats = stats.get("cache")
    hit_rate = None
    if cache_stats is not None:
        seen = cache_stats["hits"] + cache_stats["misses"]
        hit_rate = round(cache_stats["hits"] / seen, 4) if seen else None
    status_counts: Dict[str, int] = {}
    for record in records:
        key = str(record["status"])
        status_counts[key] = status_counts.get(key, 0) + 1
    return {
        "mode": mode or ("shared" if shared else "no_cache"),
        "requests": request_count,
        "duration_s": round(duration, 6),
        "throughput_rps": round(request_count / duration, 3) if duration else None,
        "latency": _latency_summary([r["latency_s"] for r in records]),
        "computations": stats["computations"],
        "coalesced_requests": stats["coalesced_requests"],
        "timeouts": stats["timeouts"],
        "degraded_responses": stats["degraded_responses"],
        "inflight_final": stats["inflight"],
        "status_counts": status_counts,
        "cache": cache_stats,
        "cache_hit_rate": hit_rate,
        "faults_fired": (stats.get("faults") or {}).get("fired"),
        "_records": records,
    }


def _run_supervised_phase(
    *,
    workload: str,
    n: int,
    radii: List[float],
    clients: int,
    engine_payload: dict,
    workers: int = 4,
    threads: Optional[int] = None,
    cache_entries: int = 16,
    ttl_s: Optional[float] = None,
    mode: str = "supervised",
    timeout_ms: Optional[float] = None,
    faults=None,
    client_retry: Optional[RetryPolicy] = None,
    drain_wait_s: float = 10.0,
    use_shm: bool = True,
    heartbeat_s: float = 0.1,
    kill_delay_s: Optional[float] = None,
    kill_worker_index: int = 0,
    expect_restarts: int = 0,
    trace_log: Optional[str] = None,
) -> dict:
    """One trace replay against a supervised multi-worker cluster.

    Same client trace as :func:`_run_phase`, but the server side is a
    :func:`~repro.service.supervisor.start_supervised` pool: the front
    owns the public port, workers are separate processes sharing
    adjacency through ``/dev/shm``.  With ``kill_delay_s`` set, a chaos
    thread SIGKILLs worker ``kill_worker_index`` that many seconds into
    the trace (and the phase waits for ``expect_restarts`` supervisor
    restarts before reading its evidence).  After shutdown the phase
    records what a leak *would* look like: any segment of the run still
    linked after the store's own sweep.
    """
    from repro.service import shm as shm_mod
    from repro.service.supervisor import start_supervised

    cluster = start_supervised(
        [workload],
        workers,
        n=n,
        seed=42,
        threads=threads if threads is not None else max(2, clients),
        cache_entries=cache_entries,
        ttl_s=ttl_s,
        faults=faults,
        use_shm=use_shm,
        heartbeat_s=heartbeat_s,
        trace_log=trace_log,
    )
    run_id = cluster.run_id
    killed: dict = {}
    stats = None
    try:
        barrier = threading.Barrier(clients)
        records: List[dict] = []
        errors: List[BaseException] = []
        client_threads = [
            threading.Thread(
                target=_client_worker,
                args=(
                    cluster.host,
                    cluster.port,
                    workload,
                    radii,
                    engine_payload,
                    barrier,
                    records,
                    errors,
                    timeout_ms,
                    client_retry,
                ),
                name=f"disc-load-sup-{i}",
            )
            for i in range(clients)
        ]
        killer = None
        if kill_delay_s is not None:

            def _kill() -> None:
                time.sleep(kill_delay_s)
                try:
                    killed["pid"] = cluster.kill_worker(kill_worker_index)
                    killed["at_s"] = round(time.perf_counter() - t0, 3)
                except Exception as exc:  # pragma: no cover - surfacing
                    killed["error"] = repr(exc)

            killer = threading.Thread(target=_kill, daemon=True)
        t0 = time.perf_counter()
        for thread in client_threads:
            thread.start()
        if killer is not None:
            killer.start()
        for thread in client_threads:
            thread.join()
        duration = time.perf_counter() - t0
        if killer is not None:
            killer.join(timeout=10)
        if errors:
            raise errors[0]
        probe_retry = RetryPolicy(
            retries=8, base_s=0.01, cap_s=0.1, budget_s=2.0, statuses=(), seed=97
        )
        with ServiceClient(cluster.host, cluster.port, retry=probe_retry) as probe:
            stats = probe.stats()
            deadline = time.monotonic() + drain_wait_s
            while (
                stats["totals"]["inflight"] + stats["totals"]["inflight_front"] > 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
                stats = probe.stats()
            # A chaos phase also waits for the supervisor to finish the
            # restart it owes, so the payload carries the full story.
            deadline = time.monotonic() + 20.0
            while (
                stats["supervisor"]["restarts"] < expect_restarts
                and time.monotonic() < deadline
            ):
                time.sleep(0.1)
                stats = probe.stats()
    finally:
        removed = cluster.stop()
    leaked = shm_mod.list_run_segments(run_id) if run_id else []
    status_counts: Dict[str, int] = {}
    for record in records:
        key = str(record["status"])
        status_counts[key] = status_counts.get(key, 0) + 1
    totals = stats["totals"]
    return {
        "mode": mode,
        "workers": workers,
        "requests": len(records),
        "duration_s": round(duration, 6),
        "throughput_rps": round(len(records) / duration, 3) if duration else None,
        "latency": _latency_summary([r["latency_s"] for r in records]),
        "status_counts": status_counts,
        "computations": totals["computations"],
        "coalesced_requests": totals["coalesced_requests"],
        "builds_total": totals["builds"],
        "shm_hits": totals["shm_hits"],
        "shm_stores": totals["shm_stores"],
        "inflight_final": totals["inflight"] + totals["inflight_front"],
        "supervisor": stats["supervisor"],
        "per_worker": [
            {
                "id": worker["id"],
                "state": worker["state"],
                "restarts": worker["restarts"],
                "crashes": worker["crashes"],
                "computations": (worker["stats"] or {}).get("computations"),
                "builds": ((worker["stats"] or {}).get("cache") or {}).get("builds"),
                "shm_hits": ((worker["stats"] or {}).get("cache") or {}).get(
                    "shm_hits"
                ),
            }
            for worker in stats["workers"]
        ],
        "killed": killed or None,
        "segments_removed": len(removed),
        "leaked_segments": leaked,
        "_records": records,
    }


def _run_mutation_phase(
    *,
    workload: str,
    n: int,
    engine_payload: dict,
    cache_entries: int,
    ttl_s: Optional[float],
    churn_fraction: float = 0.10,
    batches: int = 10,
) -> dict:
    """The PR 9 mutation-trace lane: ``/mutate`` + repair vs recompute.

    One deterministic churn plan (``churn_fraction`` of ``n`` inserted
    and as much deleted, split over ``batches`` batches) is applied two
    ways:

    * **mutate** — over HTTP against a *live* dataset: each batch is
      one ``POST /mutate`` carrying a selection-repair request, so the
      response hands back a valid selection adapted from the one the
      client already holds (wall-clock includes the incremental
      adjacency maintenance and scoped cache migration);
    * **recompute** — the immutable alternative: re-register the
      churned point set as a fresh dataset and run a full
      :func:`~repro.api.disc_select` from scratch, every batch.

    The final repaired selection is re-checked with the independent
    :func:`~repro.core.verify.verify_disc` checker (both Definition 1
    conditions), and each lane records the Jaccard similarity between
    consecutive selections — repair exists to maximise exactly that
    stability, recompute maximises nothing of the sort.
    """
    from repro.api import disc_select
    from repro.core.verify import verify_disc
    from repro.live.repair import jaccard

    data = _WORKLOADS[workload](n)
    radius = bench_radius(workload, n)
    dim = data.points.shape[1]
    rng = np.random.default_rng(1729)
    per_batch = max(1, int(n * churn_fraction / batches))

    # Build the shared churn plan first: inserts drawn inside the
    # workload's bounding box, deletes over the still-alive ids (which
    # include earlier inserts).  Both lanes replay the identical plan.
    lo, hi = data.points.min(axis=0), data.points.max(axis=0)
    plan_alive = np.ones(n, dtype=bool)
    plan: List[tuple] = []
    for _ in range(batches):
        inserts = lo + rng.random((per_batch, dim)) * (hi - lo)
        deletes = np.sort(
            rng.choice(np.flatnonzero(plan_alive), size=per_batch, replace=False)
        )
        plan_alive[deletes] = False
        plan_alive = np.concatenate([plan_alive, np.ones(per_batch, dtype=bool)])
        plan.append((inserts, deletes))

    # ---- mutate lane: HTTP /mutate + repair against a live dataset --
    registry = DatasetRegistry()
    registry.register_array(workload, data.points, data.metric)
    registry.promote_live(workload)
    state = ServiceState(
        registry,
        cache=SharedCacheManager(max_entries=cache_entries, ttl_s=ttl_s),
        workers=2,
        coalesce=True,
        reuse_indexes=True,
    )
    repair_jaccards: List[float] = []
    batch_latencies: List[float] = []
    migrated_total = 0
    try:
        with start_in_thread(state) as running:
            with ServiceClient(running.host, running.port) as client:
                base = client.select(workload, radius, engine=engine_payload)
                initial = list(base["selected_global"])
                previous = initial
                t0 = time.perf_counter()
                for inserts, deletes in plan:
                    batch_t0 = time.perf_counter()
                    response = client.mutate(
                        workload,
                        inserts=inserts.tolist(),
                        deletes=[int(i) for i in deletes],
                        repair={"radius": radius, "previous": previous},
                    )
                    batch_latencies.append(time.perf_counter() - batch_t0)
                    previous = response["repair"]["selected"]
                    repair_jaccards.append(response["repair"]["jaccard_previous"])
                    migrated_total += response["migrated_buckets"]
                mutate_s = time.perf_counter() - t0
            # Independent post-hoc check of the final repaired selection
            # (out of band — never trust the lane being measured).
            live = state.registry.get_live(workload)
            handle = live.snapshot_handle()
            local_of = {
                int(g): i for i, g in enumerate(handle.spec["alive_ids"])
            }
            report = verify_disc(
                handle.dataset.points,
                handle.dataset.metric,
                [local_of[int(g)] for g in previous],
                radius,
            )
            final_version = live.version
    finally:
        state.close()

    # ---- recompute lane: re-register + full selection per batch -----
    points_all = np.array(data.points, dtype=float)
    alive = np.ones(n, dtype=bool)
    prev_global = np.asarray(initial, dtype=np.int64)
    recompute_jaccards: List[float] = []
    recompute_s = 0.0
    base_registry = DatasetRegistry()
    for version, (inserts, deletes) in enumerate(plan, start=1):
        points_all = np.concatenate([points_all, inserts])
        alive = np.concatenate([alive, np.ones(inserts.shape[0], dtype=bool)])
        alive[deletes] = False
        t0 = time.perf_counter()
        handle = base_registry.register_array(
            f"{workload}-recompute-v{version}", points_all[alive], data.metric
        )
        result = disc_select(
            handle.dataset,
            radius,
            engine=engine_payload["name"],
            engine_options=engine_payload["options"],
        )
        recompute_s += time.perf_counter() - t0
        alive_ids = np.flatnonzero(alive)
        selected_global = alive_ids[np.asarray(result.selected, dtype=np.int64)]
        recompute_jaccards.append(jaccard(selected_global, prev_global))
        prev_global = selected_global

    repair_mean = round(float(np.mean(repair_jaccards)), 4)
    recompute_mean = round(float(np.mean(recompute_jaccards)), 4)
    speedup = round(recompute_s / mutate_s, 3) if mutate_s else None
    return {
        "mode": "mutation",
        "radius": round(radius, 6),
        "batches": batches,
        "churn_fraction": churn_fraction,
        "churn_per_batch": per_batch,
        "inserted_total": per_batch * batches,
        "deleted_total": per_batch * batches,
        "final_version": final_version,
        "final_selection_size": len(previous),
        "verified_disc_diverse": bool(report.is_disc_diverse),
        "migrated_buckets_total": migrated_total,
        "mutate": {
            "duration_s": round(mutate_s, 6),
            "latency": _latency_summary(batch_latencies),
            "jaccard_mean": repair_mean,
            "jaccard_min": round(float(np.min(repair_jaccards)), 4),
        },
        "recompute": {
            "duration_s": round(recompute_s, 6),
            "jaccard_mean": recompute_mean,
            "jaccard_min": round(float(np.min(recompute_jaccards)), 4),
        },
        "speedup_vs_recompute": speedup,
        "meets_5x": bool(speedup is not None and speedup >= 5.0),
        "repair_at_least_as_stable": bool(repair_mean >= recompute_mean),
    }


def _trace_setup(workload: str, n: int, pattern: Optional[List[float]]):
    """Radii, engine payload and fault-free reference selections."""
    from repro.api import disc_select

    if workload not in _WORKLOADS:
        raise ValueError(
            f"unknown workload {workload!r}; choose from {sorted(_WORKLOADS)}"
        )
    base = bench_radius(workload, n)
    multipliers = list(pattern or SESSION_ZOOM_PATTERN)
    radii = [base * m for m in multipliers]
    # The grid engine with radius-sized cells is the serving workhorse
    # (same configuration as the session benchmark, so the two JSONs
    # compare like for like).
    engine_payload = {"name": "grid", "options": {"cell_size": base}}
    data = _WORKLOADS[workload](n)
    reference: Dict[float, List[int]] = {}
    for radius in sorted(set(radii)):
        reference[radius] = [
            int(i)
            for i in disc_select(
                data, radius, engine="grid", engine_options={"cell_size": base}
            ).selected
        ]
    return radii, engine_payload, reference


def _trace_log_evidence(paths: List[str]) -> dict:
    """Read back emitted trace JSONL: record/problem counts + trace ids.

    ``paths`` may include per-worker logs (``<path>.w<k>``) that were
    never created (a worker that served nothing); those are skipped
    rather than counted as failures.
    """
    records = 0
    problems = 0
    trace_ids = set()
    phases_seen = set()
    for path in paths:
        if not os.path.exists(path):
            continue
        for record in iter_trace_records(path):
            records += 1
            problems += len(validate_trace_record(record))
            trace_ids.add(record.get("trace_id"))
            stack = list(record.get("spans") or [])
            while stack:
                span = stack.pop()
                phases_seen.add(span.get("name"))
                stack.extend(span.get("children") or [])
    return {
        "records": records,
        "invalid_records": problems,
        "unique_trace_ids": len(trace_ids),
        "phases_seen": sorted(p for p in phases_seen if p),
    }


def _correlate_kill9_traces(trace_log: str, workers: int) -> dict:
    """Join front and worker trace logs on trace id after a kill -9 run.

    The front writes ``trace_log``; worker ``k`` writes
    ``trace_log.w<k>``.  A replayed request is identified on the front
    side by >= 2 ``proxy`` spans (one per routing attempt) under its
    root; correlation means the worker that finally answered emitted a
    record for the *same* trace id — the join the trace ids exist for.
    """
    worker_traces: Dict[str, set] = {}
    worker_records = 0
    for k in range(workers):
        path = f"{trace_log}.w{k}"
        if not os.path.exists(path):
            continue
        for record in iter_trace_records(path):
            worker_records += 1
            worker_traces.setdefault(record.get("trace_id"), set()).add(k)
    front_records = 0
    replayed = None
    if os.path.exists(trace_log):
        for record in iter_trace_records(trace_log):
            front_records += 1
            proxies = [
                span
                for span in record.get("spans") or []
                if span.get("name") == "proxy"
            ]
            if replayed is not None or len(proxies) < 2:
                continue
            served_by = worker_traces.get(record.get("trace_id"))
            if not served_by:
                continue
            replayed = {
                "trace_id": record.get("trace_id"),
                "proxy_attempts": len(proxies),
                "attempt_workers": [
                    (span.get("annotations") or {}).get("worker")
                    for span in proxies
                ],
                "served_by_workers": sorted(served_by),
                "replays": (record.get("annotations") or {}).get("replays"),
            }
    return {
        "front_records": front_records,
        "worker_records": worker_records,
        "correlated": replayed is not None,
        "replayed_request": replayed,
    }


def _check_parity(records: List[dict], reference: Dict[float, List[int]], mode: str):
    """Every 200 must match the direct ``disc_select`` answer exactly."""
    mismatches = [
        r["radius"]
        for r in records
        if r["status"] == 200 and r["selected"] != reference[r["radius"]]
    ]
    if mismatches:
        raise AssertionError(
            f"served selections diverged from disc_select at radii "
            f"{sorted(set(mismatches))} ({mode} phase)"
        )


def run_service_bench(
    workload: str = "clustered",
    n: int = 20_000,
    *,
    clients: int = 4,
    quick: bool = False,
    pattern: Optional[List[float]] = None,
    cache_entries: int = 16,
    ttl_s: Optional[float] = None,
    workers: int = 4,
) -> dict:
    """Replay a multi-client repeated-radius zoom trace: shared vs stateless.

    All phases serve the identical trace over HTTP; the shared phase
    turns on the cross-session cache + coalescing, the no-cache phase
    is the stateless baseline, and the deadline phase re-runs the
    shared configuration under a per-request ``timeout_ms`` sized at
    the no-cache p90 — so the budget genuinely binds on the slowest
    builds while most requests complete.  The supervised phase re-runs
    the shared trace against a ``workers``-process pool (shared-memory
    adjacency, failover front) and reports the cluster-wide build
    accounting; its throughput is only expected to beat the
    single-process phase when the machine actually has the cores
    (``multiworker.core_bound`` records when it does not).  Successful
    selections are verified against direct :func:`repro.api.disc_select`
    calls before anything is reported.
    """
    if quick:
        n = min(n, 4000)
    radii, engine_payload, reference = _trace_setup(workload, n, pattern)
    common = dict(
        workload=workload,
        n=n,
        radii=radii,
        clients=clients,
        engine_payload=engine_payload,
        cache_entries=cache_entries,
        ttl_s=ttl_s,
    )

    phases = {}
    for shared in (False, True):
        phase = _run_phase(shared=shared, **common)
        records = phase.pop("_records")
        _check_parity(records, reference, phase["mode"])
        phase["parity"] = True
        phases[phase["mode"]] = phase

    no_cache = phases["no_cache"]
    shared_phase = phases["shared"]

    # Tracing-overhead lane (PR 10): the identical shared-configuration
    # trace with the span sink enabled.  One pair of runs cannot answer
    # "what does tracing cost?" — phase-to-phase p50 jitter from OS
    # scheduling dwarfs a per-request file append — so the lane
    # alternates off/on replays and compares the *minimum* p50 per
    # lane: additive noise inflates individual runs but a real tracing
    # cost shifts every run, minimum included.  The acceptance bar is
    # <= 5% added p50 latency; the JSONL the runs emit is read back
    # through the schema validator so the overhead number can never
    # come from a sink that silently wrote garbage.
    trace_dir = tempfile.mkdtemp(prefix="repro-bench-trace-")
    trace_log = os.path.join(trace_dir, "trace.jsonl")
    traced_phase = _run_phase(
        shared=True, mode="traced", trace_log=trace_log, **common
    )
    traced_records = traced_phase.pop("_records")
    _check_parity(traced_records, reference, "traced")
    traced_phase["parity"] = True
    evidence = _trace_log_evidence([trace_log, f"{trace_log}.1"])
    off_p50s = [shared_phase["latency"]["p50_ms"]]
    on_p50s = [traced_phase["latency"]["p50_ms"]]
    # Three samples per lane, mirror-ordered overall (off on | off on
    # on off), so slow monotone drift (thermal, page cache, CPU
    # governor) biases neither lane's minimum.  At full scale a single
    # phase p50 swings +/-13% run to run under 4-way client
    # concurrency, an order of magnitude above any plausible tracing
    # cost — the minimum over three runs is the stable uncontended
    # floor per lane.
    for i, extra_mode in enumerate(("off", "on", "on", "off")):
        extra_log = (
            os.path.join(trace_dir, f"trace-repeat{i}.jsonl")
            if extra_mode == "on"
            else None
        )
        extra = _run_phase(
            shared=True,
            mode=f"traced_{extra_mode}",
            trace_log=extra_log,
            **common,
        )
        extra.pop("_records")
        (on_p50s if extra_mode == "on" else off_p50s).append(
            extra["latency"]["p50_ms"]
        )
    p50_off = min(off_p50s)
    p50_on = min(on_p50s)
    overhead_pct = (
        round((p50_on - p50_off) / p50_off * 100.0, 2) if p50_off else None
    )
    tracing = {
        "p50_ms_disabled": p50_off,
        "p50_ms_enabled": p50_on,
        "p50_ms_disabled_runs": off_p50s,
        "p50_ms_enabled_runs": on_p50s,
        "overhead_pct": overhead_pct,
        "target_pct": 5.0,
        "within_target": bool(overhead_pct is not None and overhead_pct <= 5.0),
        "trace_records": evidence["records"],
        "invalid_records": evidence["invalid_records"],
        "phases_seen": evidence["phases_seen"],
        "responses_with_server_timing": sum(
            1 for r in traced_records if r.get("server_timing")
        ),
        "responses_with_trace_header": sum(
            1 for r in traced_records if r.get("trace")
        ),
    }
    phases["traced"] = traced_phase
    shutil.rmtree(trace_dir, ignore_errors=True)

    # Deadline phase: budget each request at the stateless p90 (floored
    # so trivial quick-mode workloads are not all cancelled).  Timed-out
    # requests must come back 408 within one checkpoint interval — the
    # p99-over-everything bound below is the enforcement evidence.
    timeout_ms = max(50.0, no_cache["latency"]["p90_ms"])
    deadline_phase = _run_phase(shared=True, mode="deadline", timeout_ms=timeout_ms, **common)
    records = deadline_phase.pop("_records")
    _check_parity(records, reference, "deadline")
    deadline_phase["parity"] = True
    deadline_phase["timeout_ms"] = round(timeout_ms, 3)
    deadline_phase["deadline_slack_ms"] = DEADLINE_SLACK_MS
    deadline_phase["timed_out_requests"] = sum(
        1 for r in records if r["status"] in (408, 504)
    )
    deadline_phase["within_budget"] = bool(
        deadline_phase["latency"]["p99_ms"] <= timeout_ms + DEADLINE_SLACK_MS
    )
    phases["deadline"] = deadline_phase

    # Supervised multi-worker phase: same trace, N processes, one
    # shared-memory build per radius cluster-wide.
    supervised = _run_supervised_phase(
        workload=workload,
        n=n,
        radii=radii,
        clients=clients,
        engine_payload=engine_payload,
        workers=workers,
        cache_entries=cache_entries,
        ttl_s=ttl_s,
    )
    records = supervised.pop("_records")
    _check_parity(records, reference, "supervised")
    supervised["parity"] = True
    phases["supervised"] = supervised

    # Mutation-trace lane: live dataset churn via /mutate + repair vs
    # the immutable re-register + recompute alternative (PR 9).
    mutation = _run_mutation_phase(
        workload=workload,
        n=n,
        engine_payload=engine_payload,
        cache_entries=cache_entries,
        ttl_s=ttl_s,
    )

    speedup = (
        round(no_cache["duration_s"] / shared_phase["duration_s"], 3)
        if shared_phase["duration_s"]
        else None
    )
    cpu_count = os.cpu_count() or 1
    unique_radii = len(set(radii))
    shared_rps = shared_phase["throughput_rps"] or 0.0
    return {
        "schema": "bench-service-v5",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "repro": __version__,
        "cpu_count": cpu_count,
        "workload": workload,
        "n": n,
        "clients": clients,
        "requests_per_phase": clients * len(radii),
        "radii": [round(r, 6) for r in radii],
        "unique_radii": unique_radii,
        "engine": engine_payload,
        "phases": phases,
        "speedup": speedup,
        "cache_hit_rate": shared_phase["cache_hit_rate"],
        "coalesced": shared_phase["computations"] < shared_phase["requests"],
        "parity": all(p["parity"] for p in phases.values()),
        "deadline": {
            "timeout_ms": deadline_phase["timeout_ms"],
            "slack_ms": DEADLINE_SLACK_MS,
            "p99_ms": deadline_phase["latency"]["p99_ms"],
            "within_budget": deadline_phase["within_budget"],
            "timed_out_requests": deadline_phase["timed_out_requests"],
            "degraded_responses": deadline_phase["degraded_responses"],
        },
        "tracing": tracing,
        "multiworker": {
            "workers": workers,
            "cpu_count": cpu_count,
            # On a box with fewer cores than workers the processes time-
            # slice one CPU and the IPC hop is pure overhead — scaling
            # claims only apply when this is False.
            "core_bound": cpu_count < workers,
            "throughput_rps": supervised["throughput_rps"],
            "speedup_vs_single_process": (
                round(supervised["throughput_rps"] / shared_rps, 3)
                if shared_rps
                else None
            ),
            "builds_total": supervised["builds_total"],
            "unique_radii": unique_radii,
            "builds_equal_unique_radii": (
                supervised["builds_total"] == unique_radii
            ),
            "shm_hits": supervised["shm_hits"],
            "restarts": supervised["supervisor"]["restarts"],
            "replays": supervised["supervisor"]["replays"],
            "leaked_segments": supervised["leaked_segments"],
        },
        "mutation": mutation,
    }


def run_chaos_trace(
    fault_config: Optional[Union[FaultConfig, dict]] = None,
    *,
    workload: str = "clustered",
    n: int = 2_000,
    clients: int = 4,
    pattern: Optional[List[float]] = None,
    timeout_ms: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
    cache_entries: int = 16,
    ttl_s: Optional[float] = None,
    failure_threshold: int = 3,
    breaker_reset_s: float = 0.25,
    drain_wait_s: float = 10.0,
) -> dict:
    """The 4-client zoom trace under injected faults, vs the clean run.

    Starts a server with a seeded
    :class:`~repro.service.faults.FaultInjector` wired into both the
    shared cache (build failures, slow builds, corruption) and the
    compute path (worker stalls, connection resets), replays the zoom
    trace with retry-enabled clients, and reports:

    * per-status outcome counts (a hung request would instead trip the
      watchdog — every request resolves to *some* status);
    * ``byte_identical`` — every 200, degraded or not, matched the
      fault-free :func:`repro.api.disc_select` reference exactly;
    * ``inflight_final`` — the ``/stats`` in-flight gauge after the
      trace, which must drain to 0 (cancelled work released its slot).

    ``breaker_reset_s`` defaults low so a tripped circuit half-opens
    within the trace instead of failing everything for 30s.
    """
    if isinstance(fault_config, dict):
        fault_config = FaultConfig.from_dict(fault_config)
    if fault_config is None:
        fault_config = FaultConfig()
    if retry is None:
        retry = RetryPolicy(
            retries=4,
            base_s=0.02,
            cap_s=0.25,
            budget_s=5.0,
            statuses=(503,),
            seed=fault_config.seed,
        )
    radii, engine_payload, reference = _trace_setup(workload, n, pattern)
    phase = _run_phase(
        workload=workload,
        n=n,
        radii=radii,
        clients=clients,
        engine_payload=engine_payload,
        shared=True,
        cache_entries=cache_entries,
        ttl_s=ttl_s,
        mode="chaos",
        timeout_ms=timeout_ms,
        fault_config=fault_config,
        client_retry=retry,
        failure_threshold=failure_threshold,
        breaker_reset_s=breaker_reset_s,
        drain_wait_s=drain_wait_s,
    )
    records = phase.pop("_records")
    successes = [r for r in records if r["status"] == 200]
    mismatched = sorted(
        {
            r["radius"]
            for r in successes
            if r["selected"] != reference[r["radius"]]
        }
    )
    return {
        "faults": fault_config.to_dict(),
        "requests": len(records),
        "expected_requests": clients * len(radii),
        "successes": len(successes),
        "failures": len(records) - len(successes),
        "status_counts": phase["status_counts"],
        "byte_identical": not mismatched,
        "mismatched_radii": mismatched,
        "degraded_responses": phase["degraded_responses"],
        "timeouts": phase["timeouts"],
        "inflight_final": phase["inflight_final"],
        "faults_fired": phase["faults_fired"],
        "duration_s": phase["duration_s"],
        "latency": phase["latency"],
        "cache": phase["cache"],
    }


def run_kill9_trace(
    *,
    workload: str = "clustered",
    n: int = 2_000,
    clients: int = 4,
    workers: int = 2,
    pattern: Optional[List[float]] = None,
    kill_delay_s: float = 0.3,
    kill_worker_index: int = 0,
    drain_wait_s: float = 10.0,
) -> dict:
    """SIGKILL a worker mid-trace; the clients must never notice.

    The hardest supervised-serving scenario: a ``kill -9`` lands on a
    worker while the zoom trace is in flight.  The front detects the
    vanished connections, replays the affected requests on the
    surviving workers, the heartbeat restarts the corpse, and shutdown
    sweeps every shared-memory segment.  The payload reports:

    * ``failures`` — non-200 outcomes (must be 0: a crash shows up as
      one slow response, never an error);
    * ``byte_identical`` — every response matched the fault-free
      :func:`repro.api.disc_select` reference;
    * ``restarts`` — the supervisor restarted the killed worker;
    * ``inflight_final`` — the cluster-wide gauge drained to 0;
    * ``leaked_segments`` — segments of the run still linked after the
      shutdown sweep (must be empty: ``kill -9`` cannot leak
      ``/dev/shm``);
    * ``trace_correlation`` — the run is replayed with the trace sink
      on, and one trace id must tell the whole story across processes:
      the front's record for a replayed request carries >= 2 ``proxy``
      attempt spans (the one that died with the worker, then the
      replay), and the worker that finally served it emitted a record
      under the *same* trace id to its own log.  The killed worker, by
      construction, emitted nothing.
    """
    radii, engine_payload, reference = _trace_setup(workload, n, pattern)
    trace_dir = tempfile.mkdtemp(prefix="repro-kill9-trace-")
    trace_log = os.path.join(trace_dir, "trace.jsonl")
    try:
        phase = _run_supervised_phase(
            workload=workload,
            n=n,
            radii=radii,
            clients=clients,
            engine_payload=engine_payload,
            workers=workers,
            mode="kill9",
            kill_delay_s=kill_delay_s,
            kill_worker_index=kill_worker_index,
            expect_restarts=1,
            drain_wait_s=drain_wait_s,
            trace_log=trace_log,
        )
        correlation = _correlate_kill9_traces(trace_log, workers)
    finally:
        shutil.rmtree(trace_dir, ignore_errors=True)
    records = phase.pop("_records")
    successes = [r for r in records if r["status"] == 200]
    mismatched = sorted(
        {
            r["radius"]
            for r in successes
            if r["selected"] != reference[r["radius"]]
        }
    )
    return {
        "workers": workers,
        "requests": len(records),
        "expected_requests": clients * len(radii),
        "successes": len(successes),
        "failures": len(records) - len(successes),
        "status_counts": phase["status_counts"],
        "byte_identical": not mismatched,
        "mismatched_radii": mismatched,
        "killed": phase["killed"],
        "restarts": phase["supervisor"]["restarts"],
        "crashes": phase["supervisor"]["crashes"],
        "replays": phase["supervisor"]["replays"],
        "inflight_final": phase["inflight_final"],
        "leaked_segments": phase["leaked_segments"],
        "segments_removed": phase["segments_removed"],
        "duration_s": phase["duration_s"],
        "latency": phase["latency"],
        "trace_correlation": correlation,
    }


def render_service_table(payload: dict) -> str:
    """Human-readable summary of one :func:`run_service_bench` payload."""
    rows = []
    for mode in ("no_cache", "shared", "traced", "deadline", "supervised"):
        phase = payload["phases"].get(mode)
        if phase is None:
            continue
        rows.append(
            [
                mode,
                phase["duration_s"],
                phase["throughput_rps"],
                phase["latency"]["p50_ms"],
                phase["latency"]["p99_ms"],
                phase["computations"],
                phase["coalesced_requests"],
                (
                    "-"
                    if phase.get("cache_hit_rate") is None
                    else phase["cache_hit_rate"]
                ),
            ]
        )
    table = format_table(
        f"Service load — {payload['workload']} (n={payload['n']}, "
        f"{payload['clients']} clients x {len(payload['radii'])} zoom steps, "
        f"{payload['unique_radii']} unique radii)",
        ["phase", "seconds", "req/s", "p50 ms", "p99 ms", "computed",
         "coalesced", "hit rate"],
        rows,
        float_fmt="{:.3f}",
    )
    table += (
        f"\nspeedup (shared vs no-cache): {payload['speedup']}x | "
        f"parity with disc_select: {payload['parity']}"
    )
    tracing = payload.get("tracing")
    if tracing is not None:
        table += (
            f"\ntracing overhead: p50 {tracing['p50_ms_disabled']}ms off -> "
            f"{tracing['p50_ms_enabled']}ms on = {tracing['overhead_pct']}% "
            f"(target <= {tracing['target_pct']}%), "
            f"{tracing['trace_records']} trace records "
            f"({tracing['invalid_records']} invalid)"
        )
    deadline = payload.get("deadline")
    if deadline is not None:
        table += (
            f"\ndeadline phase: timeout {deadline['timeout_ms']}ms, "
            f"p99 {deadline['p99_ms']}ms "
            f"(within budget: {deadline['within_budget']}), "
            f"{deadline['timed_out_requests']} timed out, "
            f"{deadline['degraded_responses']} degraded"
        )
    multiworker = payload.get("multiworker")
    if multiworker is not None:
        table += (
            f"\nsupervised phase: {multiworker['workers']} workers on "
            f"{multiworker['cpu_count']} cores"
            f"{' (core-bound)' if multiworker['core_bound'] else ''}, "
            f"{multiworker['speedup_vs_single_process']}x vs single process, "
            f"builds {multiworker['builds_total']}/"
            f"{multiworker['unique_radii']} unique radii cluster-wide, "
            f"{multiworker['shm_hits']} shm attaches, "
            f"{multiworker['restarts']} restarts"
        )
    mutation = payload.get("mutation")
    if mutation is not None:
        table += (
            f"\nmutation lane: {mutation['batches']} batches x "
            f"{mutation['churn_per_batch']} churn "
            f"({mutation['churn_fraction']:.0%} of n), "
            f"/mutate+repair {mutation['mutate']['duration_s']:.3f}s vs "
            f"recompute {mutation['recompute']['duration_s']:.3f}s = "
            f"{mutation['speedup_vs_recompute']}x, "
            f"jaccard {mutation['mutate']['jaccard_mean']} vs "
            f"{mutation['recompute']['jaccard_mean']}, "
            f"verified: {mutation['verified_disc_diverse']}"
        )
    return table


def write_service_json(payload: dict, path: Optional[str] = None) -> str:
    """Persist the payload as ``results/BENCH_service.json`` (or ``path``)."""
    if path is None:
        path = os.path.join(results_dir(), "BENCH_service.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path

"""Load-generation harness: multi-client zoom traces against the server.

The serving claim is quantitative — a shared adjacency cache plus
request coalescing should beat a stateless service on exactly the
traffic the paper's interactive mode generates: many users zooming
over the same dataset, radii repeating constantly.  This harness
replays that trace and records the evidence in
``results/BENCH_service.json``:

* ``clients`` threads each replay the session zoom pattern
  (:data:`~repro.experiments.perf.SESSION_ZOOM_PATTERN` multiples of
  the workload's benchmark radius) through real HTTP ``/select``
  calls, step-synchronised with a barrier so identical requests land
  concurrently — the coalescing opportunity a popular view creates;
* phase **no_cache** serves them statelessly (fresh index per request,
  no shared cache, no coalescing) — the ``disc_select``-per-request
  baseline;
* phase **shared** serves them with the
  :class:`~repro.service.cache.SharedCacheManager` and single-flight
  enabled;
* every response is checked byte-identical against a direct
  :func:`repro.api.disc_select` call (``parity``), so the speedup is
  never bought with a different answer.

Reported per phase: wall-clock, throughput, latency percentiles, the
server's ``/stats`` computation/coalescing counters and the shared
cache's hit/miss/build accounting.  ``python -m repro bench --service``
runs it from the CLI; ``benchmarks/test_service_load.py`` asserts the
headline numbers.
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time
from typing import Dict, List, Optional

import numpy as np

from repro import __version__
from repro.experiments.perf import SESSION_ZOOM_PATTERN, _WORKLOADS, bench_radius
from repro.experiments.tables import format_table, results_dir
from repro.service.cache import SharedCacheManager
from repro.service.client import ServiceClient
from repro.service.registry import DatasetRegistry
from repro.service.server import start_in_thread
from repro.service.state import ServiceState

__all__ = [
    "run_service_bench",
    "render_service_table",
    "write_service_json",
]


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


def _latency_summary(latencies_s: List[float]) -> dict:
    ordered = sorted(latencies_s)
    return {
        "p50_ms": round(_percentile(ordered, 0.50) * 1e3, 3),
        "p90_ms": round(_percentile(ordered, 0.90) * 1e3, 3),
        "p99_ms": round(_percentile(ordered, 0.99) * 1e3, 3),
        "max_ms": round((ordered[-1] if ordered else 0.0) * 1e3, 3),
        "mean_ms": round(
            (sum(ordered) / len(ordered) if ordered else 0.0) * 1e3, 3
        ),
    }


def _client_worker(
    host: str,
    port: int,
    dataset: str,
    radii: List[float],
    engine_payload: dict,
    barrier: threading.Barrier,
    records: List[dict],
    errors: List[BaseException],
) -> None:
    try:
        with ServiceClient(host, port) as client:
            for radius in radii:
                barrier.wait()
                t0 = time.perf_counter()
                response = client.select(dataset, radius, engine=engine_payload)
                elapsed = time.perf_counter() - t0
                records.append(
                    {
                        "radius": radius,
                        "latency_s": elapsed,
                        "coalesced": bool(response.get("coalesced")),
                        "selected": response["result"]["selected"],
                    }
                )
    except BaseException as exc:  # surface in the main thread
        errors.append(exc)
        barrier.abort()


def _run_phase(
    *,
    workload: str,
    n: int,
    radii: List[float],
    clients: int,
    engine_payload: dict,
    shared: bool,
    cache_entries: int,
    ttl_s: Optional[float],
) -> dict:
    """One trace replay against a freshly started server."""
    registry = DatasetRegistry()
    # The perf-harness workload generators pin seed=42 internally, so
    # the bench compares like for like with BENCH_perf/BENCH_session.
    registry.register_spec(
        workload,
        lambda: _WORKLOADS[workload](n),
        family=workload,
        n=n,
        seed=42,
    )
    cache = (
        SharedCacheManager(max_entries=cache_entries, ttl_s=ttl_s)
        if shared
        else None
    )
    state = ServiceState(
        registry,
        cache=cache,
        workers=clients,
        coalesce=shared,
        reuse_indexes=shared,
    )
    with start_in_thread(state) as running:
        # Load the dataset + build the serving index outside the timed
        # window in the shared phase (a warm server); the no-cache
        # phase pays index builds per request by construction.
        registry.get(workload)
        barrier = threading.Barrier(clients)
        records: List[dict] = []
        errors: List[BaseException] = []
        threads = [
            threading.Thread(
                target=_client_worker,
                args=(
                    running.host,
                    running.port,
                    workload,
                    radii,
                    engine_payload,
                    barrier,
                    records,
                    errors,
                ),
                name=f"disc-load-{i}",
            )
            for i in range(clients)
        ]
        t0 = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        duration = time.perf_counter() - t0
        if errors:
            raise errors[0]
        with ServiceClient(running.host, running.port) as probe:
            stats = probe.stats()
    request_count = len(records)
    cache_stats = stats.get("cache")
    hit_rate = None
    if cache_stats is not None:
        seen = cache_stats["hits"] + cache_stats["misses"]
        hit_rate = round(cache_stats["hits"] / seen, 4) if seen else None
    return {
        "mode": "shared" if shared else "no_cache",
        "requests": request_count,
        "duration_s": round(duration, 6),
        "throughput_rps": round(request_count / duration, 3) if duration else None,
        "latency": _latency_summary([r["latency_s"] for r in records]),
        "computations": stats["computations"],
        "coalesced_requests": stats["coalesced_requests"],
        "cache": cache_stats,
        "cache_hit_rate": hit_rate,
        "_records": records,
    }


def run_service_bench(
    workload: str = "clustered",
    n: int = 20_000,
    *,
    clients: int = 4,
    quick: bool = False,
    pattern: Optional[List[float]] = None,
    cache_entries: int = 16,
    ttl_s: Optional[float] = None,
) -> dict:
    """Replay a multi-client repeated-radius zoom trace: shared vs stateless.

    Both phases serve the identical trace over HTTP; the shared phase
    turns on the cross-session cache + coalescing, the no-cache phase
    is the stateless baseline.  Selections are verified against direct
    :func:`repro.api.disc_select` calls before anything is reported.
    """
    from repro.api import disc_select

    if workload not in _WORKLOADS:
        raise ValueError(
            f"unknown workload {workload!r}; choose from {sorted(_WORKLOADS)}"
        )
    if quick:
        n = min(n, 4000)
    base = bench_radius(workload, n)
    multipliers = list(pattern or SESSION_ZOOM_PATTERN)
    radii = [base * m for m in multipliers]
    # The grid engine with radius-sized cells is the serving workhorse
    # (same configuration as the session benchmark, so the two JSONs
    # compare like for like).
    engine_payload = {"name": "grid", "options": {"cell_size": base}}

    data = _WORKLOADS[workload](n)
    reference: Dict[float, List[int]] = {}
    for radius in sorted(set(radii)):
        reference[radius] = disc_select(
            data, radius, engine="grid", engine_options={"cell_size": base}
        ).selected

    phases = {}
    for shared in (False, True):
        phase = _run_phase(
            workload=workload,
            n=n,
            radii=radii,
            clients=clients,
            engine_payload=engine_payload,
            shared=shared,
            cache_entries=cache_entries,
            ttl_s=ttl_s,
        )
        records = phase.pop("_records")
        mismatches = [
            r["radius"]
            for r in records
            if r["selected"] != [int(i) for i in reference[r["radius"]]]
        ]
        phase["parity"] = not mismatches
        if mismatches:
            raise AssertionError(
                f"served selections diverged from disc_select at radii "
                f"{sorted(set(mismatches))} ({phase['mode']} phase)"
            )
        phases[phase["mode"]] = phase

    no_cache = phases["no_cache"]
    shared_phase = phases["shared"]
    speedup = (
        round(no_cache["duration_s"] / shared_phase["duration_s"], 3)
        if shared_phase["duration_s"]
        else None
    )
    return {
        "schema": "bench-service-v1",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "repro": __version__,
        "workload": workload,
        "n": n,
        "clients": clients,
        "requests_per_phase": clients * len(radii),
        "radii": [round(r, 6) for r in radii],
        "unique_radii": len(set(radii)),
        "engine": engine_payload,
        "phases": phases,
        "speedup": speedup,
        "cache_hit_rate": shared_phase["cache_hit_rate"],
        "coalesced": shared_phase["computations"] < shared_phase["requests"],
        "parity": no_cache["parity"] and shared_phase["parity"],
    }


def render_service_table(payload: dict) -> str:
    """Human-readable summary of one :func:`run_service_bench` payload."""
    rows = []
    for mode in ("no_cache", "shared"):
        phase = payload["phases"][mode]
        rows.append(
            [
                mode,
                phase["duration_s"],
                phase["throughput_rps"],
                phase["latency"]["p50_ms"],
                phase["latency"]["p99_ms"],
                phase["computations"],
                phase["coalesced_requests"],
                "-" if phase["cache_hit_rate"] is None else phase["cache_hit_rate"],
            ]
        )
    table = format_table(
        f"Service load — {payload['workload']} (n={payload['n']}, "
        f"{payload['clients']} clients x {len(payload['radii'])} zoom steps, "
        f"{payload['unique_radii']} unique radii)",
        ["phase", "seconds", "req/s", "p50 ms", "p99 ms", "computed",
         "coalesced", "hit rate"],
        rows,
        float_fmt="{:.3f}",
    )
    table += (
        f"\nspeedup (shared vs no-cache): {payload['speedup']}x | "
        f"parity with disc_select: {payload['parity']}"
    )
    return table


def write_service_json(payload: dict, path: Optional[str] = None) -> str:
    """Persist the payload as ``results/BENCH_service.json`` (or ``path``)."""
    if path is None:
        path = os.path.join(results_dir(), "BENCH_service.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path

"""Supervised multi-process serving: worker pool + failover front.

PR 6 made a single serving process fault-tolerant; this module makes
the *service* survive the death of its parts.  A front process owns
the public socket and routes ``/select``/``/zoom`` to N worker
processes (each a full :class:`~repro.service.server.DiscServer` over
its own :class:`~repro.service.state.ServiceState`), supervises them,
and recovers from their failures:

Routing and failover
    Datasets are assigned to workers (by default every worker serves
    every dataset — replicate-all; ``replication=k`` shards each
    dataset onto ``k`` of the N workers).  A request is routed to the
    least-loaded healthy replica.  If the worker dies mid-request —
    including ``kill -9``, where the connection simply vanishes — the
    front *replays* the request on another healthy worker.  Replays are
    safe because the front stamps every compute request with an
    idempotency key before forwarding: a worker that already answered
    the key replays its stored response, one that never saw it computes
    fresh, and either way the client sees one slow response instead of
    an error.

Supervision
    A heartbeat task detects death two ways: the child's exit status
    (crash, OOM-kill) and a ``/healthz`` probe with a timeout (a worker
    whose event loop is wedged — e.g. the ``worker_stall_hard`` fault —
    answers nothing, and after ``stall_probes`` consecutive dark probes
    the supervisor SIGKILLs it).  Dead workers restart with exponential
    backoff; a worker that dies ``quarantine_after`` times within
    ``crash_window_s`` is quarantined (no more restarts) and its
    datasets fail over to the surviving replicas.

Shared memory
    Workers share one adjacency build per radius through the
    :mod:`repro.service.shm` segment registry: the supervisor holds the
    run's lease, sweeps orphans from previous unclean shutdowns at
    startup, and unlinks everything at :meth:`SupervisorCluster.stop`.
    Dataset coordinate arrays travel the same way, so N workers hold
    one copy of the points.

The sync facade (:func:`start_supervised` / :class:`SupervisorCluster`)
is what the CLI (``repro serve --workers N``), the load harness, and
the chaos tests drive.
"""

from __future__ import annotations

import asyncio
import json
import os
import queue
import signal
import subprocess
import sys
import threading
import time
import uuid
from collections import deque
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.sink import TraceSink, build_record
from repro.service.resilience import error_body
from repro.service.server import (
    _json_bytes,
    read_http_request,
    write_http_response,
)
from repro.service import shm as shm_mod

__all__ = [
    "Supervisor",
    "SupervisorCluster",
    "WorkerProcess",
    "WorkerStartupError",
    "shared_dataset_loader",
    "start_supervised",
]

DEFAULT_HEARTBEAT_S = 0.25
DEFAULT_PROBE_TIMEOUT_S = 1.0
#: Consecutive dark ``/healthz`` probes before the worker is declared
#: wedged and SIGKILLed.
DEFAULT_STALL_PROBES = 3
#: Crashes within the window before a worker is quarantined.
DEFAULT_QUARANTINE_AFTER = 5
DEFAULT_CRASH_WINDOW_S = 30.0
BACKOFF_BASE_S = 0.05
BACKOFF_CAP_S = 2.0
#: Transport-level failovers one request may ride before giving up —
#: bounds a request's worst case when workers crash back-to-back.
DEFAULT_MAX_REPLAYS = 8
#: How long a request waits for a restarting worker when no replica is
#: currently healthy, before answering 503.
NO_WORKER_WAIT_S = 30.0
WORKER_START_TIMEOUT_S = 120.0

_TRANSPORT_ERRORS = (
    OSError,  # covers ConnectionResetError/RefusedError/BrokenPipe
    EOFError,
    asyncio.IncompleteReadError,
    asyncio.TimeoutError,
)


class WorkerStartupError(RuntimeError):
    """A worker process failed to reach its ready handshake."""


# ----------------------------------------------------------------------
# Shared dataset points (one copy of the coordinates per machine)
# ----------------------------------------------------------------------
def shared_dataset_loader(store, name: str, n: Optional[int], seed: int):
    """A registry loader that attaches the dataset's points from shared
    memory, falling back to (and publishing from) the builtin generator.

    Only plain point-matrix datasets are shared; one with attributes or
    categories is served from a local load (the guard keeps the segment
    protocol honest rather than silently dropping columns).
    """
    from repro.datasets import Dataset
    from repro.distance import get_metric
    from repro.service.registry import BUILTIN_DATASETS

    loader, default_n = BUILTIN_DATASETS[name]
    size = default_n if n is None else int(n)

    def load() -> "Dataset":
        import numpy as np

        key = f"points:{name}:n{size}:s{seed}"
        status, got = store.acquire(key)
        if status == "value":
            return Dataset(
                name=name,
                points=got["arrays"]["points"],
                metric=get_metric(got["meta"]["metric"]),
            )
        dataset = loader(size, seed)
        if status == "claim":
            if dataset.attributes is None and dataset.categories is None:
                store.publish(
                    got,
                    "points",
                    {"points": np.ascontiguousarray(dataset.points)},
                    {"metric": dataset.metric.name},
                )
            else:
                got.abandon()
        return dataset

    return load


# ----------------------------------------------------------------------
# Worker child process
# ----------------------------------------------------------------------
class WorkerProcess:
    """One ``repro worker`` child: spawn, handshake, lifecycle.

    The child binds an ephemeral port and prints a single JSON ready
    line (``{"worker_ready": true, "port": ..., "pid": ...}``) on
    stdout; :meth:`start` blocks until that line (or a ``worker_error``
    line / child exit) arrives.  A daemon thread keeps draining stdout
    afterwards so the child can never block on a full pipe.
    """

    def __init__(self, worker_id: int, config: dict) -> None:
        self.worker_id = worker_id
        self.config = dict(config)
        self.proc: Optional[subprocess.Popen] = None
        self.port: Optional[int] = None
        self.pid: Optional[int] = None
        self._lines: "queue.Queue[str]" = queue.Queue()

    def start(self, timeout_s: float = WORKER_START_TIMEOUT_S) -> "WorkerProcess":
        import repro

        env = os.environ.copy()
        src = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "worker",
                "--config",
                json.dumps(self.config),
            ],
            stdout=subprocess.PIPE,
            # stderr inherits: worker tracebacks surface in the
            # supervisor's own stderr instead of vanishing.
            text=True,
            env=env,
        )
        threading.Thread(
            target=self._drain_stdout,
            name=f"disc-worker-{self.worker_id}-stdout",
            daemon=True,
        ).start()
        deadline = time.monotonic() + timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.kill()
                raise WorkerStartupError(
                    f"worker {self.worker_id} did not become ready "
                    f"within {timeout_s:.0f}s"
                )
            try:
                line = self._lines.get(timeout=min(0.5, remaining))
            except queue.Empty:
                if self.proc.poll() is not None:
                    raise WorkerStartupError(
                        f"worker {self.worker_id} exited with "
                        f"{self.proc.returncode} before becoming ready"
                    )
                continue
            try:
                message = json.loads(line)
            except ValueError:
                continue  # stray output before the handshake line
            if not isinstance(message, dict):
                continue
            if message.get("worker_ready"):
                self.port = int(message["port"])
                self.pid = int(message.get("pid", self.proc.pid))
                return self
            if "worker_error" in message:
                self.proc.wait(timeout=10)
                raise WorkerStartupError(
                    f"worker {self.worker_id}: {message['worker_error']}"
                )

    def _drain_stdout(self) -> None:
        proc = self.proc
        if proc is None or proc.stdout is None:  # pragma: no cover
            return
        try:
            for line in proc.stdout:
                self._lines.put(line)
        except ValueError:  # pragma: no cover - stdout closed under us
            pass

    # ------------------------------------------------------------------
    def poll(self) -> Optional[int]:
        return None if self.proc is None else self.proc.poll()

    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    def terminate(self) -> None:
        if self.alive():
            self.proc.terminate()

    def kill(self) -> None:
        if self.alive():
            self.proc.kill()

    def wait(self, timeout: Optional[float] = None) -> Optional[int]:
        if self.proc is None:
            return None
        try:
            return self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            return None


# ----------------------------------------------------------------------
# Front
# ----------------------------------------------------------------------
async def _read_http_response(reader) -> Tuple[int, dict, bool]:
    """Parse one HTTP/1.1 response from a worker connection."""
    status_line = await reader.readline()
    if not status_line:
        raise asyncio.IncompleteReadError(b"", None)
    parts = status_line.decode("latin-1").split(None, 2)
    if len(parts) < 2:
        raise asyncio.IncompleteReadError(status_line, None)
    status = int(parts[1])
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise asyncio.IncompleteReadError(b"", None)
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    raw = await reader.readexactly(length) if length else b""
    payload = json.loads(raw.decode("utf-8")) if raw else {}
    keep_alive = headers.get("connection", "keep-alive").lower() != "close"
    return status, payload, keep_alive


class _WorkerSlot:
    """The supervisor's bookkeeping for one worker position."""

    __slots__ = (
        "id",
        "config",
        "datasets",
        "process",
        "state",  # starting | healthy | restarting | quarantined | stopped
        "generation",
        "inflight",
        "consecutive_probe_failures",
        "crash_times",
        "restarts",
        "crashes",
        "pool",
    )

    def __init__(self, slot_id: int, config: dict) -> None:
        self.id = slot_id
        self.config = config
        self.datasets = list(config.get("datasets") or [])
        self.process: Optional[WorkerProcess] = None
        self.state = "starting"
        self.generation = 0
        self.inflight = 0
        self.consecutive_probe_failures = 0
        self.crash_times: deque = deque()
        self.restarts = 0
        self.crashes = 0
        #: Idle keep-alive connections: list of (reader, writer).
        self.pool: List[tuple] = []

    def describe(self) -> dict:
        return {
            "id": self.id,
            "state": self.state,
            "pid": None if self.process is None else self.process.pid,
            "port": None if self.process is None else self.process.port,
            "generation": self.generation,
            "restarts": self.restarts,
            "crashes": self.crashes,
            "inflight_front": self.inflight,
            "datasets": list(self.datasets),
        }


class Supervisor:
    """The asyncio front: routing, failover, heartbeat, rollup.

    Single-threaded on its event loop (slot state needs no locks);
    worker spawns — the only blocking work — run in the default
    executor.  Construct with one config dict per worker slot, then
    ``await start()``.
    """

    #: Lock discipline (convention in :mod:`repro.engines.cache`): the
    #: supervisor is single-threaded on its event loop, so every
    #: counter and routing gauge is guarded by the ``event-loop``
    #: sentinel rather than a lock.  Sync helpers that mutate these run
    #: only as event-loop callees and say so in their docstrings.
    _GUARDED_BY = {
        "requests": "event-loop",
        "responses": "event-loop",
        "replays": "event-loop",
        "restarts": "event-loop",
        "crashes": "event-loop",
        "stall_kills": "event-loop",
        "quarantined": "event-loop",
        "mutations_routed": "event-loop",
        "mutations_replayed": "event-loop",
        "_active_requests": "event-loop",
        "_rr": "event-loop",
        "_restart_tasks": "event-loop",
        "_conn_tasks": "event-loop",
        "_mutation_logs": "event-loop",
        "_mutation_locks": "event-loop",
    }

    def __init__(
        self,
        worker_configs: Sequence[dict],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        run_id: Optional[str] = None,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        probe_timeout_s: float = DEFAULT_PROBE_TIMEOUT_S,
        stall_probes: int = DEFAULT_STALL_PROBES,
        quarantine_after: int = DEFAULT_QUARANTINE_AFTER,
        crash_window_s: float = DEFAULT_CRASH_WINDOW_S,
        backoff_base_s: float = BACKOFF_BASE_S,
        backoff_cap_s: float = BACKOFF_CAP_S,
        max_replays: int = DEFAULT_MAX_REPLAYS,
        worker_start_timeout_s: float = WORKER_START_TIMEOUT_S,
        trace_log: Optional[str] = None,
    ) -> None:
        if not worker_configs:
            raise ValueError("at least one worker config is required")
        self.host = host
        self.port = port
        self.run_id = run_id
        self.heartbeat_s = heartbeat_s
        self.probe_timeout_s = probe_timeout_s
        self.stall_probes = stall_probes
        self.quarantine_after = quarantine_after
        self.crash_window_s = crash_window_s
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.max_replays = max_replays
        self.worker_start_timeout_s = worker_start_timeout_s
        self.slots = [
            _WorkerSlot(i, dict(config)) for i, config in enumerate(worker_configs)
        ]
        self._dataset_names = sorted(
            {name for slot in self.slots for name in slot.datasets}
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._heartbeat_task: Optional[asyncio.Task] = None
        self._restart_tasks: set = set()
        self._conn_tasks: set = set()
        self._active_requests = 0
        self._rr = 0
        self.started_at = time.time()
        # Counters (event-loop-owned).
        self.requests: Dict[str, int] = {}
        self.responses: Dict[str, int] = {}
        self.replays = 0
        self.restarts = 0
        self.crashes = 0
        self.stall_kills = 0
        self.quarantined = 0
        self.mutations_routed = 0
        self.mutations_replayed = 0
        #: The authoritative ordered mutation history per live dataset.
        #: Workers are replicas of this log: a fresh worker (restarted
        #: after a crash — version 0 again) replays it in order before
        #: taking traffic, so every healthy replica converges on the
        #: same version.
        self._mutation_logs: Dict[str, List[dict]] = {}
        #: Per-dataset ordering: one mutation fan-out at a time.
        self._mutation_locks: Dict[str, asyncio.Lock] = {}
        #: Front-side trace sink (workers write their own `.w<k>` logs).
        self.trace_sink = None if trace_log is None else TraceSink(trace_log)
        metrics = obs_metrics.registry()
        self._m_requests = metrics.counter(
            "repro_http_requests_total",
            "HTTP requests received, by endpoint.",
            ("endpoint",),
        )
        self._m_responses = metrics.counter(
            "repro_http_responses_total",
            "HTTP responses written, by status code.",
            ("status",),
        )
        self._m_replays = metrics.counter(
            "repro_request_replays_total",
            "Requests replayed onto another worker after a transport failure.",
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn every worker (concurrently), then open the front socket."""
        loop = asyncio.get_running_loop()

        def _spawn(slot: _WorkerSlot) -> WorkerProcess:
            return WorkerProcess(slot.id, slot.config).start(
                timeout_s=self.worker_start_timeout_s
            )

        spawns = [loop.run_in_executor(None, _spawn, slot) for slot in self.slots]
        results = await asyncio.gather(*spawns, return_exceptions=True)
        failures = [r for r in results if isinstance(r, BaseException)]
        if failures:
            for result in results:
                if isinstance(result, WorkerProcess):
                    result.kill()
            raise failures[0]
        for slot, process in zip(self.slots, results):
            slot.process = process
            slot.state = "healthy"
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._heartbeat_task = asyncio.ensure_future(self._heartbeat_loop())

    async def stop(self, drain_s: float = 5.0) -> None:
        """Close the front, drain in-flight requests, stop every worker."""
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            await asyncio.gather(self._heartbeat_task, return_exceptions=True)
            self._heartbeat_task = None
        for task in list(self._restart_tasks):
            task.cancel()
        if self._restart_tasks:
            await asyncio.gather(*list(self._restart_tasks), return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if drain_s > 0 and self._active_requests > 0:
            deadline = time.monotonic() + drain_s
            while self._active_requests > 0 and time.monotonic() < deadline:
                await asyncio.sleep(0.02)
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks), return_exceptions=True)
        for slot in self.slots:
            self._close_pool(slot)
            slot.state = "stopped"
            if slot.process is not None:
                slot.process.terminate()
        loop = asyncio.get_running_loop()

        def _reap() -> None:
            deadline = time.monotonic() + 10.0
            for slot in self.slots:
                if slot.process is None:
                    continue
                left = max(0.1, deadline - time.monotonic())
                if slot.process.wait(timeout=left) is None:
                    slot.process.kill()
                    slot.process.wait(timeout=5.0)

        await loop.run_in_executor(None, _reap)
        if self.trace_sink is not None:
            self.trace_sink.close()

    # ------------------------------------------------------------------
    # Connection handling (mirrors DiscServer's loop)
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                parsed = await read_http_request(reader)
                if parsed is None:
                    break
                method, path, keep_alive, body, headers = parsed
                self._active_requests += 1
                try:
                    with obs_trace.request_scope(
                        "request", header=headers.get("x-repro-trace")
                    ) as root:
                        status, payload = await self._route(method, path, body)
                    key = str(status)
                    self.responses[key] = self.responses.get(key, 0) + 1
                    self._m_responses.inc(status=status)
                    await write_http_response(
                        writer,
                        status,
                        payload,
                        keep_alive,
                        extra_headers=[
                            (
                                obs_trace.TRACE_HEADER,
                                obs_trace.format_trace_header(root),
                            )
                        ],
                    )
                    self._emit_trace(root, status, method, path)
                finally:
                    self._active_requests -= 1
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            asyncio.LimitOverrunError,
        ):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _route(self, method: str, path: str, body) -> Tuple[int, dict]:
        if path == "\x00too-large":
            return 413, error_body("payload_too_large", "request body too large")
        if path == "\x00bad-length":
            return 400, error_body("bad_request", "invalid Content-Length header")
        if isinstance(body, dict) and body.get("\x00invalid-json"):
            return 400, error_body("bad_request", "request body is not valid JSON")
        endpoint = f"{method} {path}"
        self.requests[endpoint] = self.requests.get(endpoint, 0) + 1
        self._m_requests.inc(endpoint=endpoint[:48])
        if method == "GET":
            if path == "/healthz":
                return 200, self._healthz()
            if path == "/stats":
                return 200, await self._rollup()
            if path == "/metrics":
                return 200, {"\x00text": await self._metrics_text()}
            if path == "/datasets":
                return await self._forward_get(path)
            if path in ("/select", "/zoom", "/mutate"):
                return 405, error_body("method_not_allowed", f"{path} requires POST")
            return 404, error_body("not_found", f"unknown path {path!r}")
        if method == "POST":
            if path in ("/select", "/zoom"):
                return await self._compute(path, body)
            if path == "/mutate":
                return await self._mutate_fanout(body)
            if path in ("/healthz", "/stats", "/datasets", "/metrics"):
                return 405, error_body("method_not_allowed", f"{path} requires GET")
            return 404, error_body("not_found", f"unknown path {path!r}")
        return 405, error_body("method_not_allowed", f"unsupported method {method}")

    def _healthz(self) -> dict:
        states: Dict[str, int] = {}
        for slot in self.slots:
            states[slot.state] = states.get(slot.state, 0) + 1
        healthy = states.get("healthy", 0)
        return {
            "status": "ok" if healthy else "starting",
            "role": "supervisor",
            "workers": states,
            "datasets": self._dataset_names,
            "inflight": sum(slot.inflight for slot in self.slots),
            "uptime_s": round(time.time() - self.started_at, 3),
        }

    def _emit_trace(self, root, status: int, method: str, path: str) -> None:
        """Write the front's record for one finished request (runs on
        the event loop; the sink itself is thread-safe)."""
        if self.trace_sink is None:
            return
        self.trace_sink.emit(
            build_record(
                root, status=status, method=method, path=path,
                worker={"role": "front"},
            )
        )

    async def _metrics_text(self) -> str:
        """The cluster-wide Prometheus exposition: the front's own
        registry merged with every healthy worker's snapshot (carried
        inside each worker's ``/stats`` payload)."""
        snaps = [obs_metrics.registry().snapshot()]
        for slot in self.slots:
            if slot.state != "healthy":
                continue
            try:
                status, payload = await self._proxy(slot, "GET", "/stats", b"")
            except _TRANSPORT_ERRORS:
                continue
            if status == 200 and isinstance(payload, dict):
                snap = payload.get("metrics")
                if isinstance(snap, dict):
                    snaps.append(snap)
        return obs_metrics.render_snapshot(obs_metrics.merge_snapshots(snaps))

    # ------------------------------------------------------------------
    # Routing + failover
    # ------------------------------------------------------------------
    def _candidates(self, dataset: Optional[str]) -> List[_WorkerSlot]:
        healthy = [slot for slot in self.slots if slot.state == "healthy"]
        if dataset is None or dataset not in self._dataset_names:
            # Unknown dataset: any worker can answer (with a 404).
            return healthy
        return [slot for slot in healthy if dataset in slot.datasets]

    def _pick(self, dataset: Optional[str]) -> Optional[_WorkerSlot]:
        """Least-loaded healthy replica, round-robin tie-break (runs on
        the event loop, from ``_compute``)."""
        candidates = self._candidates(dataset)
        if not candidates:
            return None
        self._rr += 1
        offset = self._rr % len(candidates)
        return min(
            candidates,
            key=lambda slot: (
                slot.inflight,
                (candidates.index(slot) - offset) % len(candidates),
            ),
        )

    def _replica_pending(self, dataset: Optional[str]) -> bool:
        for slot in self.slots:
            if slot.state not in ("starting", "restarting"):
                continue
            if (
                dataset is None
                or dataset not in self._dataset_names
                or dataset in slot.datasets
            ):
                return True
        return False

    async def _compute(self, path: str, body) -> Tuple[int, dict]:
        body = dict(body or {})
        dataset = body.get("dataset")
        if dataset is None and isinstance(body.get("request"), dict):
            dataset = body["request"].get("dataset")
        if not isinstance(dataset, str):
            dataset = None
        # The front owns the idempotency key: a replayed request carries
        # the same key to whichever worker it lands on, so a worker that
        # partially-or-fully answered it once can never double-compute.
        if not body.get("idempotency_key"):
            body["idempotency_key"] = uuid.uuid4().hex
        raw = _json_bytes(body)
        replays = 0
        no_worker_deadline = time.monotonic() + NO_WORKER_WAIT_S
        while True:
            slot = self._pick(dataset)
            if slot is None:
                if (
                    self._replica_pending(dataset)
                    and time.monotonic() < no_worker_deadline
                ):
                    await asyncio.sleep(0.05)
                    continue
                return 503, error_body(
                    "no_workers",
                    f"no healthy worker for dataset {dataset!r}; retry shortly",
                )
            slot.inflight += 1
            try:
                with obs_trace.phase(
                    "proxy", worker=slot.id, attempt=replays + 1
                ):
                    status, payload = await self._proxy(slot, "POST", path, raw)
            except _TRANSPORT_ERRORS:
                # The worker died (or its socket did) with our request
                # in flight.  If the process is already a corpse, start
                # its restart now instead of waiting a heartbeat —
                # otherwise concurrent requests keep re-picking the dead
                # slot and burn through their replay budget.  The socket
                # can drop a few ms before the child is reapable, so
                # give waitpid a short grace window before concluding
                # the process is actually still alive.
                generation = slot.generation
                for _ in range(5):
                    if slot.state != "healthy" or slot.generation != generation:
                        break  # the heartbeat already handled the death
                    process = slot.process
                    if process is not None and process.poll() is not None:
                        self._on_crash(slot, "exit")
                        break
                    await asyncio.sleep(0.02)
                self.replays += 1
                self._m_replays.inc()
                replays += 1
                obs_trace.annotate_root(replayed=True, replays=replays)
                if replays > self.max_replays:
                    return 503, error_body(
                        "replay_exhausted",
                        f"request failed over {replays} times; giving up",
                    )
                continue
            finally:
                slot.inflight -= 1
            return status, payload

    async def _mutate_fanout(self, body) -> Tuple[int, dict]:
        """Apply one mutation batch to *every* healthy replica.

        Reads route to any one replica, so a write must reach them all
        — under a per-dataset lock so concurrent batches apply in one
        order everywhere.  A replica that dies mid-batch is not retried
        here: its restart replays the front's authoritative mutation
        log from scratch (a fresh worker is back at version 0 anyway),
        which is what makes ``kill -9`` mid-stream lose nothing.  The
        batch is durable once >= 1 replica applied it; zero successes
        → 503 and the batch is *not* logged (the client retries).
        """
        body = dict(body or {})
        dataset = body.get("dataset")
        if not isinstance(dataset, str):
            return 400, error_body(
                "bad_request", "mutate body needs a 'dataset' name"
            )
        if not body.get("idempotency_key"):
            body["idempotency_key"] = uuid.uuid4().hex
        # Wait for a replica BEFORE taking the dataset lock: a
        # restarting replica's log replay needs that lock, so waiting
        # while holding it would deadlock the very recovery we wait on.
        deadline = time.monotonic() + NO_WORKER_WAIT_S
        while not self._candidates(dataset):
            if (
                not self._replica_pending(dataset)
                or time.monotonic() >= deadline
            ):
                return 503, error_body(
                    "no_workers",
                    f"no healthy worker for dataset {dataset!r}; retry shortly",
                )
            await asyncio.sleep(0.05)
        lock = self._mutation_locks.setdefault(dataset, asyncio.Lock())
        async with lock:
            raw = _json_bytes(body)
            successes: List[dict] = []
            first_error: Optional[Tuple[int, dict]] = None
            for slot in self._candidates(dataset):
                if slot.state != "healthy":
                    continue
                slot.inflight += 1
                try:
                    status, payload = await self._proxy(slot, "POST", "/mutate", raw)
                except _TRANSPORT_ERRORS:
                    # Same corpse detection as _compute — but no
                    # failover replay: the restart's log replay is the
                    # delivery path for this replica.
                    generation = slot.generation
                    for _ in range(5):
                        if slot.state != "healthy" or slot.generation != generation:
                            break
                        process = slot.process
                        if process is not None and process.poll() is not None:
                            self._on_crash(slot, "exit")
                            break
                        await asyncio.sleep(0.02)
                    continue
                finally:
                    slot.inflight -= 1
                if status == 200:
                    successes.append(payload)
                elif first_error is None:
                    first_error = (status, payload)
            if not successes:
                if first_error is not None:
                    return first_error
                return 503, error_body(
                    "no_workers",
                    f"no replica applied the mutation for {dataset!r}; retry",
                )
            log_entry = {
                key: value
                for key, value in body.items()
                # Replays need the state transition, not the read-side
                # extras (repair re-runs would be wasted work) or a
                # stale deadline.
                if key not in ("repair", "timeout_ms")
            }
            self._mutation_logs.setdefault(dataset, []).append(log_entry)
            self.mutations_routed += 1
            response = dict(successes[0])
            response["replicas_applied"] = len(successes)
            return 200, response

    async def _forward_get(self, path: str) -> Tuple[int, dict]:
        slot = self._pick(None)
        if slot is None:
            return 503, error_body("no_workers", "no healthy worker")
        try:
            return await self._proxy(slot, "GET", path, b"")
        except _TRANSPORT_ERRORS:
            return 503, error_body("no_workers", "worker connection lost")

    # ------------------------------------------------------------------
    # Worker connections
    # ------------------------------------------------------------------
    async def _checkout(self, slot: _WorkerSlot):
        while slot.pool:
            reader, writer = slot.pool.pop()
            if writer.is_closing():
                continue
            return reader, writer
        if slot.process is None or slot.process.port is None:
            raise ConnectionResetError("worker has no bound port")
        return await asyncio.open_connection(self.host, slot.process.port)

    async def _proxy(
        self, slot: _WorkerSlot, method: str, path: str, raw: bytes
    ) -> Tuple[int, dict]:
        generation = slot.generation
        reader, writer = await self._checkout(slot)
        try:
            # Propagate the ambient trace to the worker: rebuilt on
            # every attempt, so a replayed request carries the same
            # trace id to whichever replica answers it.  Heartbeat
            # probes and rollups run outside any request scope and add
            # no header.
            span = obs_trace.current_span()
            trace_line = (
                ""
                if span is None
                else f"{obs_trace.TRACE_HEADER}: "
                f"{obs_trace.format_trace_header(span)}\r\n"
            )
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(raw)}\r\n"
                f"{trace_line}"
                "Connection: keep-alive\r\n"
                "\r\n"
            ).encode("latin-1")
            writer.write(head + raw)
            await writer.drain()
            status, payload, keep_alive = await _read_http_response(reader)
        except BaseException:
            writer.close()
            raise
        if (
            keep_alive
            and slot.generation == generation
            and slot.state == "healthy"
        ):
            slot.pool.append((reader, writer))
        else:
            writer.close()
        return status, payload

    def _close_pool(self, slot: _WorkerSlot) -> None:
        while slot.pool:
            _reader, writer = slot.pool.pop()
            writer.close()

    # ------------------------------------------------------------------
    # Heartbeat + restarts
    # ------------------------------------------------------------------
    async def _probe(self, slot: _WorkerSlot) -> bool:
        port = None if slot.process is None else slot.process.port
        if port is None:
            return False
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, port), self.probe_timeout_s
        )
        try:
            writer.write(
                b"GET /healthz HTTP/1.1\r\nHost: hb\r\nConnection: close\r\n\r\n"
            )
            await writer.drain()
            status, _payload, _keep = await asyncio.wait_for(
                _read_http_response(reader), self.probe_timeout_s
            )
            return status == 200
        finally:
            writer.close()

    async def _heartbeat_loop(self) -> None:
        try:
            while True:
                await asyncio.sleep(self.heartbeat_s)
                for slot in self.slots:
                    if slot.state != "healthy":
                        continue
                    process = slot.process
                    if process is None or process.poll() is not None:
                        self._on_crash(slot, "exit")
                        continue
                    try:
                        ok = await self._probe(slot)
                    except (asyncio.TimeoutError, *_TRANSPORT_ERRORS):
                        ok = False
                    if ok:
                        slot.consecutive_probe_failures = 0
                    else:
                        slot.consecutive_probe_failures += 1
                        if slot.consecutive_probe_failures >= self.stall_probes:
                            # Wedged event loop (hard stall): the only
                            # way out is SIGKILL + restart; the corpse's
                            # sockets die, freeing any in-flight request
                            # to fail over.
                            self.stall_kills += 1
                            process.kill()
                            self._on_crash(slot, "stall")
        except asyncio.CancelledError:
            pass

    def _on_crash(self, slot: _WorkerSlot, reason: str) -> None:
        """Mark a dead worker and schedule its restart (runs on the
        event loop: heartbeat, request failover, or restart callback)."""
        slot.state = "restarting"
        slot.generation += 1
        slot.consecutive_probe_failures = 0
        slot.crashes += 1
        self.crashes += 1
        self._close_pool(slot)
        now = time.monotonic()
        slot.crash_times.append(now)
        while slot.crash_times and slot.crash_times[0] < now - self.crash_window_s:
            slot.crash_times.popleft()
        if len(slot.crash_times) >= self.quarantine_after:
            # Crash loop: stop burning restarts; the datasets this slot
            # served fail over to the surviving replicas.
            slot.state = "quarantined"
            self.quarantined += 1
            return
        backoff = min(
            self.backoff_cap_s,
            self.backoff_base_s * (2 ** (len(slot.crash_times) - 1)),
        )
        task = asyncio.ensure_future(self._restart(slot, backoff))
        self._restart_tasks.add(task)
        task.add_done_callback(self._restart_tasks.discard)

    async def _restart(self, slot: _WorkerSlot, backoff_s: float) -> None:
        await asyncio.sleep(backoff_s)
        if slot.state != "restarting":
            return
        loop = asyncio.get_running_loop()

        def _spawn() -> WorkerProcess:
            return WorkerProcess(slot.id, slot.config).start(
                timeout_s=self.worker_start_timeout_s
            )

        try:
            process = await loop.run_in_executor(None, _spawn)
        except asyncio.CancelledError:
            raise
        except Exception:
            # Startup itself failed — counts as another crash, so the
            # backoff keeps growing and the loop breaker still trips.
            if slot.state == "restarting":
                self._on_crash(slot, "restart-failed")
            return
        if slot.state != "restarting":
            process.kill()
            return
        slot.process = process
        try:
            await self._replay_mutations(slot)
        except asyncio.CancelledError:
            raise
        except Exception:
            # The fresh worker could not absorb the mutation history —
            # treat it like any other startup failure.
            process.kill()
            if slot.state == "restarting":
                self._on_crash(slot, "replay-failed")
            return
        slot.restarts += 1
        self.restarts += 1

    async def _replay_mutations(self, slot: _WorkerSlot) -> None:
        """Bring a fresh worker up to date, then mark it healthy.

        A restarted worker is back at version 0 of every live dataset
        it serves; the front's per-dataset logs are replayed in order
        over its private connection.  The dataset locks are held across
        the replay *and* the healthy flip, so no fan-out can slip a new
        batch in between (which this replica would miss) — new
        mutations queue behind the replay and then see the slot
        healthy.  Locks are acquired in sorted dataset order; the
        fan-out path holds at most one at a time, so the ordering
        cannot deadlock.
        """
        datasets = sorted(slot.datasets)
        acquired: List[asyncio.Lock] = []
        try:
            for name in datasets:
                lock = self._mutation_locks.setdefault(name, asyncio.Lock())
                await lock.acquire()
                acquired.append(lock)
            for name in datasets:
                for entry in self._mutation_logs.get(name, []):
                    status, payload = await self._proxy(
                        slot, "POST", "/mutate", _json_bytes(entry)
                    )
                    if status != 200:
                        raise RuntimeError(
                            f"mutation replay for {name!r} answered {status}: "
                            f"{payload}"
                        )
                    self.mutations_replayed += 1
            slot.state = "healthy"
        finally:
            for lock in acquired:
                lock.release()

    # ------------------------------------------------------------------
    # Stats rollup
    # ------------------------------------------------------------------
    async def _rollup(self) -> dict:
        workers = []
        totals = {
            "computations": 0,
            "coalesced_requests": 0,
            "degraded_responses": 0,
            "builds": 0,
            "shm_hits": 0,
            "shm_stores": 0,
            "migrations": 0,
            "stale_served": 0,
            "corrupt_entries": 0,
            "inflight": 0,
            "queue_depth": 0,
        }
        for slot in self.slots:
            entry = slot.describe()
            entry["stats"] = None
            if slot.state == "healthy":
                try:
                    status, payload = await self._proxy(slot, "GET", "/stats", b"")
                except _TRANSPORT_ERRORS:
                    status, payload = None, None
                if status == 200 and isinstance(payload, dict):
                    entry["stats"] = payload
                    totals["computations"] += payload.get("computations", 0) or 0
                    totals["coalesced_requests"] += (
                        payload.get("coalesced_requests", 0) or 0
                    )
                    totals["degraded_responses"] += (
                        payload.get("degraded_responses", 0) or 0
                    )
                    totals["inflight"] += payload.get("inflight", 0) or 0
                    totals["queue_depth"] += payload.get("queue_depth", 0) or 0
                    cache = payload.get("cache") or {}
                    totals["builds"] += cache.get("builds", 0) or 0
                    totals["shm_hits"] += cache.get("shm_hits", 0) or 0
                    totals["shm_stores"] += cache.get("shm_stores", 0) or 0
                    totals["migrations"] += cache.get("migrations", 0) or 0
                    totals["stale_served"] += cache.get("stale_served", 0) or 0
                    totals["corrupt_entries"] += (
                        cache.get("corrupt_entries", 0) or 0
                    )
            workers.append(entry)
        totals["inflight_front"] = sum(slot.inflight for slot in self.slots)
        return {
            "role": "supervisor",
            "uptime_s": round(time.time() - self.started_at, 3),
            "run_id": self.run_id,
            "requests": dict(self.requests),
            "responses": dict(self.responses),
            "supervisor": {
                "replays": self.replays,
                "restarts": self.restarts,
                "crashes": self.crashes,
                "stall_kills": self.stall_kills,
                "quarantined": self.quarantined,
                "mutations_routed": self.mutations_routed,
                "mutations_replayed": self.mutations_replayed,
                "mutation_log": {
                    name: len(entries)
                    for name, entries in self._mutation_logs.items()
                },
                "heartbeat_s": self.heartbeat_s,
                "workers": len(self.slots),
            },
            "totals": totals,
            "workers": workers,
        }


# ----------------------------------------------------------------------
# Sync facade
# ----------------------------------------------------------------------
class SupervisorCluster:
    """A supervised cluster running on a background event-loop thread.

    The synchronous handle the CLI, tests, and the load harness drive:
    ``host``/``port`` for clients, :meth:`kill_worker` /
    :meth:`worker_pids` for chaos, :meth:`stop` for teardown (returns
    the segment names its shutdown sweep had to remove — ``[]`` on a
    clean run *and* after worker ``kill -9``, because segments belong
    to the run, not to any worker).
    """

    def __init__(self, supervisor: Supervisor, loop, thread, store) -> None:
        self.supervisor = supervisor
        self._loop = loop
        self._thread = thread
        self.store = store

    @property
    def host(self) -> str:
        return self.supervisor.host

    @property
    def port(self) -> int:
        return self.supervisor.port

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def run_id(self) -> Optional[str]:
        return self.supervisor.run_id

    def worker_pids(self) -> List[Optional[int]]:
        return [
            None if slot.process is None else slot.process.pid
            for slot in self.supervisor.slots
        ]

    def kill_worker(self, index: int, sig: int = signal.SIGKILL) -> int:
        """Deliver ``sig`` to worker ``index`` (chaos hook); returns pid."""
        slot = self.supervisor.slots[index]
        if slot.process is None or slot.process.pid is None:
            raise RuntimeError(f"worker {index} has no live process")
        pid = slot.process.pid
        os.kill(pid, sig)
        return pid

    def stop(self, drain_s: float = 5.0) -> List[str]:
        """Stop front + workers, sweep the run's segments.

        Returns segment names that were still linked when the store
        closed — after the run's own lease-held segments are accounted
        for, a non-empty tail in ``/dev/shm`` would be a leak; the
        chaos tests assert :func:`repro.service.shm.sweep_orphans`
        (and a direct listing) find nothing afterwards.
        """
        if self._thread is None:
            return []
        asyncio.run_coroutine_threadsafe(
            self.supervisor.stop(drain_s), self._loop
        ).result(timeout=120)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        self._loop.close()
        self._thread = None
        removed: List[str] = []
        if self.store is not None:
            removed = self.store.close(sweep=True)
            self.store = None
        return removed

    def __enter__(self) -> "SupervisorCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def build_worker_configs(
    datasets: Sequence[str],
    workers: int,
    *,
    n: Optional[int] = None,
    seed: int = 42,
    engine: str = "auto",
    engine_options: Optional[dict] = None,
    threads: int = 4,
    max_inflight: Optional[int] = 64,
    cache: bool = True,
    cache_entries: int = 64,
    cache_mb: Optional[float] = None,
    ttl_s: Optional[float] = None,
    coalesce: bool = True,
    default_timeout_ms: Optional[float] = None,
    max_timeout_ms: Optional[float] = None,
    faults=None,
    run_id: Optional[str] = None,
    replication: Optional[int] = None,
    host: str = "127.0.0.1",
    live: bool = False,
    drain_s: float = 5.0,
    trace_log: Optional[str] = None,
) -> List[dict]:
    """One config dict per worker slot, with the dataset assignment.

    ``replication=None`` replicates every dataset onto every worker
    (the hot-dataset default — any worker can serve any request, so
    failover never strands a dataset).  ``replication=k`` shards:
    dataset ``i`` lands on workers ``(i+j) % workers`` for ``j < k``.

    ``faults`` is either one fault-config dict applied to every worker
    or a list of ``workers`` per-worker dicts (``None`` entries allowed)
    — chaos tests arm a single worker and watch its requests fail over
    to the clean replicas.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    names = list(datasets)
    if not names:
        raise ValueError("at least one dataset is required")
    if replication is not None and not 1 <= replication <= workers:
        raise ValueError(
            f"replication must be in [1, {workers}], got {replication}"
        )
    if isinstance(faults, (list, tuple)):
        if len(faults) != workers:
            raise ValueError(
                f"per-worker faults list must have {workers} entries, "
                f"got {len(faults)}"
            )
        per_worker_faults = list(faults)
    else:
        per_worker_faults = [faults] * workers
    assigned: List[List[str]] = [[] for _ in range(workers)]
    if replication is None:
        for worker_datasets in assigned:
            worker_datasets.extend(names)
    else:
        for i, name in enumerate(names):
            for j in range(replication):
                assigned[(i + j) % workers].append(name)
    configs = []
    for worker_id in range(workers):
        configs.append(
            {
                "worker_id": worker_id,
                "host": host,
                "datasets": assigned[worker_id],
                "n": n,
                "seed": seed,
                "engine": engine,
                "engine_options": dict(engine_options or {}),
                "threads": threads,
                "max_inflight": max_inflight,
                "cache": cache,
                "cache_entries": cache_entries,
                "cache_mb": cache_mb,
                "ttl_s": ttl_s,
                "coalesce": coalesce,
                "default_timeout_ms": default_timeout_ms,
                "max_timeout_ms": max_timeout_ms,
                "faults": (
                    dict(per_worker_faults[worker_id])
                    if per_worker_faults[worker_id]
                    else None
                ),
                "run_id": run_id,
                "live": live,
                "drain_s": drain_s,
                # Workers write sibling logs next to the front's (one
                # writer per file; no cross-process interleaving).
                "trace_log": (
                    None if trace_log is None else f"{trace_log}.w{worker_id}"
                ),
            }
        )
    return configs


def start_supervised(
    datasets: Sequence[str] = ("uniform",),
    workers: int = 2,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    use_shm: bool = True,
    replication: Optional[int] = None,
    heartbeat_s: float = DEFAULT_HEARTBEAT_S,
    probe_timeout_s: float = DEFAULT_PROBE_TIMEOUT_S,
    stall_probes: int = DEFAULT_STALL_PROBES,
    quarantine_after: int = DEFAULT_QUARANTINE_AFTER,
    crash_window_s: float = DEFAULT_CRASH_WINDOW_S,
    max_replays: int = DEFAULT_MAX_REPLAYS,
    worker_start_timeout_s: float = WORKER_START_TIMEOUT_S,
    trace_log: Optional[str] = None,
    **worker_options,
) -> SupervisorCluster:
    """Start a supervised cluster on a background thread (sync entry).

    ``worker_options`` are forwarded to :func:`build_worker_configs`
    (``n``, ``seed``, ``engine``, ``threads``, ``cache_entries``,
    ``ttl_s``, ``faults`` = a fault-config dict applied to every
    worker, ...).  Startup sweeps shm orphans from previous unclean
    shutdowns; teardown (:meth:`SupervisorCluster.stop`) sweeps this
    run's segments.
    """
    store = None
    run_id = None
    if use_shm and shm_mod.shm_available():
        shm_mod.sweep_orphans()
        run_id = shm_mod.new_run_id()
        store = shm_mod.SharedSegmentStore(run_id, hold_lease=True)
    configs = build_worker_configs(
        datasets, workers, run_id=run_id, host=host, trace_log=trace_log,
        **worker_options
    )
    supervisor = Supervisor(
        configs,
        host=host,
        port=port,
        run_id=run_id,
        trace_log=trace_log,
        heartbeat_s=heartbeat_s,
        probe_timeout_s=probe_timeout_s,
        stall_probes=stall_probes,
        quarantine_after=quarantine_after,
        crash_window_s=crash_window_s,
        max_replays=max_replays,
        worker_start_timeout_s=worker_start_timeout_s,
    )
    loop = asyncio.new_event_loop()
    started = threading.Event()
    start_error: List[BaseException] = []

    def _run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(supervisor.start())
        except BaseException as exc:  # startup failed; surface it
            start_error.append(exc)
            started.set()
            return
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=_run, name="disc-supervisor-loop", daemon=True)
    thread.start()
    if not started.wait(timeout=worker_start_timeout_s + 30):
        raise RuntimeError("supervisor event loop failed to start")
    if start_error:
        loop.close()
        if store is not None:
            store.close(sweep=True)
        raise start_error[0]
    return SupervisorCluster(supervisor, loop, thread, store)

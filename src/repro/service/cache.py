"""Process-wide shared adjacency cache for the serving layer.

The per-session :class:`~repro.engines.cache.AdjacencyCache` answers
"this user zoomed back to a radius they already looked at".  A server
answers a stronger question: *some other user* already looked at this
radius on this dataset — the adjacency they paid for should serve
everyone.  :class:`SharedCacheManager` is that evolution: one
process-wide, thread-safe store keyed by

    ``(dataset_id, metric_name, radius_bucket)``

deliberately **engine-agnostic**: the fixed-radius neighborhood
``N_r`` is a property of (points, metric, radius), not of the index
that materialised it, and the engine parity suites pin selections to
be byte-identical across the CSR/blocked producers — so a grid-built
adjacency can serve a KD-tree session.  Radii are bucketed to 12
significant digits (:func:`radius_bucket`) so a radius that round-trips
through JSON, or is recomputed as ``base * multiplier`` with different
association, still lands on the same entry.

Sessions and serving indexes attach through :class:`SharedCacheView`,
an :class:`~repro.engines.cache.AdjacencyCache`-compatible adapter that
namespaces one ``(dataset, metric)`` pair — so
:meth:`repro.index.base.NeighborIndex.set_adjacency_cache` and every
``csr_neighborhood`` call path work unchanged.

Build coalescing
----------------
A cache miss makes the caller build the adjacency and ``put`` it back.
With N concurrent sessions that is N identical builds.  The manager
single-flights them: the first missing thread becomes the *builder*;
later threads block (up to ``build_wait_s``) on the builder's event and
receive the finished adjacency as a hit (counted in
``coalesced_builds``).  If a builder dies without ``put`` (e.g. its
engine cannot materialise CSR), waiters time out and build themselves —
a liveness fallback, not the expected path.

Budgets and TTL
---------------
Eviction is LRU over an entry budget and a byte budget (entry sizes
from the ``nbytes`` hook, same as the session cache); the most recently
inserted entry is never evicted.  ``ttl_s`` ages entries out so a
long-lived server eventually drops radii nobody asks for anymore;
expiry is checked on access (counted in ``expirations``).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.engines.cache import AdjacencyCache

__all__ = ["SharedCacheManager", "SharedCacheView", "radius_bucket"]

#: Composite cache key: (dataset_id, metric_name, radius_bucket).
CacheKey = Tuple[str, str, float]


def radius_bucket(radius: float) -> float:
    """Quantise a radius to 12 significant digits.

    Wire round-trips and float re-association (``0.1 * 3`` vs ``0.3``)
    perturb the last couple of ULPs; 12 significant digits absorbs that
    while keeping genuinely different radii — anything a user could
    tell apart — in distinct buckets.
    """
    return float(f"{float(radius):.12g}")


def _entry_bytes(value) -> int:
    return int(getattr(value, "nbytes", 0))


@dataclass
class _Entry:
    value: object
    expires_at: Optional[float]  # time.monotonic() deadline, None = never

    def expired(self, now: float) -> bool:
        return self.expires_at is not None and now >= self.expires_at


class _PendingBuild:
    """One in-flight adjacency build (the single-flight token)."""

    __slots__ = ("owner", "event")

    def __init__(self, owner: int) -> None:
        self.owner = owner
        self.event = threading.Event()


class SharedCacheManager:
    """Thread-safe, budgeted, TTL'd adjacency store shared by sessions.

    Parameters
    ----------
    max_entries:
        LRU entry budget across all datasets (None = unbounded).
    max_bytes:
        Byte budget across all datasets (None = unbounded); entry sizes
        come from each adjacency's ``nbytes``.
    ttl_s:
        Seconds an entry stays valid after insertion (None = forever).
    build_wait_s:
        How long a missing thread waits for a concurrent builder of the
        same key before giving up and building itself.
    """

    def __init__(
        self,
        max_entries: Optional[int] = 64,
        max_bytes: Optional[int] = None,
        ttl_s: Optional[float] = None,
        build_wait_s: float = 60.0,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError(f"ttl_s must be > 0, got {ttl_s}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.ttl_s = ttl_s
        self.build_wait_s = build_wait_s
        self._lock = threading.RLock()
        self._entries: "OrderedDict[CacheKey, _Entry]" = OrderedDict()
        self._pending: Dict[CacheKey, _PendingBuild] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.builds = 0
        self.coalesced_builds = 0

    # ------------------------------------------------------------------
    def view(self, dataset_id: str, metric) -> "SharedCacheView":
        """An adapter scoping this manager to one (dataset, metric)."""
        return SharedCacheView(self, dataset_id, metric)

    # ------------------------------------------------------------------
    def get(self, key: CacheKey):
        """The cached adjacency, or None — in which case the caller owns
        the build and must :meth:`put` (or :meth:`abandon`) the key.

        If another thread is already building this key, blocks up to
        ``build_wait_s`` for its result instead of duplicating the
        build.
        """
        deadline = time.monotonic() + self.build_wait_s
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    if entry.expired(time.monotonic()):
                        del self._entries[key]
                        self.expirations += 1
                    else:
                        self._entries.move_to_end(key)
                        self.hits += 1
                        return entry.value
                pending = self._pending.get(key)
                if pending is None:
                    self._pending[key] = _PendingBuild(threading.get_ident())
                    self.misses += 1
                    return None
                if pending.owner == threading.get_ident():
                    # Re-entrant miss (builder probing again): keep
                    # ownership, let it proceed with its build.
                    self.misses += 1
                    return None
                event = pending.event
            # Someone else is building: wait outside the lock.
            if not event.wait(timeout=max(0.0, deadline - time.monotonic())):
                # Builder stalled or abandoned without notice — take
                # over ownership rather than deadlocking.
                with self._lock:
                    if self._pending.get(key) is pending:
                        self._pending[key] = _PendingBuild(threading.get_ident())
                        self.misses += 1
                        return None
                continue  # ownership changed hands; re-evaluate
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None and not entry.expired(time.monotonic()):
                    self._entries.move_to_end(key)
                    self.hits += 1
                    self.coalesced_builds += 1
                    return entry.value
            # Built value already evicted/expired (tiny budget): build.
            with self._lock:
                if key not in self._pending:
                    self._pending[key] = _PendingBuild(threading.get_ident())
                    self.misses += 1
                    return None
            # Another thread re-registered first; wait for it in turn.

    def peek(self, key: CacheKey):
        """The cached adjacency or None — no build slot is claimed and
        no waiting happens, so callers must not follow with ``put``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                if entry.expired(time.monotonic()):
                    del self._entries[key]
                    self.expirations += 1
                else:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    return entry.value
            self.misses += 1
            return None

    def put(self, key: CacheKey, value) -> None:
        """Insert a built adjacency; wakes any coalesced waiters."""
        now = time.monotonic()
        expires = None if self.ttl_s is None else now + self.ttl_s
        with self._lock:
            self._entries[key] = _Entry(value, expires)
            self._entries.move_to_end(key)
            self.builds += 1
            pending = self._pending.pop(key, None)
            self._evict()
        if pending is not None:
            pending.event.set()

    def abandon(self, key: CacheKey) -> None:
        """Give up a build slot claimed by a miss (nothing to cache).

        Engines that cannot materialise an adjacency (``_build_csr``
        returning None) never call :meth:`put`; releasing the pending
        token here lets waiters proceed immediately instead of riding
        out ``build_wait_s``.
        """
        with self._lock:
            pending = self._pending.pop(key, None)
        if pending is not None:
            pending.event.set()

    def _evict(self) -> None:
        with self._lock:
            while len(self._entries) > 1 and (
                (
                    self.max_entries is not None
                    and len(self._entries) > self.max_entries
                )
                or (self.max_bytes is not None and self.total_bytes > self.max_bytes)
            ):
                self._entries.popitem(last=False)
                self.evictions += 1

    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        with self._lock:
            return sum(_entry_bytes(e.value) for e in self._entries.values())

    def cache_info(self) -> dict:
        """Counters + per-key footprint (plain JSON-serialisable dict)."""
        with self._lock:
            now = time.monotonic()
            return {
                "entries": len(self._entries),
                "keys": [
                    {
                        "dataset": dataset,
                        "metric": metric,
                        "radius": bucket,
                        "bytes": _entry_bytes(entry.value),
                        "ttl_remaining_s": (
                            None
                            if entry.expires_at is None
                            else round(max(0.0, entry.expires_at - now), 3)
                        ),
                    }
                    for (dataset, metric, bucket), entry in self._entries.items()
                ],
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "expirations": self.expirations,
                "builds": self.builds,
                "coalesced_builds": self.coalesced_builds,
                "bytes": self.total_bytes,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "ttl_s": self.ttl_s,
            }

    info = cache_info

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            pending = list(self._pending.values())
            self._pending.clear()
        for build in pending:
            build.event.set()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"SharedCacheManager(entries={len(self)}, hits={self.hits}, "
            f"misses={self.misses}, builds={self.builds}, "
            f"coalesced={self.coalesced_builds})"
        )


class SharedCacheView(AdjacencyCache):
    """A per-(dataset, metric) window onto a :class:`SharedCacheManager`.

    Implements the :class:`~repro.engines.cache.AdjacencyCache` protocol
    (``get``/``put``/``adopt``/``info``/``clear`` keyed by radius), so a
    :class:`~repro.index.base.NeighborIndex` — and therefore a
    :class:`~repro.api.DiscSession` — attaches to the shared store with
    ``set_adjacency_cache(manager.view(dataset_id, metric))`` and no
    other change.  The view keeps its own hit/miss counters (what *this*
    session saw) next to the manager-wide ones.
    """

    def __init__(self, manager: SharedCacheManager, dataset_id: str, metric) -> None:
        super().__init__()
        self.manager = manager
        self.dataset_id = str(dataset_id)
        self.metric_name = getattr(metric, "name", str(metric))

    def _key(self, radius: float) -> CacheKey:
        return (self.dataset_id, self.metric_name, radius_bucket(radius))

    # ------------------------------------------------------------------
    def get(self, key: float):
        value = self.manager.get(self._key(key))
        with self._lock:
            if value is None:
                self.misses += 1
            else:
                self.hits += 1
        return value

    def peek(self, key: float):
        value = self.manager.peek(self._key(key))
        with self._lock:
            if value is None:
                self.misses += 1
            else:
                self.hits += 1
        return value

    def put(self, key: float, value) -> None:
        self.manager.put(self._key(key), value)

    def abandon(self, key: float) -> None:
        self.manager.abandon(self._key(key))

    def adopt(self, other: AdjacencyCache) -> None:
        """Carry a session-private cache's entries into the shared store
        (called by ``set_adjacency_cache`` when a view replaces an
        index's default cache)."""
        if isinstance(other, SharedCacheView):
            return  # already shared; nothing private to carry over
        with other._lock:
            items = list(other._entries.items())
        for radius, value in items:
            self.manager.put(self._key(radius), value)

    # ------------------------------------------------------------------
    def info(self) -> dict:
        """This view's counters plus the shared keys it can see."""
        shared = self.manager.cache_info()
        mine = [
            k
            for k in shared["keys"]
            if k["dataset"] == self.dataset_id and k["metric"] == self.metric_name
        ]
        with self._lock:
            return {
                "dataset": self.dataset_id,
                "metric": self.metric_name,
                "entries": len(mine),
                "radii": [k["radius"] for k in mine],
                "hits": self.hits,
                "misses": self.misses,
                "evictions": shared["evictions"],
                "bytes": sum(k["bytes"] for k in mine),
                "max_entries": self.manager.max_entries,
                "max_bytes": self.manager.max_bytes,
                "shared": {
                    key: shared[key]
                    for key in (
                        "entries",
                        "hits",
                        "misses",
                        "builds",
                        "coalesced_builds",
                        "evictions",
                        "expirations",
                        "bytes",
                    )
                },
            }

    cache_info = info

    def clear(self) -> None:
        """Drop this view's keys from the shared store (others stay)."""
        with self.manager._lock:
            doomed = [
                key
                for key in self.manager._entries
                if key[0] == self.dataset_id and key[1] == self.metric_name
            ]
            for key in doomed:
                del self.manager._entries[key]

    def __contains__(self, key) -> bool:
        with self.manager._lock:
            entry = self.manager._entries.get(self._key(key))
            return entry is not None and not entry.expired(time.monotonic())

    def __len__(self) -> int:
        return len(self.info()["radii"])

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"SharedCacheView(dataset={self.dataset_id!r}, "
            f"metric={self.metric_name!r}, hits={self.hits}, "
            f"misses={self.misses})"
        )

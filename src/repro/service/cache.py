"""Process-wide shared adjacency cache for the serving layer.

The per-session :class:`~repro.engines.cache.AdjacencyCache` answers
"this user zoomed back to a radius they already looked at".  A server
answers a stronger question: *some other user* already looked at this
radius on this dataset — the adjacency they paid for should serve
everyone.  :class:`SharedCacheManager` is that evolution: one
process-wide, thread-safe store keyed by

    ``(dataset_id, metric_name, radius_bucket)``

deliberately **engine-agnostic**: the fixed-radius neighborhood
``N_r`` is a property of (points, metric, radius), not of the index
that materialised it, and the engine parity suites pin selections to
be byte-identical across the CSR/blocked producers — so a grid-built
adjacency can serve a KD-tree session.  Radii are bucketed to 12
significant digits (:func:`radius_bucket`) so a radius that round-trips
through JSON, or is recomputed as ``base * multiplier`` with different
association, still lands on the same entry.

Sessions and serving indexes attach through :class:`SharedCacheView`,
an :class:`~repro.engines.cache.AdjacencyCache`-compatible adapter that
namespaces one ``(dataset, metric)`` pair — so
:meth:`repro.index.base.NeighborIndex.set_adjacency_cache` and every
``csr_neighborhood`` call path work unchanged.

Build coalescing
----------------
A cache miss makes the caller build the adjacency and ``put`` it back.
With N concurrent sessions that is N identical builds.  The manager
single-flights them: the first missing thread becomes the *builder*;
later threads block (up to ``build_wait_s``) on the builder's event and
receive the finished adjacency as a hit (counted in
``coalesced_builds``).  A builder that **raises** calls :meth:`fail`
(via ``csr_neighborhood``), which hands the exception to every waiter
promptly as a :class:`~repro.service.resilience.BuildFailed` — waiting
out ``build_wait_s`` for a value that will never arrive is reserved for
a builder that silently dies, the liveness fallback.

Failure containment
-------------------
Repeated build failures trip a per-key
:class:`~repro.service.resilience.CircuitBreaker` (closed → open →
half-open): while open, no build is attempted and callers either get a
**stale** value or :class:`~repro.service.resilience.CircuitOpen`.
TTL-expired entries are not dropped but demoted to the stale tier; a
stale value is served — with the ambient
:class:`~repro.cancellation.CancellationToken` marked degraded — when
the breaker is open, or when the request's remaining deadline is
smaller than the key's recorded build time (a rebuild could not finish
anyway).  Entries carry a type stamp checked on every read (a cheap
integrity check standing in for a checksum); a mismatching entry is
dropped and rebuilt, never served.

Budgets and TTL
---------------
Eviction is LRU over an entry budget and a byte budget (entry sizes
from the ``nbytes`` hook, same as the session cache); the most recently
inserted entry is never evicted.  ``ttl_s`` ages entries into the stale
tier; expiry is checked on access (counted in ``expirations``).  The
stale tier is LRU-bounded by the same entry budget.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.cancellation import OperationCancelled, current_token
from repro.engines.cache import AdjacencyCache
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.service.resilience import BuildFailed, CircuitBreaker, CircuitOpen

__all__ = [
    "LazyMigration",
    "SharedCacheManager",
    "SharedCacheView",
    "radius_bucket",
]

#: Composite cache key: (dataset_id, metric_name, radius_bucket).
CacheKey = Tuple[str, str, float]

#: A rebuild is "too tight" when the remaining deadline is under this
#: multiple of the key's last observed build time.
REBUILD_SAFETY = 1.5


def radius_bucket(radius: float) -> float:
    """Quantise a radius to 12 significant digits.

    Wire round-trips and float re-association (``0.1 * 3`` vs ``0.3``)
    perturb the last couple of ULPs; 12 significant digits absorbs that
    while keeping genuinely different radii — anything a user could
    tell apart — in distinct buckets.
    """
    return float(f"{float(radius):.12g}")


def _entry_bytes(value) -> int:
    return int(getattr(value, "nbytes", 0))


class LazyMigration:
    """A migrated live-dataset bucket awaiting its first read.

    :meth:`SharedCacheManager.migrate_dataset` installs the *recipe* —
    a zero-argument resolver pinned to the just-mutated version's alive
    mask — instead of the compacted CSR, so the mutation hot path pays
    nothing for buckets no request reads between batches (compaction is
    O(nnz); a mutation batch is O(delta)).  The first read materialises
    the CSR outside the cache lock and swaps it into the entry: it
    counts as a hit, never as a build or a miss, because the adjacency
    was carried across versions, not rebuilt.  ``nbytes`` is the
    incremental structure's footprint estimate, keeping the byte budget
    honest until the real CSR replaces it.
    """

    __slots__ = ("resolve", "nbytes")

    def __init__(self, resolve, nbytes: int = 0) -> None:
        self.resolve = resolve
        self.nbytes = int(nbytes)


@dataclass
class _Entry:
    value: object
    expires_at: Optional[float]  # time.monotonic() deadline, None = never
    stamp: str = ""  # type name recorded at put; integrity check on read

    def __post_init__(self) -> None:
        if not self.stamp:
            self.stamp = type(self.value).__name__

    def expired(self, now: float) -> bool:
        return self.expires_at is not None and now >= self.expires_at

    def intact(self) -> bool:
        return type(self.value).__name__ == self.stamp


class _PendingBuild:
    """One in-flight adjacency build (the single-flight token)."""

    __slots__ = ("owner", "event", "error", "claimed_at")

    def __init__(self, owner: int) -> None:
        self.owner = owner
        self.event = threading.Event()
        self.error: Optional[BaseException] = None
        self.claimed_at = time.monotonic()


class SharedCacheManager:
    """Thread-safe, budgeted, TTL'd adjacency store shared by sessions.

    Parameters
    ----------
    max_entries:
        LRU entry budget across all datasets (None = unbounded); also
        bounds the stale tier.
    max_bytes:
        Byte budget across all datasets (None = unbounded); entry sizes
        come from each adjacency's ``nbytes``.
    ttl_s:
        Seconds an entry stays fresh after insertion (None = forever);
        expired entries demote to the stale tier.
    build_wait_s:
        How long a missing thread waits for a concurrent builder of the
        same key before giving up and building itself.
    failure_threshold / breaker_reset_s:
        Per-key circuit breaker: consecutive build failures before the
        circuit opens, and the cooldown before a half-open probe.
    faults:
        Optional :class:`~repro.service.faults.FaultInjector`; hooks
        fire at the miss-claim (build failures / slow builds) and at
        ``put`` (entry corruption).
    backing:
        Optional cross-process tier (:class:`~repro.service.shm.
        ShmCacheBacking`): a local miss first tries to *attach* the
        value from shared memory (counted as ``shm_hits``, never as a
        build) or claims the cluster-wide build slot; ``put`` then
        publishes the built value for other workers.  This is what
        keeps ``builds == unique radii`` across a supervised cluster.
    """

    #: Lock discipline, mechanically enforced by `repro lint` (rule
    #: guarded-attribute; convention documented in repro.engines.cache).
    _GUARDED_BY = {
        "_entries": "self._lock",
        "_stale": "self._lock",
        "_pending": "self._lock",
        "_breakers": "self._lock",
        "_build_seconds": "self._lock",
        "_backing_claims": "self._lock",
        "hits": "self._lock",
        "misses": "self._lock",
        "evictions": "self._lock",
        "expirations": "self._lock",
        "builds": "self._lock",
        "coalesced_builds": "self._lock",
        "build_failures": "self._lock",
        "stale_served": "self._lock",
        "corrupt_entries": "self._lock",
        "shm_hits": "self._lock",
        "shm_stores": "self._lock",
        "migrations": "self._lock",
    }

    def __init__(
        self,
        max_entries: Optional[int] = 64,
        max_bytes: Optional[int] = None,
        ttl_s: Optional[float] = None,
        build_wait_s: float = 60.0,
        *,
        failure_threshold: int = 3,
        breaker_reset_s: float = 30.0,
        faults=None,
        backing=None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError(f"ttl_s must be > 0, got {ttl_s}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.ttl_s = ttl_s
        self.build_wait_s = build_wait_s
        self.failure_threshold = failure_threshold
        self.breaker_reset_s = breaker_reset_s
        self.faults = faults
        self.backing = backing
        self._lock = threading.RLock()
        self._entries: "OrderedDict[CacheKey, _Entry]" = OrderedDict()
        self._stale: "OrderedDict[CacheKey, _Entry]" = OrderedDict()
        self._pending: Dict[CacheKey, _PendingBuild] = {}
        self._breakers: Dict[CacheKey, CircuitBreaker] = {}
        self._build_seconds: Dict[CacheKey, float] = {}
        self._backing_claims: Dict[CacheKey, object] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.builds = 0
        self.coalesced_builds = 0
        self.build_failures = 0
        self.stale_served = 0
        self.corrupt_entries = 0
        self.shm_hits = 0
        self.shm_stores = 0
        self.migrations = 0
        # Prometheus-side mirrors of the counters above.  The metrics
        # lock is a leaf (nothing is acquired while it is held), so
        # bumping these under self._lock cannot create a lock-order
        # cycle; registration is get-or-create, so every manager in the
        # process shares one family.
        metrics = obs_metrics.registry()
        self._m_lookups = metrics.counter(
            "repro_cache_lookups_total",
            "Shared adjacency cache lookups by outcome.",
            ("outcome",),
        )
        self._m_builds = metrics.counter(
            "repro_adjacency_builds_total",
            "Adjacency builds completed by cache-owning threads.",
        )
        self._m_shm_attaches = metrics.counter(
            "repro_shm_attaches_total",
            "Adjacencies attached from the cross-process shm tier.",
        )
        self._m_migrations = metrics.counter(
            "repro_cache_migrations_total",
            "Cache buckets carried across live-dataset versions.",
        )
        self._m_phase = metrics.histogram(
            "repro_phase_duration_seconds",
            "Measured duration of one traced request phase.",
            ("phase",),
        )

    # ------------------------------------------------------------------
    def view(self, dataset_id: str, metric) -> "SharedCacheView":
        """An adapter scoping this manager to one (dataset, metric)."""
        return SharedCacheView(self, dataset_id, metric)

    # ------------------------------------------------------------------
    # Internal helpers (call with self._lock held)
    # ------------------------------------------------------------------
    def _fresh_value(self, key: CacheKey):
        """The fresh, intact value for ``key`` or None.  Caller holds
        ``self._lock``.

        Expired entries demote to the stale tier; corrupt entries are
        dropped (never demoted — a failed integrity check means the
        bytes cannot be trusted at any age).
        """
        entry = self._entries.get(key)
        if entry is None:
            return None
        if not entry.intact():
            del self._entries[key]
            self.corrupt_entries += 1
            return None
        if entry.expired(time.monotonic()):
            del self._entries[key]
            self.expirations += 1
            self._stale[key] = entry
            self._stale.move_to_end(key)
            self._evict_stale()
            return None
        self._entries.move_to_end(key)
        return entry.value

    def _stale_value(self, key: CacheKey):
        """The intact stale value for ``key`` or None.  Caller holds
        ``self._lock``."""
        entry = self._stale.get(key)
        if entry is None:
            return None
        if not entry.intact():
            del self._stale[key]
            self.corrupt_entries += 1
            return None
        self._stale.move_to_end(key)
        return entry.value

    def _serve_stale(self, key: CacheKey, value, reason: str):
        """Account a degraded stale hit.  Caller holds ``self._lock``."""
        self.stale_served += 1
        self.hits += 1
        self._m_lookups.inc(outcome="stale")
        token = current_token()
        if token is not None:
            token.mark_degraded(f"stale-adjacency:{reason}")
        return value

    def _breaker(self, key: CacheKey) -> CircuitBreaker:
        """The (created-on-first-use) breaker for ``key``.  Caller
        holds ``self._lock``."""
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(self.failure_threshold, self.breaker_reset_s)
            self._breakers[key] = breaker
        return breaker

    def _claim(self, key: CacheKey) -> None:
        """Claim the build slot for this thread.  Caller holds
        ``self._lock``."""
        self._pending[key] = _PendingBuild(threading.get_ident())
        self.misses += 1
        self._m_lookups.inc(outcome="miss")

    def _rebuild_too_tight(self, key: CacheKey) -> bool:
        """Would a rebuild overshoot the ambient deadline?"""
        estimate = self._build_seconds.get(key)
        if estimate is None:
            return False
        token = current_token()
        if token is None:
            return False
        remaining = token.remaining()
        return remaining is not None and remaining < estimate * REBUILD_SAFETY

    # ------------------------------------------------------------------
    def _materialise(self, key: CacheKey, value):
        """Swap a :class:`LazyMigration` for its compacted CSR on first
        read.

        Runs *outside* the manager lock: resolving takes the live
        dataset's lock (and a compaction's worth of work), and the
        mutation path nests live-lock → cache-lock, so resolving under
        the cache lock would invert the order.  Concurrent readers
        resolve to the same snapshot object (the live dataset caches
        one per version); an entry migrated away mid-resolve simply
        isn't re-installed.
        """
        if not isinstance(value, LazyMigration):
            return value
        csr = value.resolve()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = self._stale.get(key)
            if entry is not None and entry.value is value:
                entry.value = csr
                entry.stamp = type(csr).__name__
        return csr

    def get(self, key: CacheKey):
        """The cached adjacency, or None — in which case the caller owns
        the build and must :meth:`put` (or :meth:`fail`/:meth:`abandon`)
        the key.

        If another thread is already building this key, blocks up to
        ``build_wait_s`` for its result instead of duplicating the
        build; a builder that raised hands its exception over promptly
        as :class:`BuildFailed`.  While the key's circuit breaker is
        open — or the ambient deadline cannot fit a rebuild — a stale
        value is served degraded instead of building.
        """
        value = self._get(key)
        if value is None:
            return None
        return self._materialise(key, value)

    def _get(self, key: CacheKey):
        deadline = time.monotonic() + self.build_wait_s
        while True:
            with self._lock:
                value = self._fresh_value(key)
                if value is not None:
                    self.hits += 1
                    self._m_lookups.inc(outcome="hit")
                    return value
                pending = self._pending.get(key)
                if pending is not None and pending.owner == threading.get_ident():
                    # Re-entrant miss (builder probing again): keep
                    # ownership, let it proceed with its build.
                    self.misses += 1
                    self._m_lookups.inc(outcome="miss")
                    return None
                if pending is None:
                    # No build in flight: we would become the builder —
                    # unless the breaker or the deadline says otherwise.
                    breaker = self._breakers.get(key)
                    if breaker is not None and not breaker.allow():
                        stale = self._stale_value(key)
                        if stale is not None:
                            return self._serve_stale(key, stale, "circuit-open")
                        raise CircuitOpen(key, breaker.retry_after_s())
                    if self._rebuild_too_tight(key):
                        stale = self._stale_value(key)
                        if stale is not None:
                            return self._serve_stale(key, stale, "deadline")
                    self._claim(key)
                else:
                    event = pending.event
            if pending is None:
                # Claimed the build slot; injected faults fire here so a
                # "build raises"/"slow build" exercises the exact path a
                # real engine failure takes (fail() + propagation).
                if self.faults is not None:
                    try:
                        self.faults.on_build()
                    except BaseException as exc:
                        self.fail(key, exc)
                        raise
                if self.backing is not None:
                    value = self._backing_fetch(key)
                    if value is not None:
                        # The shm attach resolves this thread's local
                        # claim too: wake any local waiters.
                        return value
                return None
            # Someone else is building: wait outside the lock.
            if not event.wait(timeout=max(0.0, deadline - time.monotonic())):
                # Builder stalled or abandoned without notice — take
                # over ownership rather than deadlocking.
                with self._lock:
                    if self._pending.get(key) is pending:
                        self._claim(key)
                        return None
                continue  # ownership changed hands; re-evaluate
            if pending.error is not None:
                # The builder raised: propagate promptly.  With the
                # breaker open and a stale value on hand, degrade
                # instead of failing the request.
                with self._lock:
                    breaker = self._breakers.get(key)
                    if breaker is not None and not breaker.allow():
                        stale = self._stale_value(key)
                        if stale is not None:
                            return self._serve_stale(key, stale, "circuit-open")
                raise BuildFailed(key, pending.error)
            with self._lock:
                value = self._fresh_value(key)
                if value is not None:
                    self.hits += 1
                    self.coalesced_builds += 1
                    self._m_lookups.inc(outcome="hit")
                    return value
                if key not in self._pending:
                    self._claim(key)
                    return None
            # Another thread re-registered first; wait for it in turn.

    def peek(self, key: CacheKey):
        """The cached adjacency or None — no build slot is claimed and
        no waiting happens, so callers must not follow with ``put``."""
        with self._lock:
            value = self._fresh_value(key)
            if value is not None:
                self.hits += 1
            else:
                self.misses += 1
        self._m_lookups.inc(outcome="hit" if value is not None else "miss")
        if value is None:
            return None
        return self._materialise(key, value)

    def _backing_fetch(self, key: CacheKey):
        """Try the cross-process tier after a local miss-claim.

        Returns the attached value (installed locally, counted as an
        ``shm_hit`` — NOT a build) or None, in which case this thread
        still owns the local build slot; if the backing granted the
        cluster-wide build claim it is stashed for :meth:`put` to
        publish.  Any backing failure degrades to a local build.
        """
        try:
            with obs_trace.phase("shm-attach"):
                status, got = self.backing.load_or_claim(key)
        except BaseException:  # repro-lint: disable=swallowed-cancellation -- deliberate: fall through to the local build, whose own checkpoints abort promptly under the same token
            # Includes OperationCancelled from the wait loop's
            # checkpoints: any backing failure degrades to a local
            # build rather than failing the request.
            return None
        if status == "value":
            self._install(key, got, count_build=False)
            with self._lock:
                self.shm_hits += 1
            self._m_shm_attaches.inc()
            return got
        if status == "claim":
            with self._lock:
                self._backing_claims[key] = got
        return None

    def _install(self, key: CacheKey, value, *, count_build: bool) -> None:
        """Insert a value and wake coalesced waiters (shared by local
        builds and shm attaches; only the former counts as a build)."""
        now = time.monotonic()
        expires = None if self.ttl_s is None else now + self.ttl_s
        stored = value
        if self.faults is not None and count_build:
            stored = self.faults.maybe_corrupt(value)
        with self._lock:
            # Stamp with the *real* value's type: an injected corrupt
            # wrapper therefore fails the integrity check on first read.
            self._entries[key] = _Entry(stored, expires, type(value).__name__)
            self._entries.move_to_end(key)
            self._stale.pop(key, None)  # fresh build supersedes stale
            if count_build:
                self.builds += 1
            pending = self._pending.pop(key, None)
            if pending is not None:
                self._build_seconds[key] = max(
                    1e-6, now - pending.claimed_at
                )
            breaker = self._breakers.get(key)
            if breaker is not None:
                breaker.record_success()
            self._evict()
        if pending is not None:
            pending.event.set()
        if count_build:
            self._m_builds.inc()
            if pending is not None:
                # The build ran inside the engine, below any span seam;
                # reconstruct it retroactively from the claim timestamp
                # so traces still show where a slow request's time went.
                build_s = max(0.0, now - pending.claimed_at)
                obs_trace.record_phase("adjacency-build", build_s * 1000.0)
                self._m_phase.observe(build_s, phase="adjacency-build")

    def put(self, key: CacheKey, value) -> None:
        """Insert a built adjacency; wakes any coalesced waiters and
        publishes to the cross-process backing when this process holds
        the cluster-wide build claim."""
        self._install(key, value, count_build=True)
        with self._lock:
            claim = self._backing_claims.pop(key, None)
        if claim is not None and self.backing is not None:
            try:
                if self.backing.publish(claim, value):
                    with self._lock:
                        self.shm_stores += 1
            except OperationCancelled:
                # The deadline expired mid-publish: release the
                # cluster-wide claim so a healthy worker takes over the
                # publish, and propagate so this request answers
                # 408/504 instead of silently losing its cancellation.
                try:
                    claim.abandon()
                except Exception:  # pragma: no cover - defensive
                    pass
                raise
            except Exception:
                try:
                    claim.abandon()
                except Exception:  # pragma: no cover - defensive
                    pass

    def _release_backing(self, key: CacheKey) -> None:
        with self._lock:
            claim = self._backing_claims.pop(key, None)
        if claim is not None and self.backing is not None:
            try:
                self.backing.abandon(claim)
            except Exception:  # pragma: no cover - defensive
                pass

    def abandon(self, key: CacheKey) -> None:
        """Give up a build slot claimed by a miss (nothing to cache).

        Engines that cannot materialise an adjacency (``_build_csr``
        returning None) never call :meth:`put`; releasing the pending
        token here lets waiters proceed immediately instead of riding
        out ``build_wait_s``.
        """
        self._release_backing(key)
        with self._lock:
            pending = self._pending.pop(key, None)
        if pending is not None:
            pending.event.set()

    def fail(self, key: CacheKey, exc: BaseException) -> None:
        """A claimed build raised: propagate to waiters, feed the breaker.

        Cooperative cancellations are *not* failures — the dependency
        is healthy, the requester just ran out of budget — so they
        release the slot like :meth:`abandon` and let a waiter take
        over the build under its own deadline.
        """
        if isinstance(exc, OperationCancelled):
            self.abandon(key)
            return
        self._release_backing(key)
        with self._lock:
            pending = self._pending.pop(key, None)
            self.build_failures += 1
            self._breaker(key).record_failure()
        if pending is not None:
            pending.error = exc  # must precede the wake-up
            pending.event.set()

    # ------------------------------------------------------------------
    # Live-dataset migration
    # ------------------------------------------------------------------
    def migrate_dataset(self, old_dataset_id, new_dataset_id, patcher) -> int:
        """Re-key ``old_dataset_id``'s entries to ``new_dataset_id``,
        patching each value through ``patcher(metric_name, bucket)``.

        The live-dataset mutation path: instead of dropping every cached
        adjacency of a mutated dataset (whole-entry invalidation), each
        *fresh* entry's radius bucket is patched incrementally — the
        patcher returns the value for the new version, typically a
        :class:`LazyMigration` whose compacted CSR materialises on first
        read — and installed under the new version-stamped dataset id.
        Patched keys count as ``migrations``, never as builds.  Every
        key of the old version (fresh tier, stale tier, breakers,
        build-time estimates, shm segments) is then dropped: the old
        version is unreachable, scoped precisely to the dataset that
        mutated.

        A patcher returning None (or raising) drops that bucket instead
        of migrating it — the next request rebuilds it under the new
        key.  Returns the number of migrated buckets.
        """
        with self._lock:
            old_keys = [
                key
                for key in set(self._entries) | set(self._stale)
                if key[0] == old_dataset_id
            ]
            fresh_keys = [key for key in old_keys if key in self._entries]
        migrated = 0
        for key in fresh_keys:
            _, metric_name, bucket = key
            try:
                value = patcher(metric_name, bucket)
            except OperationCancelled:
                raise
            except Exception:
                value = None
            if value is None:
                continue
            new_key = (new_dataset_id, metric_name, bucket)
            now = time.monotonic()
            expires = None if self.ttl_s is None else now + self.ttl_s
            with self._lock:
                self._entries[new_key] = _Entry(value, expires)
                self._entries.move_to_end(new_key)
                self._stale.pop(new_key, None)
                self.migrations += 1
                self._evict()
            self._m_migrations.inc()
            migrated += 1
        with self._lock:
            for key in old_keys:
                self._entries.pop(key, None)
                self._stale.pop(key, None)
                self._breakers.pop(key, None)
                self._build_seconds.pop(key, None)
        if self.backing is not None:
            for key in old_keys:
                try:
                    self.backing.drop(key)
                except OperationCancelled:
                    raise
                except Exception:  # pragma: no cover - defensive
                    pass
        return migrated

    def _evict(self) -> None:
        with self._lock:
            while len(self._entries) > 1 and (
                (
                    self.max_entries is not None
                    and len(self._entries) > self.max_entries
                )
                or (self.max_bytes is not None and self.total_bytes > self.max_bytes)
            ):
                self._entries.popitem(last=False)
                self.evictions += 1

    def _evict_stale(self) -> None:
        """Trim the stale tier to budget.  Caller holds ``self._lock``."""
        if self.max_entries is None:
            return
        while len(self._stale) > self.max_entries:
            self._stale.popitem(last=False)
            self.evictions += 1

    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        with self._lock:
            return sum(_entry_bytes(e.value) for e in self._entries.values())

    def breaker_state(self, key: CacheKey) -> str:
        """The breaker state for ``key`` (``"closed"`` if none exists)."""
        with self._lock:
            breaker = self._breakers.get(key)
        return "closed" if breaker is None else breaker.state

    def cache_info(self) -> dict:
        """Counters + per-key footprint (plain JSON-serialisable dict)."""
        with self._lock:
            now = time.monotonic()
            return {
                "entries": len(self._entries),
                "keys": [
                    {
                        "dataset": dataset,
                        "metric": metric,
                        "radius": bucket,
                        "bytes": _entry_bytes(entry.value),
                        "ttl_remaining_s": (
                            None
                            if entry.expires_at is None
                            else round(max(0.0, entry.expires_at - now), 3)
                        ),
                    }
                    for (dataset, metric, bucket), entry in self._entries.items()
                ],
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "expirations": self.expirations,
                "builds": self.builds,
                "coalesced_builds": self.coalesced_builds,
                "build_failures": self.build_failures,
                "stale_entries": len(self._stale),
                "stale_served": self.stale_served,
                "corrupt_entries": self.corrupt_entries,
                "shm_hits": self.shm_hits,
                "shm_stores": self.shm_stores,
                "migrations": self.migrations,
                "backing": (
                    None if self.backing is None else self.backing.info()
                ),
                "breakers": {
                    f"{dataset}/{metric}@{bucket}": breaker.describe()
                    for (dataset, metric, bucket), breaker in self._breakers.items()
                },
                "bytes": self.total_bytes,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "ttl_s": self.ttl_s,
            }

    info = cache_info

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._stale.clear()
            self._breakers.clear()
            self._build_seconds.clear()
            pending = list(self._pending.values())
            self._pending.clear()
            claims = list(self._backing_claims.values())
            self._backing_claims.clear()
        for build in pending:
            build.event.set()
        for claim in claims:
            try:
                self.backing.abandon(claim)
            except Exception:  # pragma: no cover - defensive
                pass

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"SharedCacheManager(entries={len(self)}, hits={self.hits}, "
            f"misses={self.misses}, builds={self.builds}, "
            f"coalesced={self.coalesced_builds})"
        )


class SharedCacheView(AdjacencyCache):
    """A per-(dataset, metric) window onto a :class:`SharedCacheManager`.

    Implements the :class:`~repro.engines.cache.AdjacencyCache` protocol
    (``get``/``put``/``fail``/``adopt``/``info``/``clear`` keyed by
    radius), so a :class:`~repro.index.base.NeighborIndex` — and
    therefore a :class:`~repro.api.DiscSession` — attaches to the shared
    store with ``set_adjacency_cache(manager.view(dataset_id, metric))``
    and no other change.  The view keeps its own hit/miss counters (what
    *this* session saw) next to the manager-wide ones.
    """

    #: Lock discipline (see :mod:`repro.engines.cache`): the manager
    #: guards the shared tiers; the view only owns its two counters.
    _GUARDED_BY = {
        "hits": "self._lock",
        "misses": "self._lock",
    }

    def __init__(self, manager: SharedCacheManager, dataset_id: str, metric) -> None:
        super().__init__()
        self.manager = manager
        self.dataset_id = str(dataset_id)
        self.metric_name = getattr(metric, "name", str(metric))

    def _key(self, radius: float) -> CacheKey:
        return (self.dataset_id, self.metric_name, radius_bucket(radius))

    # ------------------------------------------------------------------
    def get(self, key: float):
        with obs_trace.phase("cache-lookup", radius=float(key)):
            value = self.manager.get(self._key(key))
        with self._lock:
            if value is None:
                self.misses += 1
            else:
                self.hits += 1
        return value

    def peek(self, key: float):
        value = self.manager.peek(self._key(key))
        with self._lock:
            if value is None:
                self.misses += 1
            else:
                self.hits += 1
        return value

    def put(self, key: float, value) -> None:
        self.manager.put(self._key(key), value)

    def abandon(self, key: float) -> None:
        self.manager.abandon(self._key(key))

    def fail(self, key: float, exc: BaseException) -> None:
        self.manager.fail(self._key(key), exc)

    def adopt(self, other: AdjacencyCache) -> None:
        """Carry a session-private cache's entries into the shared store
        (called by ``set_adjacency_cache`` when a view replaces an
        index's default cache)."""
        if isinstance(other, SharedCacheView):
            return  # already shared; nothing private to carry over
        with other._lock:
            items = list(other._entries.items())
        for radius, value in items:
            self.manager.put(self._key(radius), value)

    # ------------------------------------------------------------------
    def info(self) -> dict:
        """This view's counters plus the shared keys it can see."""
        shared = self.manager.cache_info()
        mine = [
            k
            for k in shared["keys"]
            if k["dataset"] == self.dataset_id and k["metric"] == self.metric_name
        ]
        with self._lock:
            return {
                "dataset": self.dataset_id,
                "metric": self.metric_name,
                "entries": len(mine),
                "radii": [k["radius"] for k in mine],
                "hits": self.hits,
                "misses": self.misses,
                "evictions": shared["evictions"],
                "bytes": sum(k["bytes"] for k in mine),
                "max_entries": self.manager.max_entries,
                "max_bytes": self.manager.max_bytes,
                "shared": {
                    key: shared[key]
                    for key in (
                        "entries",
                        "hits",
                        "misses",
                        "builds",
                        "coalesced_builds",
                        "build_failures",
                        "stale_entries",
                        "stale_served",
                        "corrupt_entries",
                        "evictions",
                        "expirations",
                        "bytes",
                    )
                },
            }

    cache_info = info

    def clear(self) -> None:
        """Drop this view's keys from the shared store (others stay)."""
        with self.manager._lock:
            for tier in (self.manager._entries, self.manager._stale):
                doomed = [
                    key
                    for key in tier
                    if key[0] == self.dataset_id and key[1] == self.metric_name
                ]
                for key in doomed:
                    del tier[key]

    def __contains__(self, key) -> bool:
        with self.manager._lock:
            entry = self.manager._entries.get(self._key(key))
            return (
                entry is not None
                and not entry.expired(time.monotonic())
                and entry.intact()
            )

    def __len__(self) -> int:
        return len(self.info()["radii"])

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"SharedCacheView(dataset={self.dataset_id!r}, "
            f"metric={self.metric_name!r}, hits={self.hits}, "
            f"misses={self.misses})"
        )

"""Asyncio JSON-over-HTTP front end for the DisC serving layer.

Stdlib-only (``asyncio`` streams + a minimal HTTP/1.1 reader): the
container this runs in has NumPy/SciPy but no web framework, and the
protocol surface is five endpoints of JSON — a framework would be the
heavier dependency, not the simpler code.

Endpoints
---------
``POST /select``
    ``{"dataset": name, "radius": r, "method": ..., "method_options":
    {...}, "engine": ...}`` (or the same fields nested under
    ``"request"``) → ``{"dataset", "request", "result", "elapsed_s",
    "degraded", "coalesced"}`` with ``result`` a serialised
    :class:`~repro.core.result.DiscResult`.
``POST /zoom``
    ``{"dataset": name, "radius": r, "to": r2, ...}`` → selects at
    ``r`` (with closest-black tracking) and adapts to ``r2`` via
    zoom-in/zoom-out; returns both results.  With ``"previous":
    {"selected": [...], ...}`` the client's held solution is adapted
    directly — no base recompute.
``POST /mutate``
    ``{"dataset": name, "inserts": [[...]...], "deletes": [ids...],
    "repair": {"radius": r, "previous": [ids...]}?}`` against a *live*
    dataset → applies the batch, migrates warm cache entries to the new
    version, optionally repairs the client's selection.  Mutations
    never coalesce by content (each batch is a distinct state
    transition); retries deduplicate via ``idempotency_key``.
``GET /datasets``
    The registry catalogue.
``GET /healthz``
    Liveness: ``{"status": "ok", ...}``.
``GET /stats``
    Counters, shared-cache info, single-flight accounting, breaker and
    fault-injection state.

Compute bodies additionally accept two transport-level fields stripped
before validation: ``timeout_ms`` (per-request deadline budget, capped
by the server's ``max_timeout_ms``) and ``idempotency_key`` (retries
carrying the same key join the original in-flight computation or
replay its completed response instead of re-running).

Concurrency model
-----------------
The event loop only parses/validates/serialises; every selection runs
in the state's bounded thread pool (``run_in_executor``), so slow
computations never block health checks.  Admission control: when
``max_inflight`` computations are queued or running, new compute
requests get ``503`` instead of joining an unbounded queue.

**Single-flight**: concurrent requests with the same canonical key
(endpoint + dataset + validated request) share one computation — the
first becomes the leader, the rest await the leader's future and are
counted in ``coalesced_requests``.  Combined with the shared adjacency
cache this gives the multi-user zoom workload its throughput: N users
asking for the same view cost one selection, and different radii on
the same dataset still share the materialised adjacency.

Error contract
--------------
Every non-200 body is ``{"error": {"code": ..., "message": ...}}``.
Unknown dataset → 404; validation errors → 400; client deadline
(``timeout_ms``) expired → 408; server-imposed deadline expired → 504;
overload / failed or circuit-broken builds / injected faults → 503;
anything unexpected → 500 carrying only the exception *type* name —
raw ``str(exc)`` of arbitrary exceptions never reaches the wire.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro import __version__
from repro.obs import trace as obs_trace
from repro.obs.sink import TraceSink, build_record
from repro.service.faults import InjectedFault
from repro.service.resilience import (
    BuildFailed,
    CircuitOpen,
    OperationCancelled,
    error_body,
    extract_request_meta,
)
from repro.service.state import ServiceState, canonical_key

__all__ = [
    "DiscServer",
    "RunningService",
    "ServiceUnavailable",
    "read_http_request",
    "start_in_thread",
    "write_http_response",
]

#: Hard cap on request body size (JSON) — 16 MiB is far beyond any
#: legitimate request and keeps a misbehaving client from ballooning
#: the process.
MAX_BODY_BYTES = 16 * 1024 * 1024
MAX_HEADER_BYTES = 64 * 1024

#: Completed responses replayable by idempotency key (LRU-bounded).
IDEMPOTENCY_CACHE_SIZE = 128


class ServiceUnavailable(RuntimeError):
    """Raised internally when admission control rejects a request."""


def _json_bytes(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True).encode("utf-8")


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


async def read_http_request(
    reader,
) -> Optional[Tuple[str, str, bool, Optional[dict], Dict[str, str]]]:
    """Parse one HTTP/1.1 request from a stream; None on clean EOF.

    Returns ``(method, path, keep_alive, body, headers)`` — header
    names lowercased, so the trace header is ``headers.get
    ("x-repro-trace")``.  Shared by :class:`DiscServer` and the
    supervisor front (both speak the same minimal dialect).  Framing
    errors that make the connection unusable surface as sentinel paths
    (``\\x00too-large`` etc.) so the caller can still answer before
    dropping the connection.
    """
    request_line = await reader.readline()
    if not request_line:
        return None
    try:
        method, target, version = request_line.decode("latin-1").split()
    except ValueError:
        raise asyncio.IncompleteReadError(request_line, None)
    headers: Dict[str, str] = {}
    total = len(request_line)
    while True:
        line = await reader.readline()
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise asyncio.LimitOverrunError("headers too large", total)
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    keep_alive = headers.get("connection", "keep-alive").lower() != "close"
    if not version.endswith("1.1"):
        keep_alive = headers.get("connection", "close").lower() == "keep-alive"
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        length = -1
    if length < 0:
        # Unparsable/negative Content-Length: answer 400 and drop
        # the connection (the body framing is unknowable).
        return method.upper(), "\x00bad-length", False, None, headers
    if length > MAX_BODY_BYTES:
        # Drain enough to answer, then force-close the connection.
        return method.upper(), "\x00too-large", False, None, headers
    body: Optional[dict] = None
    if length:
        raw = await reader.readexactly(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            body = {"\x00invalid-json": True}
    path = target.split("?", 1)[0]
    return method.upper(), path, keep_alive, body, headers


async def write_http_response(
    writer,
    status: int,
    payload: dict,
    keep_alive: bool,
    extra_headers=None,
) -> None:
    """Serialise one response (module-level twin of the reader).

    ``payload`` is JSON unless it carries the ``\\x00text`` sentinel
    key, in which case that value goes out verbatim as Prometheus-style
    ``text/plain`` (the ``/metrics`` endpoint).  ``extra_headers`` is
    an iterable of ``(name, value)`` pairs — ``X-Repro-Trace`` and
    ``Server-Timing`` ride here.
    """
    text = payload.get("\x00text") if isinstance(payload, dict) else None
    if text is not None:
        body = text.encode("utf-8")
        content_type = "text/plain; version=0.0.4; charset=utf-8"
    else:
        body = _json_bytes(payload)
        content_type = "application/json"
    extra = ""
    for name, value in extra_headers or ():
        extra += f"{name}: {value}\r\n"
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"Server: repro-disc/{__version__}\r\n"
        f"{extra}"
        "\r\n"
    ).encode("latin-1")
    writer.write(head + body)
    await writer.drain()


class DiscServer:
    """One listening socket over one :class:`ServiceState`.

    ``port=0`` binds an ephemeral port; the bound port is available as
    ``self.port`` after :meth:`start` (and printed by ``repro serve``),
    which is how tests and the load harness avoid port races.

    ``drain_s`` is the graceful-shutdown budget: :meth:`stop` first
    closes the listener, then waits up to this long for in-flight
    requests to answer before cancelling the remaining (idle
    keep-alive) connections.
    """

    #: Lock discipline (convention in :mod:`repro.engines.cache`): all
    #: of the server's mutable state is owned by the asyncio event loop
    #: — never touched from executor threads — so the guard is the
    #: ``event-loop`` sentinel, not a lock expression.
    _GUARDED_BY = {
        "_inflight": "event-loop",
        "_idem_inflight": "event-loop",
        "_completed": "event-loop",
        "_conn_tasks": "event-loop",
        "_active_requests": "event-loop",
        "_mutation_seq": "event-loop",
    }

    def __init__(
        self,
        state: ServiceState,
        host: str = "127.0.0.1",
        port: int = 8722,
        *,
        drain_s: float = 5.0,
        trace_log: Optional[str] = None,
        trace_sink: Optional[TraceSink] = None,
    ) -> None:
        self.state = state
        self.host = host
        self.port = port
        self.drain_s = float(drain_s)
        if trace_sink is None and trace_log:
            trace_sink = TraceSink(trace_log)
        self.trace_sink = trace_sink
        metrics = state.metrics
        self._m_requests = metrics.counter(
            "repro_http_requests_total",
            "HTTP requests seen, by endpoint",
            labelnames=("endpoint",),
        )
        self._m_responses = metrics.counter(
            "repro_http_responses_total",
            "HTTP responses written, by status",
            labelnames=("status",),
        )
        self._m_duration = metrics.histogram(
            "repro_request_duration_seconds",
            "Wall-clock request latency, by path",
            labelnames=("path",),
        )
        self._m_traces = metrics.counter(
            "repro_traces_written_total", "Trace records written to the sink"
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._inflight: Dict[str, asyncio.Future] = {}
        self._idem_inflight: Dict[str, asyncio.Future] = {}
        self._completed: "OrderedDict[str, dict]" = OrderedDict()
        self._conn_tasks: set = set()
        self._active_requests = 0
        self._mutation_seq = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self, drain_s: Optional[float] = None) -> None:
        """Stop accepting, drain in-flight requests, drop connections.

        The drain loop watches the event-loop-owned active-request
        gauge: requests already dispatched (including their executor
        work) get up to ``drain_s`` seconds to write their responses;
        idle keep-alive connections are then cancelled.
        """
        if drain_s is None:
            drain_s = self.drain_s
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if drain_s > 0 and self._active_requests > 0:
            deadline = time.monotonic() + drain_s
            while self._active_requests > 0 and time.monotonic() < deadline:
                await asyncio.sleep(0.02)
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks), return_exceptions=True)

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                parsed = await self._read_request(reader)
                if parsed is None:
                    break
                method, path, keep_alive, body, headers = parsed
                self._active_requests += 1
                try:
                    self._m_requests.inc(endpoint=f"{method} {path[:32]}")
                    with obs_trace.request_scope(
                        "request",
                        header=headers.get("x-repro-trace"),
                    ) as root:
                        status, payload = await self._dispatch(method, path, body)
                    faults = self.state.faults
                    if faults is not None and faults.should_reset_connection():
                        # Injected connection reset: the work happened,
                        # the answer never leaves the socket (so it is
                        # not counted as a response either).
                        writer.transport.abort()
                        return
                    self.state.count_response(status)
                    self._m_responses.inc(status=status)
                    self._m_duration.observe(
                        root.elapsed_ms() / 1000.0, path=self._metric_path(path)
                    )
                    await self._write_response(
                        writer, status, payload, keep_alive,
                        extra_headers=self._trace_headers(root),
                    )
                    self._emit_trace(root, status, method, path)
                finally:
                    self._active_requests -= 1
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            asyncio.LimitOverrunError,
        ):
            pass  # client went away mid-request; nothing to answer
        except asyncio.CancelledError:
            pass  # shutdown cancelled an idle keep-alive connection
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _read_request(
        self, reader
    ) -> Optional[Tuple[str, str, bool, Optional[dict], Dict[str, str]]]:
        return await read_http_request(reader)

    async def _write_response(
        self, writer, status: int, payload: dict, keep_alive: bool,
        extra_headers=None,
    ) -> None:
        await write_http_response(
            writer, status, payload, keep_alive, extra_headers=extra_headers
        )

    @staticmethod
    def _metric_path(path: str) -> str:
        """Bound the duration histogram's label cardinality."""
        if path in ("/select", "/zoom", "/mutate", "/stats", "/healthz",
                    "/datasets", "/metrics"):
            return path
        return "other"

    def _trace_headers(self, root: obs_trace.Span):
        """``X-Repro-Trace`` + ``Server-Timing`` for one finished root.

        ``build`` totals the adjacency-build and shm-attach phases
        wherever they nested; ``select`` is the selection phase net of
        builds that ran inside it — so the client's load harness reads
        measured phase costs instead of inferring them.
        """
        totals = obs_trace.phase_totals(root)
        build_ms = totals.get("adjacency-build", 0.0) + totals.get("shm-attach", 0.0)
        select_ms = max(totals.get("selection", 0.0) - build_ms, 0.0)
        timing = (
            f"total;dur={root.elapsed_ms():.3f}, "
            f"build;dur={build_ms:.3f}, "
            f"select;dur={select_ms:.3f}"
        )
        return [
            (obs_trace.TRACE_HEADER, obs_trace.format_trace_header(root)),
            ("Server-Timing", timing),
        ]

    def _emit_trace(self, root: obs_trace.Span, status: int, method: str,
                    path: str) -> None:
        if self.trace_sink is None:
            return
        self.trace_sink.emit(
            build_record(
                root, status=status, method=method, path=path,
                worker=self.state.identity,
            )
        )
        self._m_traces.inc()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self, method: str, path: str, body: Optional[dict]
    ) -> Tuple[int, dict]:
        if path == "\x00too-large":
            return 413, error_body("payload_too_large", "request body too large")
        if path == "\x00bad-length":
            return 400, error_body("bad_request", "invalid Content-Length header")
        if isinstance(body, dict) and body.get("\x00invalid-json"):
            return 400, error_body("bad_request", "request body is not valid JSON")
        endpoint = f"{method} {path}"
        self.state.count_request(endpoint)
        try:
            if method == "GET":
                if path == "/healthz":
                    return 200, self._healthz()
                if path == "/stats":
                    return 200, self.state.stats()
                if path == "/metrics":
                    return 200, {"\x00text": self.state.metrics.render()}
                if path == "/datasets":
                    return 200, {"datasets": self.state.registry.describe()}
                if path in ("/select", "/zoom", "/mutate"):
                    return 405, error_body(
                        "method_not_allowed", f"{path} requires POST"
                    )
                return 404, error_body("not_found", f"unknown path {path!r}")
            if method == "POST":
                if path in ("/select", "/zoom", "/mutate"):
                    faults = self.state.faults
                    if faults is not None:
                        # Process-level chaos (worker_crash /
                        # worker_stall_hard) fires at dispatch so the
                        # request is provably in flight when the worker
                        # dies — the supervisor must replay it.  GET
                        # probes never draw from the stream, so health
                        # checks stay deterministic.
                        faults.on_dispatch()
                if path == "/select":
                    return await self._select(body or {})
                if path == "/zoom":
                    return await self._zoom(body or {})
                if path == "/mutate":
                    return await self._mutate(body or {})
                if path in ("/healthz", "/stats", "/datasets", "/metrics"):
                    return 405, error_body(
                        "method_not_allowed", f"{path} requires GET"
                    )
                return 404, error_body("not_found", f"unknown path {path!r}")
            return 405, error_body(
                "method_not_allowed", f"unsupported method {method}"
            )
        except KeyError as exc:
            return 404, error_body(
                "not_found", str(exc.args[0]) if exc.args else str(exc)
            )
        except (ValueError, TypeError) as exc:
            return 400, error_body("bad_request", str(exc))
        except OperationCancelled as exc:
            if exc.source == "client":
                return 408, error_body("deadline_exceeded", str(exc))
            return 504, error_body("server_deadline_exceeded", str(exc))
        except BuildFailed as exc:
            return 503, error_body("build_failed", str(exc))
        except CircuitOpen as exc:
            return 503, error_body("circuit_open", str(exc))
        except InjectedFault as exc:
            return 503, error_body("injected_fault", str(exc))
        except ServiceUnavailable as exc:
            return 503, error_body("overloaded", str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            # Deliberately NOT str(exc): arbitrary exception text can
            # embed paths, array reprs, anything — leak nothing.
            return 500, error_body(
                "internal", f"unexpected {type(exc).__name__}"
            )

    def _healthz(self) -> dict:
        return {
            "status": "ok",
            "version": __version__,
            "datasets": self.state.registry.names(),
            "inflight": self.state.current_inflight(),
            "uptime_s": round(time.time() - self.state.started_at, 3),
        }

    # ------------------------------------------------------------------
    # Compute endpoints (single-flighted)
    # ------------------------------------------------------------------
    async def _select(self, payload: dict) -> Tuple[int, dict]:
        payload, timeout_ms, idem = extract_request_meta(payload)
        with obs_trace.phase("validate"):
            handle, request = self.state.validate_select(payload)
        token = self.state.deadline_token(timeout_ms)
        key = canonical_key("select", handle.dataset_id, request.to_dict())
        shared, coalesced = await self._single_flight(
            key, idem, token,
            lambda: self.state.run_select(handle, request, token),
        )
        response = dict(shared)
        response["coalesced"] = coalesced
        if coalesced:
            obs_trace.annotate_root(coalesced=True)
        return 200, response

    async def _zoom(self, payload: dict) -> Tuple[int, dict]:
        payload, timeout_ms, idem = extract_request_meta(payload)
        with obs_trace.phase("validate"):
            handle, request, to_radius, zoom_options, previous = (
                self.state.validate_zoom(payload)
            )
        token = self.state.deadline_token(timeout_ms)
        key_payload = {
            "request": request.to_dict(), "to": to_radius, **zoom_options,
        }
        if previous is not None:
            # The client's held solution is part of the request identity
            # — two zooms from different selections must not coalesce.
            key_payload["previous"] = previous["selected"]
        key = canonical_key("zoom", handle.dataset_id, key_payload)
        shared, coalesced = await self._single_flight(
            key, idem, token,
            lambda: self.state.run_zoom(
                handle, request, to_radius, zoom_options, token,
                previous=previous,
            ),
        )
        response = dict(shared)
        response["coalesced"] = coalesced
        if coalesced:
            obs_trace.annotate_root(coalesced=True)
        return 200, response

    async def _mutate(self, payload: dict) -> Tuple[int, dict]:
        payload, timeout_ms, idem = extract_request_meta(payload)
        with obs_trace.phase("validate"):
            live, inserts, deletes, repair = self.state.validate_mutate(payload)
        token = self.state.deadline_token(timeout_ms)
        # A mutation is a state transition, never a cacheable read: two
        # identical-looking batches are two distinct mutations, so the
        # single-flight key carries a per-server nonce and only the
        # idempotency path (client retries of ONE logical batch) ever
        # joins or replays.
        self._mutation_seq += 1
        key = canonical_key(
            "mutate", live.name, {"seq": self._mutation_seq}
        )
        shared, coalesced = await self._single_flight(
            key, idem, token,
            lambda: self.state.run_mutate(
                live, inserts, deletes, repair, token
            ),
        )
        response = dict(shared)
        response["coalesced"] = coalesced
        return 200, response

    async def _await_follower(self, future: asyncio.Future, token):
        """Wait on another request's computation within our own budget.

        A follower's deadline is its own: expiring here answers 408/504
        without cancelling the leader (hence the shield).
        """
        remaining = token.remaining()
        if remaining is None:
            return await asyncio.shield(future)
        try:
            return await asyncio.wait_for(asyncio.shield(future), timeout=remaining)
        except asyncio.TimeoutError:
            raise OperationCancelled(
                "deadline exceeded awaiting shared computation",
                source=token.source,
            ) from None

    def _remember(self, idem: str, result: dict) -> None:
        """Store a completed response for idempotent replay (runs on
        the event loop, from ``_single_flight``)."""
        self._completed[idem] = result
        self._completed.move_to_end(idem)
        while len(self._completed) > IDEMPOTENCY_CACHE_SIZE:
            self._completed.popitem(last=False)

    async def _single_flight(
        self, key: str, idem: Optional[str], token, thunk
    ) -> Tuple[dict, bool]:
        """Run ``thunk`` in the executor, sharing identical in-flight work.

        Returns ``(result, coalesced)``.  The leader owns the executor
        job; followers await the leader's future.  Retries carrying an
        ``idempotency_key`` land here twice: a key whose computation is
        still in flight joins it (even with coalescing disabled — a
        retry is by definition the same logical request), and a key
        that already completed replays the stored response without
        touching the executor.  With coalescing disabled every *new*
        request is its own leader (the load harness measures exactly
        this delta).
        """
        state = self.state
        if idem is not None:
            done = self._completed.get(idem)
            if done is not None:
                self._completed.move_to_end(idem)
                state.count_coalesced()
                return done, True
            existing = self._idem_inflight.get(idem)
            if existing is not None:
                state.count_coalesced()
                return await self._await_follower(existing, token), True
        if state.coalesce:
            existing = self._inflight.get(key)
            if existing is not None:
                state.count_coalesced()
                return await self._await_follower(existing, token), True
        if (
            state.max_inflight is not None
            and state.current_inflight() >= state.max_inflight
        ):
            raise ServiceUnavailable(
                f"server is at capacity ({state.max_inflight} computations "
                "queued or running); retry shortly"
            )
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        if state.coalesce:
            self._inflight[key] = future
        if idem is not None:
            self._idem_inflight[idem] = future
        state.adjust_inflight(1)
        # run_in_executor does not copy contextvars: capture the
        # request's span here and re-enter it inside the worker thread
        # so compute phases nest under the request's trace.
        parent_span = obs_trace.current_span()

        def traced_thunk():
            with obs_trace.attach(parent_span):
                return thunk()

        try:
            result = await loop.run_in_executor(state.executor, traced_thunk)
        except Exception as exc:
            if not future.done():
                future.set_exception(exc)
                # A follower may or may not exist; if none ever awaits,
                # silence the "exception never retrieved" warning.
                future.exception()
            raise
        else:
            if not future.done():
                future.set_result(result)
            if idem is not None:
                self._remember(idem, result)
            return result, False
        finally:
            state.adjust_inflight(-1)
            if state.coalesce and self._inflight.get(key) is future:
                del self._inflight[key]
            if idem is not None and self._idem_inflight.get(idem) is future:
                del self._idem_inflight[idem]


# ----------------------------------------------------------------------
# In-process hosting (tests, load harness, notebooks)
# ----------------------------------------------------------------------
class RunningService:
    """A server running on a daemon thread, stoppable from the caller."""

    def __init__(self, state: ServiceState, server: DiscServer, loop, thread) -> None:
        self.state = state
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def address(self) -> str:
        return f"http://{self.server.host}:{self.server.port}"

    def stop(self, drain_s: Optional[float] = None) -> None:
        """Stop accepting, drain the loop, join the thread, close state."""
        if self._thread is None:
            return
        asyncio.run_coroutine_threadsafe(
            self.server.stop(drain_s), self._loop
        ).result(timeout=60)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        self._loop.close()
        if self.server.trace_sink is not None:
            self.server.trace_sink.close()
        self.state.close()
        self._thread = None

    def __enter__(self) -> "RunningService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_in_thread(
    state: ServiceState,
    host: str = "127.0.0.1",
    port: int = 0,
    trace_log: Optional[str] = None,
) -> RunningService:
    """Start a :class:`DiscServer` on a background event-loop thread.

    Used by the load harness and the test suite; ``repro serve`` runs
    the loop in the foreground instead (see :mod:`repro.cli`).
    """
    loop = asyncio.new_event_loop()
    server = DiscServer(state, host=host, port=port, trace_log=trace_log)
    started = threading.Event()

    def _run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=_run, name="disc-service-loop", daemon=True)
    thread.start()
    if not started.wait(timeout=30):  # pragma: no cover - defensive
        raise RuntimeError("service event loop failed to start")
    return RunningService(state, server, loop, thread)

"""Shared serving state: datasets + indexes + cache + execution.

:class:`ServiceState` is the synchronous heart of the service — the
asyncio front end (:mod:`repro.service.server`) validates requests on
the event loop, then runs the heavy work on this object inside a
bounded :class:`~concurrent.futures.ThreadPoolExecutor` so the loop
stays responsive.  It owns:

* a :class:`~repro.service.registry.DatasetRegistry` (datasets load
  once, handles are immutable),
* a :class:`~repro.service.cache.SharedCacheManager` (or None when
  caching is disabled) that every serving index attaches to via a
  :class:`~repro.service.cache.SharedCacheView`,
* one :class:`~repro.index.base.NeighborIndex` per (dataset, engine
  spec), built on first use behind a per-key lock — the serving
  analogue of :class:`~repro.api.DiscSession`'s index-once contract,
* request/computation counters for ``/stats``.

Selections run the same heuristics as :func:`repro.api.disc_select`
over the same validated :class:`~repro.requests.SelectRequest`, so a
served response is byte-identical to a direct library call (pinned by
``tests/test_service.py``).  Index cost counters are shared across
concurrent requests and therefore only advisory here; the serving
response deliberately reports wall-clock, not per-request counter
deltas.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Tuple

from repro.cancellation import CancellationToken, cancellation_scope
from repro.core import zoom_in, zoom_out
from repro.core.result import DiscResult
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.requests import METHODS, EngineSpec, SelectRequest
from repro.service.cache import LazyMigration, SharedCacheManager
from repro.service.registry import DatasetHandle, DatasetRegistry
from repro.service.resilience import resolve_deadline
from repro.validation import validate_radius

__all__ = ["ServiceState", "canonical_key"]


def canonical_key(kind: str, dataset_id: str, payload: dict) -> str:
    """The single-flight identity of one request.

    Two requests coalesce iff their canonical keys match: same
    endpoint, same dataset, same *validated* request payload (so
    ``method: "GREEDY"`` and ``method: "greedy"`` coalesce, while any
    semantic difference — radius, method option, engine — keeps them
    apart).
    """
    import json

    return json.dumps(
        {"kind": kind, "dataset": dataset_id, "payload": payload},
        sort_keys=True,
        separators=(",", ":"),
    )


class ServiceState:
    """Process-wide serving state shared by every connection.

    Parameters
    ----------
    registry:
        Dataset catalogue (a fresh empty one by default).
    cache:
        A :class:`SharedCacheManager`, or None to serve without the
        shared adjacency cache (every request rebuilds — the baseline
        the load harness measures against).
    engine:
        Default engine spec for requests that do not name one.
    workers:
        Thread-pool size — the compute admission bound.
    max_inflight:
        Hard cap on queued + running computations; beyond it the server
        answers 503 instead of buffering unboundedly.
    coalesce:
        Whether the server single-flights identical concurrent
        requests (toggleable so the load harness can measure the win).
    reuse_indexes:
        When False, every computation builds a fresh index and nothing
        is shared — the stateless "fresh ``disc_select`` per request"
        baseline the load harness measures the shared-cache
        configuration against.
    default_timeout_ms:
        Deadline applied to requests that carry no ``timeout_ms`` of
        their own (None = such requests run unbounded).
    max_timeout_ms:
        Server-enforced cap on client deadlines (None = uncapped).  A
        client budget cut by this cap expires as 504, not 408.
    faults:
        Optional :class:`~repro.service.faults.FaultInjector` driving
        the worker-stall and connection-reset injection points (the
        cache-level points hang off the :class:`SharedCacheManager`).
    """

    #: Lock discipline (convention in :mod:`repro.engines.cache`,
    #: enforced by ``repro lint``): the ``/stats`` counters move under
    #: the dedicated counter lock so hot-path increments never contend
    #: with index builds, which serialise on ``self._lock``.
    _GUARDED_BY = {
        "requests": "self._counter_lock",
        "responses": "self._counter_lock",
        "computations": "self._counter_lock",
        "coalesced_requests": "self._counter_lock",
        "degraded_responses": "self._counter_lock",
        "timeouts": "self._counter_lock",
        "inflight": "self._counter_lock",
        "mutations_applied": "self._counter_lock",
        "_indexes": "self._lock",
        "_index_locks": "self._lock",
    }

    def __init__(
        self,
        registry: Optional[DatasetRegistry] = None,
        *,
        cache: Optional[SharedCacheManager] = None,
        engine: str = "auto",
        engine_options: Optional[dict] = None,
        workers: int = 4,
        max_inflight: Optional[int] = 64,
        coalesce: bool = True,
        reuse_indexes: bool = True,
        default_timeout_ms: Optional[float] = None,
        max_timeout_ms: Optional[float] = None,
        faults=None,
        identity: Optional[dict] = None,
        metrics: Optional[obs_metrics.MetricsRegistry] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        for name, value in (
            ("default_timeout_ms", default_timeout_ms),
            ("max_timeout_ms", max_timeout_ms),
        ):
            if value is not None and not value > 0:
                raise ValueError(f"{name} must be > 0, got {value}")
        self.registry = registry if registry is not None else DatasetRegistry()
        self.cache = cache
        self.default_engine = EngineSpec(
            name=engine, options=dict(engine_options or {})
        ).validate()
        self.workers = workers
        self.max_inflight = max_inflight
        self.coalesce = coalesce
        self.reuse_indexes = reuse_indexes
        self.default_timeout_ms = default_timeout_ms
        self.max_timeout_ms = max_timeout_ms
        self.faults = faults
        #: Who this process is in a supervised cluster (worker id/pid);
        #: None for a plain single-process server.  Rendered verbatim
        #: under ``/stats`` -> ``worker`` so the front's rollup can
        #: label each worker's counters.
        self.identity = dict(identity) if identity else None
        #: Metrics registry shared with the server/cache instruments;
        #: defaults to the process-wide one (``GET /metrics``), but
        #: tests can pass an isolated registry.
        self.metrics = metrics if metrics is not None else obs_metrics.registry()
        self._m_phase = self.metrics.histogram(
            "repro_phase_duration_seconds",
            "Measured compute-phase durations, by phase",
            labelnames=("phase",),
        )
        self._m_computations = self.metrics.counter(
            "repro_computations_total", "Selections/zooms/mutations executed"
        )
        self._m_degraded = self.metrics.counter(
            "repro_degraded_responses_total", "Responses served from the stale tier"
        )
        self.executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="disc-service"
        )
        self.started_at = time.time()
        self._indexes: Dict[Tuple[str, str], object] = {}
        self._index_locks: Dict[Tuple[str, str], threading.Lock] = {}
        self._lock = threading.Lock()
        # ``/stats`` counters (server increments requests/coalesced on
        # the event loop; computations increment in worker threads).
        self.requests: Dict[str, int] = {}
        self.responses: Dict[str, int] = {}
        self.computations = 0
        self.coalesced_requests = 0
        self.degraded_responses = 0
        self.timeouts = 0
        self.inflight = 0
        self.mutations_applied = 0
        self._counter_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    def count_request(self, endpoint: str) -> None:
        with self._counter_lock:
            self.requests[endpoint] = self.requests.get(endpoint, 0) + 1

    def count_response(self, status: int) -> None:
        with self._counter_lock:
            key = str(status)
            self.responses[key] = self.responses.get(key, 0) + 1
            if status in (408, 504):
                self.timeouts += 1

    def count_coalesced(self) -> None:
        with self._counter_lock:
            self.coalesced_requests += 1

    def count_computation(self) -> None:
        with self._counter_lock:
            self.computations += 1
        self._m_computations.inc()

    def count_degraded(self) -> None:
        with self._counter_lock:
            self.degraded_responses += 1
        self._m_degraded.inc()

    def count_mutation(self) -> None:
        with self._counter_lock:
            self.mutations_applied += 1

    def adjust_inflight(self, delta: int) -> int:
        """Move the in-flight gauge under the counter lock.

        The server calls this from the event loop and ``/stats`` reads
        the gauge from whatever thread serves it; unlocked ``+=`` here
        was the torn-read the counter-consistency test pins.
        """
        with self._counter_lock:
            self.inflight += delta
            return self.inflight

    def current_inflight(self) -> int:
        with self._counter_lock:
            return self.inflight

    # ------------------------------------------------------------------
    # Deadlines
    # ------------------------------------------------------------------
    def deadline_token(self, timeout_ms: Optional[float]) -> CancellationToken:
        """A :class:`CancellationToken` for one request's budget."""
        seconds, source = resolve_deadline(
            timeout_ms,
            default_timeout_ms=self.default_timeout_ms,
            max_timeout_ms=self.max_timeout_ms,
        )
        return CancellationToken.with_timeout(seconds, source=source)

    # ------------------------------------------------------------------
    # Validation (cheap, runs on the event loop)
    # ------------------------------------------------------------------
    def validate_select(self, payload: dict) -> Tuple[DatasetHandle, SelectRequest]:
        """Resolve dataset + request from a ``/select`` body.

        The body is ``{"dataset": name, ...SelectRequest fields...}`` or
        ``{"dataset": name, "request": {...}}``.  Raises ``KeyError``
        for unknown datasets (→ 404) and ``ValueError``/``TypeError``
        for malformed requests (→ 400), before any compute is queued.
        """
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        if "dataset" not in payload:
            raise ValueError("request body is missing the 'dataset' field")
        handle = self.registry.get(str(payload["dataset"]))
        body = payload.get("request")
        if body is None:
            body = {
                key: value
                for key, value in payload.items()
                if key != "dataset"
            }
        request = SelectRequest.coerce(body)
        if "engine" not in (body or {}):
            request = SelectRequest(
                radius=request.radius,
                method=request.method,
                method_options=request.method_options,
                engine=self.default_engine,
            )
        return handle, request.validate()

    def validate_zoom(
        self, payload: dict
    ) -> Tuple[DatasetHandle, SelectRequest, float, dict, Optional[dict]]:
        """Resolve a ``/zoom`` body: select at ``radius``, adapt to ``to``.

        Returns ``(handle, select_request, to_radius, zoom_options,
        previous)``; ``zoom_options`` carries ``greedy`` (zoom-in) /
        ``variant`` (zoom-out).  ``previous`` is the validated
        client-held base solution when the body carries one (see
        :meth:`_validate_previous`), else None — with it the server
        *adapts* the client's selection instead of recomputing the base
        selection first.
        """
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        if "to" not in payload:
            raise ValueError("zoom body is missing the 'to' field")
        to_radius = validate_radius(payload["to"], name="to")
        raw_previous = payload.get("previous")
        if "request" in payload:
            # Same nested form /select accepts.
            select_payload = {
                "dataset": payload.get("dataset"),
                "request": payload["request"],
            }
            if select_payload["dataset"] is None:
                select_payload.pop("dataset")
        else:
            select_payload = {
                key: value
                for key, value in payload.items()
                if key in ("dataset", "radius", "method", "method_options", "engine")
            }
            if raw_previous is not None and "radius" not in select_payload:
                # A client replaying its held solution need not restate
                # the radius it was computed at.
                if isinstance(raw_previous, dict) and "radius" in raw_previous:
                    select_payload["radius"] = raw_previous["radius"]
        handle, request = self.validate_select(select_payload)
        if to_radius == request.radius:
            raise ValueError(
                f"'to' must differ from 'radius' (both {to_radius})"
            )
        zoom_options = {
            "greedy": bool(payload.get("greedy", True)),
            "variant": payload.get("variant", "a"),
        }
        previous = self._validate_previous(handle, request, raw_previous)
        # The closest-black distances of Section 5.2 are what makes the
        # base solution zoomable.
        request = request.with_options(track_closest_black=True).validate()
        return handle, request, to_radius, zoom_options, previous

    @staticmethod
    def _validate_previous(
        handle: DatasetHandle, request: SelectRequest, raw
    ) -> Optional[dict]:
        """Validate a client-held ``previous`` solution for ``/zoom``.

        Accepted shape: ``{"selected": [ids...], "radius": r?,
        "closest_black": [...]?, "closest_black_exact": bool?,
        "version": int?}``.  Ids must be valid rows of the handle;
        ``closest_black`` (when provided) must cover every row.  For
        live datasets a stale ``version`` is rejected so a client never
        adapts a selection against points it was not computed on.
        """
        if raw is None:
            return None
        if not isinstance(raw, dict):
            raise ValueError("'previous' must be an object")
        unknown = set(raw) - {
            "selected", "radius", "closest_black", "closest_black_exact",
            "version",
        }
        if unknown:
            raise ValueError(
                f"'previous' has unknown fields {sorted(unknown)}"
            )
        if "selected" not in raw:
            raise ValueError("'previous' is missing the 'selected' field")
        selected_raw = raw["selected"]
        if not isinstance(selected_raw, (list, tuple)):
            raise ValueError("'previous.selected' must be a list of ids")
        selected = []
        for value in selected_raw:
            if isinstance(value, bool) or not isinstance(value, int):
                raise ValueError(
                    "'previous.selected' must contain integer ids"
                )
            if not 0 <= value < handle.n:
                raise ValueError(
                    f"'previous.selected' id {value} is out of range for "
                    f"dataset {handle.dataset_id!r} (n={handle.n})"
                )
            selected.append(int(value))
        if len(set(selected)) != len(selected):
            raise ValueError("'previous.selected' contains duplicate ids")
        if "radius" in raw:
            prev_radius = validate_radius(raw["radius"], name="previous.radius")
            if prev_radius != request.radius:
                raise ValueError(
                    f"'previous.radius' ({prev_radius}) disagrees with the "
                    f"request radius ({request.radius})"
                )
        closest = raw.get("closest_black")
        if closest is not None:
            if not isinstance(closest, (list, tuple)) or len(closest) != handle.n:
                raise ValueError(
                    "'previous.closest_black' must list one distance per "
                    f"point (n={handle.n})"
                )
        if "version" in raw:
            version = raw["version"]
            if isinstance(version, bool) or not isinstance(version, int):
                raise ValueError("'previous.version' must be an integer")
            live_version = handle.spec.get("version")
            if handle.spec.get("live") and version != live_version:
                raise ValueError(
                    f"'previous.version' ({version}) is stale: dataset "
                    f"{handle.spec.get('name')!r} is at version {live_version}; "
                    "re-select or repair via /mutate"
                )
        return {
            "selected": selected,
            "closest_black": None if closest is None else list(closest),
            "closest_black_exact": bool(raw.get("closest_black_exact", False)),
        }

    def validate_mutate(self, payload: dict):
        """Resolve a ``/mutate`` body → ``(live, inserts, deletes, repair)``.

        Body shape: ``{"dataset": name, "inserts": [[...], ...]?,
        "deletes": [ids...]?, "repair": {"radius": r, "previous":
        [ids...], "verify": bool?}?}``.  Unknown datasets raise
        ``KeyError`` (→ 404); immutable datasets and malformed batches
        raise ``ValueError`` (→ 400).  Coordinate/id coercion happens in
        :meth:`MutableDataset.apply` (its :class:`MutationError` is a
        ``ValueError``), so nothing is applied before validation passes.
        """
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        if "dataset" not in payload:
            raise ValueError("request body is missing the 'dataset' field")
        unknown = set(payload) - {"dataset", "inserts", "deletes", "repair"}
        if unknown:
            raise ValueError(f"mutate body has unknown fields {sorted(unknown)}")
        live = self.registry.get_live(str(payload["dataset"]))
        inserts = payload.get("inserts")
        deletes = payload.get("deletes")
        if inserts is None and deletes is None:
            raise ValueError(
                "mutate body needs 'inserts' and/or 'deletes'"
            )
        repair = payload.get("repair")
        if repair is not None:
            if not isinstance(repair, dict):
                raise ValueError("'repair' must be an object")
            unknown = set(repair) - {"radius", "previous", "verify"}
            if unknown:
                raise ValueError(
                    f"'repair' has unknown fields {sorted(unknown)}"
                )
            if "radius" not in repair or "previous" not in repair:
                raise ValueError(
                    "'repair' needs 'radius' and 'previous' (the selection "
                    "to repair)"
                )
            radius = validate_radius(repair["radius"], name="repair.radius")
            previous = repair["previous"]
            if not isinstance(previous, (list, tuple)) or not all(
                isinstance(i, int) and not isinstance(i, bool) and i >= 0
                for i in previous
            ):
                raise ValueError(
                    "'repair.previous' must be a list of non-negative "
                    "global ids"
                )
            repair = {
                "radius": radius,
                "previous": [int(i) for i in previous],
                "verify": bool(repair.get("verify", False)),
            }
        return live, inserts, deletes, repair

    # ------------------------------------------------------------------
    # Index management
    # ------------------------------------------------------------------
    def _engine_key(self, spec: EngineSpec) -> str:
        import json

        return json.dumps(spec.to_dict(), sort_keys=True, separators=(",", ":"))

    def ensure_index(self, handle: DatasetHandle, spec: EngineSpec):
        """The serving index for (dataset, engine spec), built once.

        Resolution happens without a radius hint — one index serves all
        radii of a dataset (exactly like a :class:`~repro.api.
        DiscSession`); the per-radius artefact is the adjacency, which
        lives in the shared cache.
        """
        if not self.reuse_indexes:
            dataset = handle.dataset
            entry, accelerate, options = spec.resolve(
                n=dataset.n, metric=dataset.metric
            )
            return entry.create(
                dataset.points, dataset.metric, accelerate, options
            )
        key = (handle.dataset_id, self._engine_key(spec))
        with self._lock:
            index = self._indexes.get(key)
            if index is not None:
                return index
            build_lock = self._index_locks.setdefault(key, threading.Lock())
        with build_lock:
            with self._lock:
                index = self._indexes.get(key)
                if index is not None:
                    return index
            dataset = handle.dataset
            entry, accelerate, options = spec.resolve(
                n=dataset.n, metric=dataset.metric
            )
            index = entry.create(dataset.points, dataset.metric, accelerate, options)
            if self.cache is not None:
                index.set_adjacency_cache(self._cache_view(handle))
            with self._lock:
                self._indexes[key] = index
            return index

    def _cache_view(self, handle: DatasetHandle):
        """The cache view an index for ``handle`` should attach to.

        Live datasets get a :class:`~repro.live.serving.LiveCacheView`
        so cache misses resolve through the incremental adjacency
        (cheap alive-mask snapshot) instead of the engine's full
        rebuild; immutable datasets keep the plain shared view.
        """
        if handle.spec.get("live"):
            from repro.live.serving import LiveCacheView

            live = self.registry.get_live(handle.spec["name"])
            return LiveCacheView(
                self.cache, handle.dataset_id, handle.dataset.metric, live
            )
        return self.cache.view(handle.dataset_id, handle.dataset.metric)

    def _drop_stale_live_indexes(self, name: str, keep_dataset_id: str) -> int:
        """Evict serving indexes of superseded versions of live ``name``.

        Old versions' handles are unreachable once the registry serves
        the new snapshot, so their indexes (keyed by the version-stamped
        ``dataset_id``) would only leak memory.
        """
        prefix = f"{name}@v"
        dropped = 0
        with self._lock:
            for key in list(self._indexes):
                dataset_id = key[0]
                if dataset_id.startswith(prefix) and dataset_id != keep_dataset_id:
                    del self._indexes[key]
                    self._index_locks.pop(key, None)
                    dropped += 1
        return dropped

    # ------------------------------------------------------------------
    # Execution (runs in worker threads)
    # ------------------------------------------------------------------
    def run_select(
        self,
        handle: DatasetHandle,
        request: SelectRequest,
        token: Optional[CancellationToken] = None,
    ) -> dict:
        """One selection end to end; returns the JSON-ready response.

        Runs inside the worker thread under ``token``'s cancellation
        scope, so the greedy loops and adjacency builders can abort
        cooperatively when the deadline passes.
        """
        self.count_computation()
        if token is None:
            token = CancellationToken()
        t0 = time.perf_counter()
        with cancellation_scope(token):
            token.checkpoint()  # expired while queued: free the slot now
            if self.faults is not None:
                self.faults.on_compute()
            index = self.ensure_index(handle, request.engine)
            self._annotate_features(handle, request)
            algorithm = METHODS[request.method]
            with obs_trace.phase("selection", method=request.method):
                sel0 = time.perf_counter()
                result = algorithm(
                    index, request.radius, **dict(request.method_options)
                )
            self._m_phase.observe(time.perf_counter() - sel0, phase="selection")
        degraded = token.degraded is not None
        if degraded:
            self.count_degraded()
        response = {
            "dataset": handle.dataset_id,
            "request": request.to_dict(),
            "result": result.to_dict(),
            "elapsed_s": round(time.perf_counter() - t0, 6),
            "degraded": degraded,
        }
        self._stamp_live(handle, response, result)
        return response

    def _annotate_features(self, handle: DatasetHandle, request: SelectRequest) -> None:
        """Stamp the request feature vector on the trace root.

        These are the workload features the ROADMAP's adaptive-policy
        item needs next to the measured phase timings: the sink record
        carries them under ``features``.  No-op outside a trace.
        """
        if obs_trace.current_span() is None:
            return
        dataset = handle.dataset
        features = request.trace_features()
        features["dataset"] = handle.dataset_id
        features["n"] = int(dataset.n)
        features["metric"] = str(getattr(dataset.metric, "name", dataset.metric))
        if handle.spec.get("live"):
            features["live_version"] = handle.spec.get("version")
        obs_trace.annotate_root(features=features)

    @staticmethod
    def _stamp_live(handle: DatasetHandle, response: dict, result) -> None:
        """Version-stamp a live dataset's response.

        Adds ``version`` and ``selected_global`` (the selection mapped
        through the snapshot's local→global id map), so the client sees
        stable ids it can later delete or repair — consistent with the
        version the request actually computed on even if the dataset
        mutated mid-flight.  Immutable responses are untouched.
        """
        spec = handle.spec
        if not spec.get("live"):
            return
        response["version"] = spec.get("version")
        alive_ids = spec.get("alive_ids")
        if alive_ids is not None:
            response["selected_global"] = [
                int(alive_ids[i]) for i in result.selected
            ]

    def run_zoom(
        self,
        handle: DatasetHandle,
        request: SelectRequest,
        to_radius: float,
        zoom_options: dict,
        token: Optional[CancellationToken] = None,
        previous: Optional[dict] = None,
    ) -> dict:
        """Select at ``request.radius``, then adapt to ``to_radius``.

        With ``previous`` (a validated client-held solution from
        :meth:`validate_zoom`) the base selection is *not* recomputed:
        the client's selected set becomes the zoom's starting point —
        the session statefulness of the paper's Section 5.2 without the
        server holding per-client state.
        """
        self.count_computation()
        if token is None:
            token = CancellationToken()
        t0 = time.perf_counter()
        with cancellation_scope(token):
            token.checkpoint()
            if self.faults is not None:
                self.faults.on_compute()
            index = self.ensure_index(handle, request.engine)
            self._annotate_features(handle, request)
            obs_trace.annotate_root(to_radius=float(to_radius))
            with obs_trace.phase("selection", method=request.method):
                sel0 = time.perf_counter()
                if previous is not None:
                    first = self._result_from_previous(request, previous)
                else:
                    algorithm = METHODS[request.method]
                    first = algorithm(
                        index, request.radius, **dict(request.method_options)
                    )
                if to_radius < request.radius:
                    direction = "in"
                    adapted = zoom_in(
                        index, first, to_radius,
                        greedy=zoom_options.get("greedy", True),
                    )
                else:
                    direction = "out"
                    adapted = zoom_out(
                        index, first, to_radius,
                        greedy_variant=zoom_options.get("variant", "a"),
                    )
            self._m_phase.observe(time.perf_counter() - sel0, phase="selection")
        degraded = token.degraded is not None
        if degraded:
            self.count_degraded()
        response = {
            "dataset": handle.dataset_id,
            "request": request.to_dict(),
            "to": float(to_radius),
            "direction": direction,
            "from_result": first.to_dict(),
            "result": adapted.to_dict(),
            "elapsed_s": round(time.perf_counter() - t0, 6),
            "degraded": degraded,
        }
        if previous is not None:
            response["adapted_previous"] = True
        self._stamp_live(handle, response, adapted)
        return response

    @staticmethod
    def _result_from_previous(request: SelectRequest, previous: dict):
        """Rebuild a :class:`DiscResult` from a client-held solution.

        ``closest_black_exact`` is only honoured when the distances were
        actually supplied; otherwise zoom-in recomputes them from the
        selected set (:func:`~repro.core.zoom.recompute_closest_black`
        path inside ``zoom_in``).
        """
        import numpy as np

        closest = previous.get("closest_black")
        closest_arr = None if closest is None else np.asarray(closest, dtype=float)
        exact = bool(previous.get("closest_black_exact")) and closest_arr is not None
        return DiscResult(
            selected=list(previous["selected"]),
            radius=request.radius,
            algorithm="client-previous",
            closest_black=closest_arr,
            meta={"closest_black_exact": exact},
        )

    def run_mutate(
        self,
        live,
        inserts,
        deletes,
        repair: Optional[dict] = None,
        token: Optional[CancellationToken] = None,
    ) -> dict:
        """One mutation batch end to end: apply, migrate caches, repair.

        Everything runs under the live dataset's lock so concurrent
        mutations serialise and the cache migration + repair observe
        exactly the version this batch produced.  The adjacency work is
        incremental (appends touch only the affected grid cells; deletes
        are an alive-mask filter), and fresh-tier cache entries migrate
        to the new version's keys instead of being dropped — the next
        ``/select`` hits warm.
        """
        self.count_computation()
        if token is None:
            token = CancellationToken()
        t0 = time.perf_counter()
        with cancellation_scope(token):
            token.checkpoint()
            if self.faults is not None:
                self.faults.on_compute()
            with live.lock:
                old_id = live.dataset_id
                delta = live.apply(inserts, deletes)
                new_id = live.dataset_id

                def patcher(metric_name: str, bucket: float):
                    if metric_name != live.metric.name:
                        return None
                    # Lazy: install the recipe, not the compacted CSR.
                    # The mask pins the bucket to *this* version even
                    # if the dataset mutates again before the first
                    # read resolves it.
                    mask = live.alive_mask()

                    def resolve(bucket=bucket, mask=mask):
                        return live.adjacency_snapshot_for_mask(
                            bucket, mask
                        )

                    return LazyMigration(
                        resolve, live.adjacency_nbytes(bucket)
                    )

                migrated = 0
                if self.cache is not None:
                    with obs_trace.phase("cache-migrate"):
                        migrated = self.cache.migrate_dataset(
                            old_id, new_id, patcher
                        )
                self._drop_stale_live_indexes(live.name, new_id)
                repair_out = None
                if repair is not None:
                    with obs_trace.phase("repair"):
                        rep0 = time.perf_counter()
                        repair_out = self._repair_selection(live, repair, delta)
                    self._m_phase.observe(
                        time.perf_counter() - rep0, phase="repair"
                    )
        self.count_mutation()
        degraded = token.degraded is not None
        if degraded:
            self.count_degraded()
        response = {
            "dataset": live.name,
            "dataset_id": new_id,
            "version": delta["version"],
            "inserted": delta["inserted"],
            "deleted": delta["deleted"],
            "n_alive": delta["n_alive"],
            "n_total": delta["n_total"],
            "migrated_buckets": migrated,
            "elapsed_s": round(time.perf_counter() - t0, 6),
            "degraded": degraded,
        }
        if repair_out is not None:
            response["repair"] = repair_out
        return response

    @staticmethod
    def _repair_selection(live, repair: dict, delta: dict) -> dict:
        """Repair a client selection against the just-mutated version.

        Takes the O(delta) path: the batch the caller just applied is
        exactly the delta between the version ``previous`` was computed
        for and the current one, so the frontier walk never compacts
        the adjacency.  Runs inside the caller's cancellation scope, so
        the greedy re-cover loop honours the request deadline.
        """
        from repro.live.repair import repair_selection_delta

        adjacency = live.ensure_adjacency(repair["radius"])
        out = repair_selection_delta(
            adjacency,
            live.alive_mask(),
            repair["previous"],
            deleted=delta["deleted"],
            inserted=delta["inserted"],
        )
        if repair.get("verify"):
            from repro.core.verify import verify_disc

            handle = live.snapshot_handle()
            report = verify_disc(
                handle.dataset.points,
                handle.dataset.metric,
                out["local"],
                repair["radius"],
            )
            out["verified"] = bool(report.is_disc_diverse)
        out.pop("local", None)
        out["radius"] = float(repair["radius"])
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """The ``/stats`` payload (plain JSON-serialisable dict)."""
        with self._counter_lock:
            counters = {
                "requests": dict(self.requests),
                "responses": dict(self.responses),
                "computations": self.computations,
                "coalesced_requests": self.coalesced_requests,
                "degraded_responses": self.degraded_responses,
                "timeouts": self.timeouts,
                "inflight": self.inflight,
                "mutations_applied": self.mutations_applied,
            }
        with self._lock:
            indexes = [
                {"dataset": dataset, "engine": engine_key}
                for dataset, engine_key in self._indexes
            ]
        return {
            "uptime_s": round(time.time() - self.started_at, 3),
            "worker": self.identity,
            "workers": self.workers,
            "max_inflight": self.max_inflight,
            "coalesce": self.coalesce,
            "default_timeout_ms": self.default_timeout_ms,
            "max_timeout_ms": self.max_timeout_ms,
            **counters,
            # Executor backlog: computations admitted but not yet
            # running (inflight counts queued + running; this isolates
            # the queued component the rollup was blind to).
            "queue_depth": self.executor._work_queue.qsize(),
            "indexes": indexes,
            "cache": None if self.cache is None else self.cache.cache_info(),
            "faults": None if self.faults is None else self.faults.counters(),
            "datasets": self.registry.describe(),
            "metrics": self.metrics.snapshot(),
        }

    def close(self) -> None:
        self.executor.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ServiceState(datasets={len(self.registry)}, "
            f"indexes={len(self._indexes)}, workers={self.workers}, "
            f"cache={'on' if self.cache is not None else 'off'})"
        )

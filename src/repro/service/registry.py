"""Named-dataset registry: load once per process, hand out immutable handles.

A serving process hosts a handful of datasets queried by many users.
Loading (file parsing, synthetic generation) must happen once, the
loaded arrays must be safe to share across request threads, and the
``/datasets`` endpoint needs a catalogue it can describe without
forcing loads.  :class:`DatasetRegistry` provides exactly that:

* **specs** — a name bound to a zero-argument loader (built-in
  generators via :meth:`register_builtin`, arbitrary callables via
  :meth:`register_spec`), loaded lazily on first :meth:`get`;
* **arrays** — user-uploaded points registered directly with
  :meth:`register_array`;
* **handles** — every load returns the same :class:`DatasetHandle`
  (identity-stable, so ``handle.dataset_id`` can key the shared
  adjacency cache), with the point matrix marked read-only so no
  request can mutate data other sessions compute on.

Loads are guarded per name: two first-requests for the same dataset
coalesce into one load, while loads of *different* datasets proceed in
parallel.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.datasets import (
    Dataset,
    cameras_dataset,
    cities_dataset,
    clustered_dataset,
    uniform_dataset,
)
from repro.distance import get_metric

__all__ = ["DatasetHandle", "DatasetRegistry", "BUILTIN_DATASETS"]

#: Built-in generator families: name -> (loader(n, seed), default n).
#: The defaults match the CLI so ``repro serve`` and ``repro select``
#: agree on what plain "cities" means.
BUILTIN_DATASETS: Dict[str, tuple] = {
    "uniform": (lambda n, seed: uniform_dataset(n=n, seed=seed), 2500),
    "clustered": (lambda n, seed: clustered_dataset(n=n, seed=seed), 2500),
    "cities": (lambda n, seed: cities_dataset(n=n, seed=seed), 2000),
    "cameras": (lambda n, seed: cameras_dataset(n=n, seed=seed), 579),
}


@dataclass(frozen=True)
class DatasetHandle:
    """An immutable reference to one loaded dataset.

    ``dataset_id`` is the registry name — unique within the process and
    stable across requests, which is what the shared adjacency cache
    keys on.  ``dataset.points`` is marked read-only at load time.
    """

    dataset_id: str
    dataset: Dataset
    spec: dict = field(default_factory=dict)

    @property
    def n(self) -> int:
        return self.dataset.n

    @property
    def metric(self):
        return self.dataset.metric


class DatasetRegistry:
    """Name -> dataset catalogue with load-once semantics.

    Datasets are immutable by default.  A dataset *promoted to live*
    (:meth:`register_live` / :meth:`promote_live`) is instead backed by
    a :class:`~repro.live.dataset.MutableDataset`: :meth:`get` returns
    the current version's frozen snapshot handle (``dataset_id`` =
    ``name@v<version>``), and :meth:`get_live` exposes the mutable
    overlay to the ``/mutate`` path.
    """

    def __init__(self) -> None:
        self._specs: Dict[str, dict] = {}
        self._handles: Dict[str, DatasetHandle] = {}
        self._live: Dict[str, object] = {}
        self._lock = threading.Lock()
        self._load_locks: Dict[str, threading.Lock] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_spec(
        self, name: str, loader: Callable[[], Dataset], **describe
    ) -> None:
        """Register a lazily-loaded dataset under ``name``.

        ``loader`` takes no arguments and returns a
        :class:`~repro.datasets.base.Dataset`; ``describe`` keywords
        appear in the catalogue before the dataset is loaded.
        """
        with self._lock:
            if name in self._specs:
                raise ValueError(f"dataset {name!r} is already registered")
            self._specs[name] = {"loader": loader, "describe": dict(describe)}
            self._load_locks[name] = threading.Lock()

    def register_builtin(
        self, name: str, *, n: Optional[int] = None, seed: int = 42
    ) -> None:
        """Register one of the paper's generator families by name."""
        try:
            loader, default_n = BUILTIN_DATASETS[name]
        except KeyError:
            raise ValueError(
                f"unknown built-in dataset {name!r}; "
                f"choose from {sorted(BUILTIN_DATASETS)}"
            ) from None
        size = default_n if n is None else int(n)
        self.register_spec(
            name, lambda: loader(size, seed), family=name, n=size, seed=seed
        )

    def register_array(self, name: str, points, metric) -> DatasetHandle:
        """Register user-supplied points directly (loaded immediately)."""
        import numpy as np

        points = np.asarray(points)
        dataset = Dataset(name=name, points=points, metric=get_metric(metric))
        with self._lock:
            if name in self._specs or name in self._handles:
                raise ValueError(f"dataset {name!r} is already registered")
            handle = self._freeze(name, dataset, spec={"family": "array"})
            self._handles[name] = handle
        return handle

    def register_live(self, name: str, dataset: Dataset):
        """Register ``dataset`` as a *mutable* live dataset.

        Returns the backing :class:`~repro.live.dataset.MutableDataset`.
        """
        from repro.live.dataset import MutableDataset

        live = MutableDataset(name, dataset)
        with self._lock:
            if name in self._specs or name in self._handles or name in self._live:
                raise ValueError(f"dataset {name!r} is already registered")
            self._live[name] = live
        return live

    def promote_live(self, name: str):
        """Convert a registered (possibly lazy) dataset into a live one.

        The spec is loaded if needed; the loaded points seed version 0.
        Returns the :class:`~repro.live.dataset.MutableDataset`.
        """
        from repro.live.dataset import MutableDataset

        with self._lock:
            existing = self._live.get(name)
        if existing is not None:
            return existing
        handle = self.get(name)  # loads via the normal guarded path
        live = MutableDataset(name, handle.dataset)
        with self._lock:
            already = self._live.get(name)
            if already is not None:
                return already
            self._live[name] = live
            self._handles.pop(name, None)
            self._specs.pop(name, None)
        return live

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get_live(self, name: str):
        """The :class:`MutableDataset` behind a live name (KeyError → 404
        for unknown names, ValueError → 400 for immutable ones)."""
        with self._lock:
            live = self._live.get(name)
            if live is not None:
                return live
            if name in self._specs or name in self._handles:
                raise ValueError(
                    f"dataset {name!r} is immutable; serve it with live "
                    "registration to accept mutations"
                )
        known = self.names()
        raise KeyError(f"unknown dataset {name!r}; registered: {known}")

    def is_live(self, name: str) -> bool:
        with self._lock:
            return name in self._live

    def live_names(self) -> List[str]:
        with self._lock:
            return sorted(self._live)

    def get(self, name: str) -> DatasetHandle:
        """The handle for ``name``, loading it on first request.

        For live datasets this is the *current version's* frozen
        snapshot handle.  Raises ``KeyError`` for unregistered names
        (the server maps this to a 404).
        """
        with self._lock:
            live = self._live.get(name)
        if live is not None:
            # Outside the registry lock: the snapshot serialises on the
            # live dataset's own lock (one lock at a time, no ordering).
            return live.snapshot_handle()
        with self._lock:
            handle = self._handles.get(name)
            if handle is not None:
                return handle
            spec = self._specs.get(name)
            if spec is None:
                known = sorted(set(self._specs) | set(self._handles))
                raise KeyError(f"unknown dataset {name!r}; registered: {known}")
            load_lock = self._load_locks[name]
        with load_lock:
            # Double-checked: a concurrent first-request may have loaded
            # while this thread waited on the per-name lock.
            with self._lock:
                handle = self._handles.get(name)
                if handle is not None:
                    return handle
            dataset = spec["loader"]()
            if not isinstance(dataset, Dataset):
                raise TypeError(
                    f"loader for {name!r} returned {type(dataset).__name__}, "
                    "expected repro.datasets.Dataset"
                )
            handle = self._freeze(name, dataset, spec=dict(spec["describe"]))
            with self._lock:
                self._handles[name] = handle
            return handle

    @staticmethod
    def _freeze(name: str, dataset: Dataset, spec: dict) -> DatasetHandle:
        dataset.points.setflags(write=False)
        return DatasetHandle(dataset_id=name, dataset=dataset, spec=spec)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(
                set(self._specs) | set(self._handles) | set(self._live)
            )

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return (
                name in self._specs
                or name in self._handles
                or name in self._live
            )

    def __len__(self) -> int:
        return len(self.names())

    def describe(self) -> List[dict]:
        """The ``/datasets`` catalogue (loaded and not-yet-loaded)."""
        out = []
        for name in self.names():
            with self._lock:
                live = self._live.get(name)
                handle = self._handles.get(name)
                spec = self._specs.get(name)
            if live is not None:
                out.append(live.describe())
            elif handle is not None:
                out.append(
                    {
                        "id": name,
                        "loaded": True,
                        "n": handle.dataset.n,
                        "dim": handle.dataset.dim,
                        "metric": handle.dataset.metric.name,
                        "spec": handle.spec,
                    }
                )
            else:
                out.append(
                    {"id": name, "loaded": False, "spec": dict(spec["describe"])}
                )
        return out

    def __repr__(self) -> str:  # pragma: no cover - trivial
        loaded = sum(1 for n in self.names() if n in self._handles)
        return f"DatasetRegistry({len(self)} datasets, {loaded} loaded)"

"""Cross-process shared-memory segments for adjacency and coordinates.

One adjacency build should serve every worker process.  The CSR and
blocked engines are already flat arrays (``indptr``/``indices`` plus
the block side arrays), so the natural cross-process form is a
:mod:`multiprocessing.shared_memory` segment holding the raw array
bytes — workers attach zero-copy NumPy views instead of rebuilding.

The hard part is the *lifecycle*, not the bytes.  This module owns it:

Ownership protocol (``builds == unique radii`` cluster-wide)
    Every logical key (an adjacency, a dataset's coordinates) maps to a
    deterministic segment name.  Exactly one process may create the
    small *meta* segment for a key — ``SharedMemory(create=True)`` is
    exclusive, so the kernel arbitrates the claim.  The claimer builds
    and publishes; everyone else attaches, or waits while the meta
    segment says "building".  A claimer that dies mid-build (even
    ``kill -9``) is detected by a pid liveness probe on the recorded
    owner, and the claim is *taken over*: the stale segments are
    unlinked and the next process re-claims.

Checksum stamps (a torn segment is rebuilt, never served)
    The payload bytes are stamped with a CRC32 at publish time and the
    meta segment's status byte flips to READY only after the stamp is
    written.  Attach verifies the CRC before handing out views; any
    mismatch (torn write, external corruption) unlinks the segments
    and reports a miss so the caller rebuilds.

Orphan sweep (``kill -9`` cannot leak ``/dev/shm``)
    Segments are namespaced by a per-cluster *run id* whose *lease*
    segment records the supervisor pid.  :func:`sweep_orphans` scans
    ``/dev/shm`` for this module's prefix and unlinks every run whose
    lease owner is dead (or whose lease is missing); the supervisor
    runs it at startup and again at shutdown, and the chaos suite
    asserts the post-teardown sweep finds nothing.

Refcounting
    Attached segments must outlive every NumPy view handed out, so the
    :class:`SharedSegmentStore` keeps one refcounted handle per
    segment and closes it when the count drops to zero (or at
    :meth:`~SharedSegmentStore.close`).  On Python < 3.13 the
    ``resource_tracker`` would unlink attached segments when *any*
    process exits; every handle is unregistered from it immediately —
    lifecycle belongs to this module's sweep, not to the tracker.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import threading
import time
import zlib
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cancellation import OperationCancelled

__all__ = [
    "SegmentClaim",
    "SharedSegmentStore",
    "decode_adjacency",
    "encode_adjacency",
    "list_run_segments",
    "new_run_id",
    "shm_available",
    "sweep_orphans",
    "sweep_run",
]

#: Segment-name prefix for everything this module creates.  Kept short:
#: POSIX shm names are limited (NAME_MAX minus the implementation's own
#: slash) and the name carries a run id plus a key digest.
_PREFIX = "dsc-"

#: Fixed size of a meta (claim) segment: header + JSON descriptor.  A
#: descriptor is a handful of array names/dtypes/shapes — a few hundred
#: bytes; 8 KiB leaves room without wasting pages.
_META_SIZE = 8192

_MAGIC = b"DISCSHM1"
# Header: magic(8s) status(B) owner_pid(Q) created(d) crc32(I) desc_len(I)
_HEADER = struct.Struct("<8sBQdII")

_STATUS_BUILDING = 0
_STATUS_READY = 1
_STATUS_FAILED = 2

#: Payload arrays are laid out on cache-line boundaries.
_ALIGN = 64


def shm_available() -> bool:
    """Whether POSIX shared memory (and the sweep's ``/dev/shm``) exists."""
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - stdlib always has it
        return False
    return os.path.isdir("/dev/shm")


def new_run_id() -> str:
    """A short random id namespacing one cluster's segments."""
    return os.urandom(4).hex()


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-user process
        return True
    return True


def _untrack(shm) -> None:
    """Detach a segment from the resource tracker (we own its lifecycle).

    Python < 3.13 registers both created and attached segments with the
    ``resource_tracker``, which unlinks them when the registering
    process exits — exactly wrong for segments meant to outlive their
    builder.  Unregistering is the documented workaround; guarded so a
    tracker-less interpreter (or a future API change) degrades to the
    tracker's behavior instead of crashing.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover  # repro-lint: disable=swallowed-cancellation -- tracker unregister cannot checkpoint; failure degrades to tracker-managed lifecycle
        pass


def _open_segment(name: str, *, create: bool = False, size: int = 0, untrack: bool = True):
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=name, create=create, size=size)
    if untrack:
        _untrack(shm)
    return shm


def _unlink_quiet(name: str) -> bool:
    """Unlink a segment by name; True when this call removed it.

    The handle stays *tracked* so ``unlink()``'s own unregister balances
    the open's register — untracking first would make the tracker log a
    KeyError for every sweep.
    """
    try:
        shm = _open_segment(name, untrack=False)
    except FileNotFoundError:
        return False
    removed = True
    try:
        shm.unlink()
    except FileNotFoundError:  # lost the unlink race to another process
        _untrack(shm)
        removed = False
    shm.close()
    return removed


def _key_digest(key: str) -> str:
    return hashlib.sha1(key.encode("utf-8")).hexdigest()[:16]


def _run_prefix(run_id: str) -> str:
    return f"{_PREFIX}{run_id}-"


def list_run_segments(run_id: str) -> List[str]:
    """Names of this run's live segments (empty off-Linux)."""
    if not os.path.isdir("/dev/shm"):
        return []
    prefix = _run_prefix(run_id)
    return sorted(
        name for name in os.listdir("/dev/shm") if name.startswith(prefix)
    )


def sweep_run(run_id: str) -> List[str]:
    """Unlink every segment of one run unconditionally; returns names."""
    removed = []
    for name in list_run_segments(run_id):
        if _unlink_quiet(name):
            removed.append(name)
    return removed


def sweep_orphans(active_run_ids: Tuple[str, ...] = ()) -> List[str]:
    """Unlink all segments of runs whose lease owner is dead.

    A run's lease segment (``dsc-<run>-lease``) records the supervising
    pid; a missing lease or a dead owner marks the whole run orphaned
    (its creator was killed before its own shutdown sweep).  Runs in
    ``active_run_ids`` are never touched, nor are runs with a live
    owner — concurrent clusters on one machine stay isolated.
    """
    if not os.path.isdir("/dev/shm"):
        return []
    runs: Dict[str, List[str]] = {}
    for name in os.listdir("/dev/shm"):
        if not name.startswith(_PREFIX):
            continue
        rest = name[len(_PREFIX):]
        run_id, _, _ = rest.partition("-")
        if run_id:
            runs.setdefault(run_id, []).append(name)
    removed: List[str] = []
    for run_id, names in sorted(runs.items()):
        if run_id in active_run_ids:
            continue
        lease_pid = _read_lease_pid(run_id)
        if lease_pid is not None and _pid_alive(lease_pid):
            continue
        for name in sorted(names):
            if _unlink_quiet(name):
                removed.append(name)
    return removed


def _lease_name(run_id: str) -> str:
    return f"{_PREFIX}{run_id}-lease"


def _read_lease_pid(run_id: str) -> Optional[int]:
    try:
        shm = _open_segment(_lease_name(run_id))
    except FileNotFoundError:
        return None
    try:
        (pid,) = struct.unpack_from("<Q", shm.buf, 0)
        return int(pid)
    except struct.error:  # pragma: no cover - truncated lease
        return None
    finally:
        shm.close()


# ----------------------------------------------------------------------
# Payload encode/decode (adjacency values <-> named flat arrays)
# ----------------------------------------------------------------------
def encode_adjacency(value) -> Optional[Tuple[str, Dict[str, np.ndarray]]]:
    """``(kind, arrays)`` for a shareable adjacency, or None.

    Unknown value types are simply not shared (each process builds its
    own copy) — never an error, the cache must not care.
    """
    from repro.graph.blocked import BlockedNeighborhood
    from repro.graph.csr import CSRNeighborhood

    if isinstance(value, CSRNeighborhood):
        return "csr", value.to_shared_arrays()
    if isinstance(value, BlockedNeighborhood):
        return "blocked", value.to_shared_arrays()
    return None


def decode_adjacency(kind: str, arrays: Dict[str, np.ndarray]):
    """Reconstruct an adjacency from attached shared arrays (zero-copy)."""
    from repro.graph.blocked import BlockedNeighborhood
    from repro.graph.csr import CSRNeighborhood

    if kind == "csr":
        return CSRNeighborhood.from_shared_arrays(arrays)
    if kind == "blocked":
        return BlockedNeighborhood.from_shared_arrays(arrays)
    raise ValueError(f"unknown shared-adjacency kind {kind!r}")


def _plan_layout(arrays: Dict[str, np.ndarray]) -> Tuple[List[dict], int]:
    descriptors = []
    offset = 0
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
        descriptors.append(
            {
                "name": str(name),
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": offset,
            }
        )
        offset += array.nbytes
    return descriptors, max(offset, 1)


class SegmentClaim:
    """Exclusive build ownership of one key (holds the meta segment)."""

    def __init__(self, store: "SharedSegmentStore", key: str, meta_shm) -> None:
        self._store = store
        self.key = key
        self._meta = meta_shm
        self._done = False

    @property
    def data_name(self) -> str:
        """The data segment name this claim will publish to."""
        return self._store._data_name(self.key)

    def publish(
        self,
        kind: str,
        arrays: Dict[str, np.ndarray],
        meta: Optional[dict] = None,
    ) -> bool:
        """Copy the arrays into a data segment and flip READY.

        Returns False (and releases the claim) when the descriptor
        cannot fit the meta segment — the value is served locally only.
        """
        if self._done:
            raise RuntimeError("claim already published or abandoned")
        arrays = {name: np.ascontiguousarray(a) for name, a in arrays.items()}
        layout, total = _plan_layout(arrays)
        descriptor = {
            "kind": str(kind),
            "data": self._store._data_name(self.key),
            "size": int(total),
            "arrays": layout,
            "meta": dict(meta or {}),
        }
        desc_bytes = json.dumps(descriptor, sort_keys=True).encode("utf-8")
        if _HEADER.size + len(desc_bytes) > _META_SIZE:
            self.abandon()
            return False
        try:
            data = _open_segment(descriptor["data"], create=True, size=total)
        except FileExistsError:
            # Leftover from a taken-over builder: replace its bytes.
            _unlink_quiet(descriptor["data"])
            try:
                data = _open_segment(descriptor["data"], create=True, size=total)
            except FileExistsError:  # pragma: no cover - double takeover
                self.abandon()
                return False
        try:
            for spec, array in zip(descriptor["arrays"], arrays.values()):
                start = spec["offset"]
                data.buf[start : start + array.nbytes] = array.tobytes()
            crc = zlib.crc32(bytes(data.buf[:total])) & 0xFFFFFFFF
            _HEADER.pack_into(
                self._meta.buf,
                0,
                _MAGIC,
                _STATUS_BUILDING,
                os.getpid(),
                time.time(),
                crc,
                len(desc_bytes),
            )
            self._meta.buf[_HEADER.size : _HEADER.size + len(desc_bytes)] = desc_bytes
            # READY last: an attacher either sees BUILDING (and waits)
            # or a fully-written descriptor + checksum.
            self._meta.buf[8] = _STATUS_READY
        finally:
            self._store._hold(descriptor["data"], data)
        self._store._release_meta(self)
        self._done = True
        return True

    def abandon(self) -> None:
        """Give up the claim: unlink the meta so others may re-claim."""
        if self._done:
            return
        self._done = True
        name = self._meta.name
        try:
            self._meta.close()
        except BufferError:  # pragma: no cover - defensive
            pass
        _unlink_quiet(name)
        self._store._forget_claim(self)


class SharedSegmentStore:
    """Refcounted registry of one run's shared segments.

    One instance per process per run.  ``hold_lease=True`` (the
    supervisor) creates the run's lease segment recording this pid —
    the liveness anchor the orphan sweep checks.  Workers attach with
    the same ``run_id`` and no lease.
    """

    def __init__(self, run_id: Optional[str] = None, *, hold_lease: bool = False) -> None:
        self.run_id = run_id or new_run_id()
        self._lock = threading.Lock()
        #: name -> [shm, refcount]
        self._held: Dict[str, list] = {}
        self._claims: Dict[str, SegmentClaim] = {}
        self._lease = None
        self.attaches = 0
        self.publishes = 0
        self.takeovers = 0
        self.checksum_failures = 0
        self.wait_timeouts = 0
        if hold_lease:
            self._lease = _open_segment(
                _lease_name(self.run_id), create=True, size=64
            )
            struct.pack_into("<Q", self._lease.buf, 0, os.getpid())

    # ------------------------------------------------------------------
    def _meta_name(self, key: str) -> str:
        return f"{_run_prefix(self.run_id)}{_key_digest(key)}m"

    def _data_name(self, key: str) -> str:
        return f"{_run_prefix(self.run_id)}{_key_digest(key)}d"

    def _hold(self, name: str, shm):
        """Register one reference to ``name``; returns the canonical handle.

        When the segment is already held (e.g. this process published it
        and now attaches it), the duplicate handle is closed and the
        held one returned — callers MUST build views from the returned
        handle's buffer, never from the one they passed in, or a later
        close of the duplicate would unmap memory live views point at.
        """
        with self._lock:
            entry = self._held.get(name)
            if entry is None:
                self._held[name] = [shm, 1]
                return shm
            entry[1] += 1
            canonical = entry[0]
        if canonical is not shm:
            shm.close()
        return canonical

    def _release_meta(self, claim: SegmentClaim) -> None:
        try:
            claim._meta.close()
        except BufferError:  # pragma: no cover - defensive
            pass
        self._forget_claim(claim)

    def _forget_claim(self, claim: SegmentClaim) -> None:
        with self._lock:
            if self._claims.get(claim.key) is claim:
                del self._claims[claim.key]

    def detach(self, name: str) -> None:
        """Drop one reference to an attached segment (close at zero)."""
        with self._lock:
            entry = self._held.get(name)
            if entry is None:
                return
            entry[1] -= 1
            if entry[1] > 0:
                return
            del self._held[name]
            shm = entry[0]
        try:
            shm.close()
        except BufferError:  # a NumPy view still points in; keep mapped
            with self._lock:
                self._held[name] = [shm, 1]

    # ------------------------------------------------------------------
    def acquire(self, key: str, *, wait_s: float = 60.0):
        """``("value", payload)`` | ``("claim", SegmentClaim)`` | ``("miss", None)``.

        The single entry point: attach the key's segments if published,
        claim the build if nobody has, wait (with dead-owner takeover)
        if someone is building.  ``("miss", None)`` means the wait
        timed out or shm is unusable — the caller computes locally and
        does not publish.

        ``payload`` is ``{"kind", "arrays", "meta"}`` with the arrays
        read-only NumPy views into the shared segment (held alive by
        this store).
        """
        from repro.cancellation import current_token

        deadline = time.monotonic() + wait_s
        first = True
        while True:
            if not first and time.monotonic() >= deadline:
                with self._lock:
                    self.wait_timeouts += 1
                return "miss", None
            first = False
            token = current_token()
            if token is not None:
                token.checkpoint()
            outcome, payload = self._try_attach(key)
            if outcome == "value":
                return "value", payload
            if outcome == "absent":
                claimed = self._try_claim(key)
                if claimed is not None:
                    return "claim", claimed
                continue  # raced another claimer; re-attach
            # outcome == "building": poll for READY / owner death.
            time.sleep(0.005)

    def _try_claim(self, key: str) -> Optional[SegmentClaim]:
        name = self._meta_name(key)
        try:
            meta = _open_segment(name, create=True, size=_META_SIZE)
        except FileExistsError:
            return None
        except OSError:  # pragma: no cover - /dev/shm unusable
            return None
        _HEADER.pack_into(
            meta.buf, 0, _MAGIC, _STATUS_BUILDING, os.getpid(), time.time(), 0, 0
        )
        claim = SegmentClaim(self, key, meta)
        with self._lock:
            self._claims[key] = claim
        return claim

    def _try_attach(self, key: str):
        """``("value", payload)`` | ``("building", None)`` | ``("absent", None)``."""
        name = self._meta_name(key)
        try:
            meta = _open_segment(name)
        except FileNotFoundError:
            return "absent", None
        try:
            header = _HEADER.unpack_from(meta.buf, 0)
        except struct.error:
            header = None
        if header is None or header[0] != _MAGIC:
            meta.close()
            self._takeover(key)
            return "absent", None
        _, status, owner_pid, _, crc, desc_len = header
        if status == _STATUS_BUILDING:
            meta.close()
            if not _pid_alive(int(owner_pid)):
                self._takeover(key)
                return "absent", None
            return "building", None
        if status != _STATUS_READY:
            meta.close()
            self._takeover(key)
            return "absent", None
        try:
            raw = bytes(meta.buf[_HEADER.size : _HEADER.size + desc_len])
            descriptor = json.loads(raw.decode("utf-8"))
        except (ValueError, IndexError):
            descriptor = None
        finally:
            # The descriptor is copied out; the meta mapping can go.
            try:
                meta.close()
            except BufferError:  # pragma: no cover - defensive
                pass
        if descriptor is None:
            self._takeover(key)
            return "absent", None
        payload = self._attach_data(key, descriptor, crc)
        if payload is None:
            return "absent", None
        return "value", payload

    def _attach_data(self, key: str, descriptor: dict, crc: int):
        try:
            data = _open_segment(descriptor["data"])
        except FileNotFoundError:
            self._takeover(key)
            return None
        # Hold BEFORE building views so they reference the canonical
        # (refcounted) mapping, not a duplicate handle.
        data = self._hold(descriptor["data"], data)
        size = int(descriptor["size"])
        if len(data.buf) < size or (
            zlib.crc32(bytes(data.buf[:size])) & 0xFFFFFFFF
        ) != crc:
            self.detach(descriptor["data"])
            with self._lock:
                self.checksum_failures += 1
            self._takeover(key)
            return None
        arrays = {}
        for spec in descriptor["arrays"]:
            view = np.ndarray(
                tuple(spec["shape"]),
                dtype=np.dtype(spec["dtype"]),
                buffer=data.buf,
                offset=int(spec["offset"]),
            )
            view.setflags(write=False)
            arrays[spec["name"]] = view
        with self._lock:
            self.attaches += 1
        return {
            "kind": descriptor.get("kind"),
            "arrays": arrays,
            "meta": descriptor.get("meta", {}),
        }

    def _takeover(self, key: str) -> None:
        """Remove a stale/corrupt claim so the next acquire re-claims."""
        with self._lock:
            self.takeovers += 1
        _unlink_quiet(self._data_name(key))
        _unlink_quiet(self._meta_name(key))

    # ------------------------------------------------------------------
    def publish(self, claim: SegmentClaim, kind: str, arrays, meta=None) -> bool:
        ok = claim.publish(kind, arrays, meta)
        if ok:
            with self._lock:
                self.publishes += 1
        return ok

    def segment_names(self) -> List[str]:
        return list_run_segments(self.run_id)

    def counters(self) -> dict:
        with self._lock:
            return {
                "run_id": self.run_id,
                "held_segments": len(self._held),
                "attaches": self.attaches,
                "publishes": self.publishes,
                "takeovers": self.takeovers,
                "checksum_failures": self.checksum_failures,
                "wait_timeouts": self.wait_timeouts,
            }

    def close(self, *, sweep: bool = False) -> List[str]:
        """Release every held mapping; optionally unlink the whole run.

        ``sweep=True`` is the clean-shutdown path (supervisor): unlink
        all of the run's segments so nothing survives in ``/dev/shm``.
        Returns the names unlinked.
        """
        with self._lock:
            claims = list(self._claims.values())
            held = list(self._held.values())
            self._claims.clear()
            self._held.clear()
        for claim in claims:
            claim.abandon()
        for shm, _count in held:
            try:
                shm.close()
            except BufferError:  # views outlive the store; mapping leaks
                pass  # until process exit, but the *name* is still swept
        removed: List[str] = []
        if self._lease is not None:
            try:
                self._lease.close()
            except BufferError:  # pragma: no cover - defensive
                pass
            if not sweep:
                _unlink_quiet(_lease_name(self.run_id))
            self._lease = None
        if sweep:
            removed = sweep_run(self.run_id)
        return removed

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"SharedSegmentStore(run_id={self.run_id!r}, held={len(self._held)})"


class ShmCacheBacking:
    """Adapts a :class:`SharedSegmentStore` to the shared cache's backing
    protocol (``load_or_claim`` / ``publish`` / ``abandon`` / ``info``).

    Keys are the cache's ``(dataset_id, metric, radius_bucket)`` tuples;
    values are CSR/blocked adjacencies.  A load counts as ``shm_hits``
    on the cache side, never as a build — which is what keeps
    ``builds == unique radii`` true across the whole cluster: the shm
    claim protocol grants each key exactly one builder.
    """

    def __init__(self, store: SharedSegmentStore, *, wait_s: float = 60.0) -> None:
        self.store = store
        self.wait_s = wait_s

    @staticmethod
    def _key_str(key) -> str:
        dataset, metric, bucket = key
        return f"adj:{dataset}:{metric}@{bucket!r}"

    def load_or_claim(self, key):
        """``("value", adjacency)`` | ``("claim", token)`` | ``("miss", None)``."""
        status, got = self.store.acquire(self._key_str(key), wait_s=self.wait_s)
        if status == "value":
            try:
                return "value", decode_adjacency(got["kind"], got["arrays"])
            except OperationCancelled:
                # The segment is intact — the *request* ran out of
                # budget.  Unlinking it here would destroy a good
                # cluster-wide build over one caller's deadline.
                raise
            except Exception:
                # Undecodable payload (e.g. version skew): rebuild
                # locally; the segment is replaced on our publish.
                self.store._takeover(self._key_str(key))
                status, got = "miss", None
        if status == "claim":
            return "claim", got
        return "miss", None

    def publish(self, claim, value) -> bool:
        encoded = encode_adjacency(value)
        if encoded is None:
            claim.abandon()
            return False
        kind, arrays = encoded
        return self.store.publish(claim, kind, arrays)

    def abandon(self, claim) -> None:
        claim.abandon()

    def drop(self, key) -> None:
        """Unlink the segments of one cache key (idempotent).

        The live-dataset migration path: a mutated dataset's old
        version-stamped keys are unreachable (every new request carries
        the new ``name@v`` id), so their segments are garbage the run
        sweep would only collect at shutdown — drop them eagerly.  Any
        worker may call this; a concurrent reader that already attached
        keeps its mapping (the unlink removes the *name*), and a racing
        attach simply misses and rebuilds under the new key.
        """
        self.store._takeover(self._key_str(key))

    def info(self) -> dict:
        return self.store.counters()


__all__.append("ShmCacheBacking")

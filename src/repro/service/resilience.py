"""Resilience primitives for the serving layer.

Everything the fault-tolerant server needs that is not the cancellation
machinery itself (which lives in the dependency-free
:mod:`repro.cancellation` so the graph engines can import it):

* deadline resolution — client ``timeout_ms`` capped by the server's
  ``max_timeout_ms``, defaulting to ``default_timeout_ms`` (the capped
  source decides whether expiry answers 408 or 504),
* :class:`CircuitBreaker` — the classic closed → open → half-open
  machine guarding one ``(dataset, metric, radius_bucket)`` adjacency
  build,
* :class:`RetryPolicy` — jittered exponential backoff with a total
  retry budget, shared by :class:`~repro.service.client.ServiceClient`
  and ``wait_until_healthy``,
* structured error bodies — every non-200 response is
  ``{"error": {"code": ..., "message": ...}}``; raw ``str(exc)`` of
  unexpected exceptions never reaches the wire.

This module only imports the stdlib and :mod:`repro.cancellation`;
:mod:`repro.service.cache` imports it during package init, so it must
not import back into the package.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Iterator, Optional, Tuple

from repro.cancellation import (  # noqa: F401  (re-exported surface)
    CHECKPOINT_EVERY,
    CancellationToken,
    OperationCancelled,
    cancellation_scope,
    current_token,
)
from repro.obs import metrics as obs_metrics

__all__ = [
    "BuildFailed",
    "CircuitBreaker",
    "CircuitOpen",
    "RetryPolicy",
    "error_body",
    "extract_request_meta",
    "resolve_deadline",
    # re-exports
    "CHECKPOINT_EVERY",
    "CancellationToken",
    "OperationCancelled",
    "cancellation_scope",
    "current_token",
]


# ----------------------------------------------------------------------
# Structured errors
# ----------------------------------------------------------------------
def error_body(code: str, message: str) -> dict:
    """The wire shape of every non-200 response."""
    return {"error": {"code": str(code), "message": str(message)}}


class BuildFailed(RuntimeError):
    """An adjacency build raised; propagated to every coalesced waiter.

    Carries the *type name* of the original failure, not its ``str``
    (which may embed paths or array reprs) — the structured 503 body
    must not leak internals.
    """

    def __init__(self, key, cause: BaseException) -> None:
        super().__init__(
            f"adjacency build failed for {key!r} ({type(cause).__name__})"
        )
        self.key = key
        self.cause = cause


class CircuitOpen(RuntimeError):
    """The breaker for this key is open and no stale fallback exists."""

    def __init__(self, key, retry_after_s: float) -> None:
        super().__init__(
            f"adjacency builds for {key!r} are circuit-broken; "
            f"retry in {retry_after_s:.1f}s"
        )
        self.key = key
        self.retry_after_s = retry_after_s


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------
def resolve_deadline(
    timeout_ms: Optional[float],
    *,
    default_timeout_ms: Optional[float] = None,
    max_timeout_ms: Optional[float] = None,
) -> Tuple[Optional[float], str]:
    """Effective budget in **seconds** plus who imposed it.

    ``(None, "server")`` means no deadline at all.  The source is
    ``"client"`` only when the client's own ``timeout_ms`` is the
    binding constraint (→ 408 on expiry); a server default or a
    server cap that undercuts the client maps to ``"server"`` (→ 504).
    """
    if timeout_ms is None:
        timeout_ms = default_timeout_ms
        source = "server"
    else:
        source = "client"
        if max_timeout_ms is not None and timeout_ms > max_timeout_ms:
            timeout_ms = max_timeout_ms
            source = "server"
    if timeout_ms is None:
        return None, "server"
    return float(timeout_ms) / 1000.0, source


def extract_request_meta(payload: dict) -> Tuple[dict, Optional[float], Optional[str]]:
    """Split transport metadata out of a compute request body.

    Returns ``(clean_payload, timeout_ms, idempotency_key)`` with the
    metadata keys removed so request validation — and the canonical
    single-flight key — see only the semantic payload (two retries of
    one logical request must coalesce regardless of their deadlines).
    Raises ``ValueError`` (→ 400) on malformed metadata.
    """
    if not isinstance(payload, dict):
        return payload, None, None
    timeout_ms = payload.get("timeout_ms")
    if timeout_ms is not None:
        if isinstance(timeout_ms, bool) or not isinstance(timeout_ms, (int, float)):
            raise ValueError(
                f"timeout_ms must be a positive number, got {timeout_ms!r}"
            )
        timeout_ms = float(timeout_ms)
        if not timeout_ms > 0 or timeout_ms != timeout_ms:  # NaN check
            raise ValueError(
                f"timeout_ms must be a positive number, got {timeout_ms!r}"
            )
    idempotency_key = payload.get("idempotency_key")
    if idempotency_key is not None:
        if not isinstance(idempotency_key, str) or not idempotency_key:
            raise ValueError("idempotency_key must be a non-empty string")
        if len(idempotency_key) > 256:
            raise ValueError("idempotency_key must be <= 256 characters")
    if timeout_ms is None and idempotency_key is None:
        return payload, None, None
    clean = {
        key: value
        for key, value in payload.items()
        if key not in ("timeout_ms", "idempotency_key")
    }
    return clean, timeout_ms, idempotency_key


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class CircuitBreaker:
    """Closed → open → half-open failure gate for one cache key.

    ``failure_threshold`` consecutive failures open the circuit; after
    ``reset_after_s`` one *probe* build is allowed through (half-open).
    A successful probe closes the circuit, a failed one re-opens it
    immediately.  :meth:`allow` is the admission question; it returns
    True exactly once per half-open window so concurrent threads cannot
    stampede the recovering dependency.
    """

    def __init__(
        self, failure_threshold: int = 3, reset_after_s: float = 30.0
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_after_s <= 0:
            raise ValueError(f"reset_after_s must be > 0, got {reset_after_s}")
        self.failure_threshold = failure_threshold
        self.reset_after_s = reset_after_s
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self._m_transitions = obs_metrics.registry().counter(
            "repro_breaker_transitions_total",
            "Circuit-breaker state transitions, by destination state.",
            ("to",),
        )

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May a build be attempted right now?

        Transitions open → half-open when the cooldown has elapsed and
        hands that single probe slot to the caller.
        """
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if time.monotonic() - self._opened_at >= self.reset_after_s:
                    self._state = "half_open"
                    self._m_transitions.inc(to="half_open")
                    return True
                return False
            return False  # half_open: a probe is already in flight

    def retry_after_s(self) -> float:
        with self._lock:
            if self._state != "open":
                return 0.0
            return max(
                0.0, self.reset_after_s - (time.monotonic() - self._opened_at)
            )

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._state == "half_open" or self._failures >= self.failure_threshold:
                if self._state != "open":
                    self._m_transitions.inc(to="open")
                self._state = "open"
                self._opened_at = time.monotonic()

    def record_success(self) -> None:
        with self._lock:
            if self._state != "closed":
                self._m_transitions.inc(to="closed")
            self._state = "closed"
            self._failures = 0

    def describe(self) -> dict:
        with self._lock:
            return {"state": self._state, "failures": self._failures}

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"CircuitBreaker(state={self.state!r})"


# ----------------------------------------------------------------------
# Client retry/backoff
# ----------------------------------------------------------------------
class RetryPolicy:
    """Jittered exponential backoff with a total retry budget.

    ``delay(attempt) = min(cap_s, base_s * 2**attempt) * uniform(0.5, 1)``
    — full-jitter-ish so a fleet of synchronized clients (exactly what
    the barrier-synced load harness creates) decorrelates instead of
    retrying in lockstep.  ``budget_s`` bounds the *sum* of sleeps, so
    a retry storm cannot stretch one logical request forever.
    """

    def __init__(
        self,
        retries: int = 3,
        *,
        base_s: float = 0.05,
        cap_s: float = 2.0,
        budget_s: float = 10.0,
        statuses: Tuple[int, ...] = (503,),
        seed: Optional[int] = None,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.retries = retries
        self.base_s = float(base_s)
        self.cap_s = float(cap_s)
        self.budget_s = float(budget_s)
        self.statuses = tuple(int(s) for s in statuses)
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def retryable_status(self, status: int) -> bool:
        return status in self.statuses

    def delay(self, attempt: int) -> float:
        base = min(self.cap_s, self.base_s * (2.0 ** attempt))
        with self._lock:
            return base * (0.5 + 0.5 * self._rng.random())

    def delays(self) -> Iterator[float]:
        """Up to ``retries`` sleeps, truncated by the total budget."""
        spent = 0.0
        for attempt in range(self.retries):
            delay = self.delay(attempt)
            if spent + delay > self.budget_s:
                delay = max(0.0, self.budget_s - spent)
                if delay <= 0:
                    return
            spent += delay
            yield delay

    def new_idempotency_key(self) -> str:
        with self._lock:
            return f"retry-{self._rng.getrandbits(64):016x}"

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"RetryPolicy(retries={self.retries}, base_s={self.base_s}, "
            f"cap_s={self.cap_s}, budget_s={self.budget_s}, "
            f"statuses={self.statuses})"
        )

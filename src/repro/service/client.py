"""Minimal stdlib client for the DisC serving layer.

``http.client`` on a persistent keep-alive connection — used by the
load harness, the CI smoke lane and the test suite, and small enough
to lift into any consumer that doesn't want a dependency.  One
:class:`ServiceClient` is one connection and is **not** thread-safe;
multi-client load generation creates one per worker thread (which is
also what a real fleet of users looks like to the server).
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Optional

__all__ = ["ServiceClient", "ServiceError", "wait_until_healthy"]


class ServiceError(RuntimeError):
    """A non-2xx response; carries the HTTP status and server payload."""

    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class ServiceClient:
    """One keep-alive connection to a running DisC server."""

    def __init__(self, host: str, port: int, timeout: float = 120.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def request(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> tuple:
        """One round-trip; returns ``(status, decoded_json)``.

        Retries once on a stale keep-alive connection (the server may
        have closed it between requests); real errors propagate.
        """
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (
                http.client.NotConnected,
                http.client.CannotSendRequest,
                http.client.BadStatusLine,
                http.client.RemoteDisconnected,
                BrokenPipeError,
                ConnectionResetError,
            ):
                self.close()
                if attempt:
                    raise
        decoded = json.loads(raw.decode("utf-8")) if raw else {}
        return response.status, decoded

    def _checked(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        status, decoded = self.request(method, path, payload)
        if status != 200:
            raise ServiceError(status, decoded)
        return decoded

    # ------------------------------------------------------------------
    # Endpoint wrappers
    # ------------------------------------------------------------------
    def select(
        self,
        dataset: str,
        radius: float,
        *,
        method: str = "greedy",
        method_options: Optional[dict] = None,
        engine=None,
    ) -> dict:
        payload = {
            "dataset": dataset,
            "radius": radius,
            "method": method,
            "method_options": dict(method_options or {}),
        }
        if engine is not None:
            payload["engine"] = engine
        return self._checked("POST", "/select", payload)

    def zoom(
        self,
        dataset: str,
        radius: float,
        to: float,
        *,
        method: str = "greedy",
        engine=None,
        **zoom_options,
    ) -> dict:
        payload = {
            "dataset": dataset,
            "radius": radius,
            "to": to,
            "method": method,
            **zoom_options,
        }
        if engine is not None:
            payload["engine"] = engine
        return self._checked("POST", "/zoom", payload)

    def datasets(self) -> dict:
        return self._checked("GET", "/datasets")

    def healthz(self) -> dict:
        return self._checked("GET", "/healthz")

    def stats(self) -> dict:
        return self._checked("GET", "/stats")

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def wait_until_healthy(
    host: str, port: int, *, timeout: float = 30.0, interval: float = 0.05
) -> dict:
    """Poll ``/healthz`` until it answers 200 (or raise ``TimeoutError``).

    The subprocess smoke lane uses this to bound server start-up.
    """
    deadline = time.monotonic() + timeout
    last_error: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            with ServiceClient(host, port, timeout=interval * 40) as client:
                return client.healthz()
        except (OSError, ServiceError, socket.timeout) as exc:
            last_error = exc
            time.sleep(interval)
    raise TimeoutError(
        f"service at {host}:{port} not healthy after {timeout}s "
        f"(last error: {last_error})"
    )

"""Minimal stdlib client for the DisC serving layer.

``http.client`` on a persistent keep-alive connection — used by the
load harness, the CI smoke lane and the test suite, and small enough
to lift into any consumer that doesn't want a dependency.  One
:class:`ServiceClient` is one connection and is **not** thread-safe;
multi-client load generation creates one per worker thread (which is
also what a real fleet of users looks like to the server).

Resilience: construct with a
:class:`~repro.service.resilience.RetryPolicy` and compute requests
retry on connection failures and retryable statuses (503 by default)
with jittered exponential backoff under a total sleep budget.  Every
retried compute request carries an ``idempotency_key``, so a retry
whose original is still running server-side joins that computation via
the request-level single-flight instead of doubling the work — and a
retry whose original *completed* (the response was lost on the wire)
replays the stored response.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Optional

from repro.service.resilience import RetryPolicy

__all__ = [
    "ServiceClient",
    "ServiceError",
    "RetryPolicy",
    "parse_server_timing",
    "wait_until_healthy",
]


def parse_server_timing(value: Optional[str]) -> Optional[dict]:
    """Parse a ``Server-Timing`` header into ``{metric: milliseconds}``.

    The server emits ``total;dur=41.7, build;dur=30.4, select;dur=7.9``;
    entries without a parseable ``dur`` are skipped.  Returns ``None``
    for an absent/empty header so callers can tell "no header" from
    "zero durations".
    """
    if not value:
        return None
    out: dict = {}
    for part in value.split(","):
        name, _, params = part.strip().partition(";")
        name = name.strip()
        if not name:
            continue
        for param in params.split(";"):
            key, _, raw = param.strip().partition("=")
            if key.strip() == "dur":
                try:
                    out[name] = float(raw)
                except ValueError:
                    pass
    return out or None

#: Connection-level failures worth retrying (the server may have closed
#: a keep-alive socket, reset mid-response, or not be up yet).
_RETRYABLE_CONNECTION_ERRORS = (
    http.client.NotConnected,
    http.client.CannotSendRequest,
    http.client.BadStatusLine,
    http.client.RemoteDisconnected,
    BrokenPipeError,
    ConnectionResetError,
    ConnectionRefusedError,
    socket.timeout,
)


def _error_message(payload: dict) -> str:
    error = payload.get("error") if isinstance(payload, dict) else None
    if isinstance(error, dict):
        code = error.get("code", "error")
        return f"{code}: {error.get('message', '')}"
    if error is not None:
        return str(error)
    return str(payload)


class ServiceError(RuntimeError):
    """A non-2xx response; carries the HTTP status and server payload."""

    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(f"HTTP {status}: {_error_message(payload)}")
        self.status = status
        self.payload = payload

    @property
    def code(self) -> Optional[str]:
        """The structured error code, when the server sent one."""
        error = self.payload.get("error") if isinstance(self.payload, dict) else None
        if isinstance(error, dict):
            return error.get("code")
        return None


class ServiceClient:
    """One keep-alive connection to a running DisC server.

    Parameters
    ----------
    timeout:
        Socket timeout per round-trip.
    retry:
        Optional :class:`RetryPolicy`.  Without one, behavior is the
        bare wire: one transparent reconnect on a stale keep-alive
        socket, no status-based retries, no idempotency keys.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 120.0,
        *,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.retry = retry
        self._conn: Optional[http.client.HTTPConnection] = None
        #: TCP connections this client has opened over its lifetime —
        #: 1 for an all-keep-alive session; +1 per reset-and-reopen.
        self.opened_connections = 0
        #: Parsed ``Server-Timing`` of the most recent response
        #: (``{"total": ms, "build": ms, "select": ms}``) or None.
        self.last_server_timing: Optional[dict] = None
        #: ``X-Repro-Trace`` value of the most recent response
        #: (``trace_id:span_id``) or None — join key into the trace log.
        self.last_trace: Optional[str] = None

    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self.opened_connections += 1
        return self._conn

    def _round_trip(
        self, method: str, path: str, body: Optional[bytes], headers: dict
    ) -> tuple:
        """One wire exchange, reconnecting once on a stale keep-alive."""
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except _RETRYABLE_CONNECTION_ERRORS:
                self.close()
                if attempt:
                    raise
        self.last_server_timing = parse_server_timing(
            response.getheader("Server-Timing")
        )
        self.last_trace = response.getheader("X-Repro-Trace")
        decoded = json.loads(raw.decode("utf-8")) if raw else {}
        return response.status, decoded

    def request(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> tuple:
        """One logical request; returns ``(status, decoded_json)``.

        With a :class:`RetryPolicy`, connection failures and retryable
        statuses back off and retry under the policy's budget; compute
        retries reuse one idempotency key so the server coalesces them
        with the original attempt.  The final status is returned even
        when retries are exhausted; connection errors out of retries
        propagate.
        """
        request_payload = payload
        retry = self.retry
        if (
            retry is not None
            and method == "POST"
            and isinstance(payload, dict)
            and "idempotency_key" not in payload
        ):
            request_payload = dict(payload)
            request_payload["idempotency_key"] = retry.new_idempotency_key()
        body = (
            None
            if request_payload is None
            else json.dumps(request_payload).encode("utf-8")
        )
        headers = {"Content-Type": "application/json"} if body else {}
        if retry is None:
            return self._round_trip(method, path, body, headers)
        delays = retry.delays()
        while True:
            try:
                status, decoded = self._round_trip(method, path, body, headers)
            except _RETRYABLE_CONNECTION_ERRORS:
                delay = next(delays, None)
                if delay is None:
                    raise
                time.sleep(delay)
                continue
            if retry.retryable_status(status):
                delay = next(delays, None)
                if delay is not None:
                    time.sleep(delay)
                    continue
            return status, decoded

    def _checked(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        status, decoded = self.request(method, path, payload)
        if status != 200:
            raise ServiceError(status, decoded)
        return decoded

    # ------------------------------------------------------------------
    # Endpoint wrappers
    # ------------------------------------------------------------------
    def select(
        self,
        dataset: str,
        radius: float,
        *,
        method: str = "greedy",
        method_options: Optional[dict] = None,
        engine=None,
        timeout_ms: Optional[float] = None,
    ) -> dict:
        payload = {
            "dataset": dataset,
            "radius": radius,
            "method": method,
            "method_options": dict(method_options or {}),
        }
        if engine is not None:
            payload["engine"] = engine
        if timeout_ms is not None:
            payload["timeout_ms"] = timeout_ms
        return self._checked("POST", "/select", payload)

    def zoom(
        self,
        dataset: str,
        radius: float,
        to: float,
        *,
        method: str = "greedy",
        engine=None,
        timeout_ms: Optional[float] = None,
        previous: Optional[dict] = None,
        **zoom_options,
    ) -> dict:
        """Zoom ``dataset`` from ``radius`` to ``to``.

        ``previous`` (``{"selected": [...], "closest_black": [...]?,
        "closest_black_exact": bool?, "version": int?}``) replays a
        held solution so the server adapts it instead of recomputing
        the base selection.
        """
        payload = {
            "dataset": dataset,
            "radius": radius,
            "to": to,
            "method": method,
            **zoom_options,
        }
        if previous is not None:
            payload["previous"] = previous
        if engine is not None:
            payload["engine"] = engine
        if timeout_ms is not None:
            payload["timeout_ms"] = timeout_ms
        return self._checked("POST", "/zoom", payload)

    def mutate(
        self,
        dataset: str,
        *,
        inserts=None,
        deletes=None,
        repair: Optional[dict] = None,
        timeout_ms: Optional[float] = None,
    ) -> dict:
        """Apply one insert/delete batch to a *live* dataset.

        ``repair={"radius": r, "previous": [global ids], "verify":
        bool?}`` additionally repairs a held selection against the
        post-mutation version.
        """
        payload: dict = {"dataset": dataset}
        if inserts is not None:
            payload["inserts"] = inserts
        if deletes is not None:
            payload["deletes"] = [int(i) for i in deletes]
        if repair is not None:
            payload["repair"] = repair
        if timeout_ms is not None:
            payload["timeout_ms"] = timeout_ms
        return self._checked("POST", "/mutate", payload)

    def datasets(self) -> dict:
        return self._checked("GET", "/datasets")

    def healthz(self) -> dict:
        return self._checked("GET", "/healthz")

    def stats(self) -> dict:
        return self._checked("GET", "/stats")

    def wait_until_healthy(self, timeout: float = 30.0) -> dict:
        """Poll ``/healthz`` on this client's address (see module fn)."""
        return wait_until_healthy(self.host, self.port, timeout=timeout)

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def wait_until_healthy(
    host: str,
    port: int,
    *,
    timeout: float = 30.0,
    interval: float = 0.05,
    max_interval: float = 2.0,
) -> dict:
    """Poll ``/healthz`` until it answers 200 (or raise ``TimeoutError``).

    ``interval`` seeds a capped exponential backoff (×2 per miss up to
    ``max_interval``) under the ``timeout`` total budget — a server
    that is up answers on the first cheap probe, one that is still
    importing NumPy is not hammered 20 times a second.  On exhaustion
    the raised ``TimeoutError`` carries the last underlying error.

    All probes share one :class:`ServiceClient` (and so one keep-alive
    socket once the server is up); a probe that fails closes the
    connection, and the next attempt transparently reopens it.

    The subprocess smoke lane uses this to bound server start-up.
    """
    deadline = time.monotonic() + timeout
    last_error: Optional[Exception] = None
    delay = interval
    with ServiceClient(host, port, timeout=max(2.0, interval * 40)) as client:
        while time.monotonic() < deadline:
            try:
                return client.healthz()
            except (OSError, ServiceError, socket.timeout) as exc:
                last_error = exc
                client.close()  # reopen fresh on the next probe
                time.sleep(min(delay, max(0.0, deadline - time.monotonic())))
                delay = min(max_interval, delay * 2)
    raise TimeoutError(
        f"service at {host}:{port} not healthy after {timeout}s "
        f"(last error: {last_error})"
    )

"""Comparison models from the paper's Section 4 (MaxMin, MaxSum,
k-medoids) and solution-quality metrics."""

from repro.baselines.kmedoids import kmedoids_objective, kmedoids_select
from repro.baselines.maxmin import maxmin_select, maxmin_value
from repro.baselines.maxsum import maxsum_select, maxsum_value
from repro.baselines.metrics import (
    coverage_ratio,
    fmin,
    fsum,
    jaccard_distance,
    representation_error,
    solution_summary,
)

__all__ = [
    "maxmin_select",
    "maxmin_value",
    "maxsum_select",
    "maxsum_value",
    "kmedoids_select",
    "kmedoids_objective",
    "fmin",
    "fsum",
    "coverage_ratio",
    "representation_error",
    "jaccard_distance",
    "solution_summary",
]

"""k-medoids clustering (Section 4 comparison).

The paper contrasts DisC with k-medoids because medoids can be read as a
representative subset: it minimises the mean distance from every object
to its closest selected object.  Figure 6(d) shows the characteristic
failure the comparison highlights — medoids sit in cluster centres and
ignore outliers, so the dataset is not *covered* in the DisC sense.

Implementation: Voronoi-iteration k-medoids (alternate assignment and
per-cluster medoid update), with k-means++-style seeding for spread-out
initial medoids.  This scales to the paper's 10000-point datasets where
classic PAM would not, while converging to the same objective family.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.distance import get_metric

__all__ = ["kmedoids_select", "kmedoids_objective"]


def _seed_medoids(points, metric, k: int, rng: np.random.Generator) -> List[int]:
    """k-means++ style: sample proportionally to distance-to-closest."""
    n = points.shape[0]
    first = int(rng.integers(n))
    medoids = [first]
    closest = metric.to_point(points, points[first])
    while len(medoids) < k:
        weights = np.maximum(closest, 0.0)
        total = weights.sum()
        if total == 0.0:
            # All remaining points coincide with medoids; pick arbitrarily.
            remaining = [i for i in range(n) if i not in set(medoids)]
            medoids.extend(remaining[: k - len(medoids)])
            break
        pick = int(rng.choice(n, p=weights / total))
        if pick in medoids:
            continue
        medoids.append(pick)
        np.minimum(closest, metric.to_point(points, points[pick]), out=closest)
    return medoids


def kmedoids_select(
    points: np.ndarray,
    metric,
    k: int,
    *,
    seed: Optional[int] = 0,
    max_iter: int = 30,
) -> List[int]:
    """Select ``k`` medoids via Voronoi iteration.

    Deterministic given ``seed``; stops at convergence or ``max_iter``.
    """
    metric = get_metric(metric)
    points = np.asarray(points)
    n = points.shape[0]
    if not 0 < k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    if k == n:
        return list(range(n))
    rng = np.random.default_rng(seed)
    medoids = _seed_medoids(points, metric, k, rng)

    for _ in range(max_iter):
        # Assignment step: nearest medoid per object.
        distance_to_medoids = np.stack(
            [metric.to_point(points, points[m]) for m in medoids], axis=1
        )
        assignment = np.argmin(distance_to_medoids, axis=1)

        # Update step: each cluster's in-cluster 1-median.
        new_medoids = []
        for cluster_index in range(len(medoids)):
            members = np.nonzero(assignment == cluster_index)[0]
            if members.size == 0:
                new_medoids.append(medoids[cluster_index])
                continue
            submatrix = metric.pairwise(points[members])
            best_local = int(np.argmin(submatrix.sum(axis=0)))
            new_medoids.append(int(members[best_local]))
        if new_medoids == medoids:
            break
        medoids = new_medoids
    return medoids


def kmedoids_objective(points: np.ndarray, metric, selected: List[int]) -> float:
    """``(1/|P|) Σ dist(p_i, c(p_i))`` — the paper's k-medoids objective."""
    metric = get_metric(metric)
    points = np.asarray(points)
    if not selected:
        raise ValueError("selected must be non-empty")
    closest = np.full(points.shape[0], np.inf)
    for medoid in selected:
        np.minimum(closest, metric.to_point(points, points[medoid]), out=closest)
    return float(closest.mean())

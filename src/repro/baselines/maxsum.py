"""Greedy MaxSum diversification (Section 4 comparison).

MaxSum selects k objects maximising ``f_Sum = Σ dist(p_i, p_j)`` over
selected pairs.  The paper's qualitative comparison (Figure 6b) shows it
concentrating on the outskirts of the dataset — the behaviour our
benchmark checks for.

Greedy rule: seed with a (near-)farthest pair, then repeatedly add the
object with the largest total distance to the current selection,
maintained incrementally in O(n) per step.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.distance import get_metric

__all__ = ["maxsum_select", "maxsum_value"]


def maxsum_select(
    points: np.ndarray,
    metric,
    k: int,
    *,
    exact_init: bool = False,
) -> List[int]:
    """Select ``k`` objects with the greedy MaxSum rule."""
    metric = get_metric(metric)
    points = np.asarray(points)
    n = points.shape[0]
    if not 0 < k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    if k == n:
        return list(range(n))

    if exact_init:
        matrix = metric.pairwise(points)
        first, second = np.unravel_index(int(np.argmax(matrix)), matrix.shape)
        first, second = int(first), int(second)
    else:
        first = int(np.argmax(metric.to_point(points, points[0])))
        second = int(np.argmax(metric.to_point(points, points[first])))

    selected = [first]
    totals = metric.to_point(points, points[first])
    if k >= 2:
        selected.append(second)
        totals = totals + metric.to_point(points, points[second])
    while len(selected) < k:
        totals[selected] = -np.inf
        pick = int(np.argmax(totals))
        selected.append(pick)
        totals = totals + metric.to_point(points, points[pick])
    return selected


def maxsum_value(points: np.ndarray, metric, selected: List[int]) -> float:
    """``f_Sum``: the total pairwise distance within the selection."""
    metric = get_metric(metric)
    points = np.asarray(points)
    ids = list(selected)
    if len(ids) < 2:
        return 0.0
    matrix = metric.pairwise(points[ids])
    return float(matrix[np.triu_indices(len(ids), k=1)].sum())

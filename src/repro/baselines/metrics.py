"""Solution-quality metrics used across Sections 4 and 6.

* ``fmin`` / ``fsum`` — the MaxMin / MaxSum objectives.
* ``coverage_ratio`` — fraction of the dataset within r of the solution
  (DisC solutions score 1.0 by construction; MaxSum and k-medoids do
  not, which is Figure 6's point).
* ``representation_error`` — the k-medoids objective (mean distance to
  the closest selected object).
* ``jaccard_distance`` — 1 − |A∩B| / |A∪B| between two solutions; the
  paper's measure of how much a zoomed solution preserves the previous
  one (Figures 13 and 16).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.baselines.maxmin import maxmin_value
from repro.baselines.maxsum import maxsum_value
from repro.distance import get_metric

__all__ = [
    "fmin",
    "fsum",
    "coverage_ratio",
    "representation_error",
    "jaccard_distance",
    "solution_summary",
]


def fmin(points, metric, selected: Sequence[int]) -> float:
    """Minimum pairwise distance in the selection (MaxMin objective)."""
    return maxmin_value(points, metric, list(selected))


def fsum(points, metric, selected: Sequence[int]) -> float:
    """Total pairwise distance in the selection (MaxSum objective)."""
    return maxsum_value(points, metric, list(selected))


def _closest_to_selected(points, metric, selected: Sequence[int]) -> np.ndarray:
    metric = get_metric(metric)
    points = np.asarray(points)
    closest = np.full(points.shape[0], np.inf)
    for sel in selected:
        np.minimum(closest, metric.to_point(points, points[sel]), out=closest)
    return closest


def coverage_ratio(points, metric, selected: Sequence[int], radius: float) -> float:
    """Fraction of objects within ``radius`` of some selected object."""
    ids = list(selected)
    if not ids:
        return 0.0
    closest = _closest_to_selected(points, metric, ids)
    return float(np.mean(closest <= radius))


def representation_error(points, metric, selected: Sequence[int]) -> float:
    """Mean distance to the closest selected object (k-medoids cost)."""
    ids = list(selected)
    if not ids:
        raise ValueError("selected must be non-empty")
    return float(_closest_to_selected(points, metric, ids).mean())


def jaccard_distance(a: Iterable[int], b: Iterable[int]) -> float:
    """1 − |A∩B| / |A∪B|; 0.0 for two empty sets (identical)."""
    set_a, set_b = set(a), set(b)
    union = set_a | set_b
    if not union:
        return 0.0
    return 1.0 - len(set_a & set_b) / len(union)


def solution_summary(points, metric, selected: Sequence[int], radius: float) -> dict:
    """All quality metrics for one solution, for experiment reports."""
    ids = list(selected)
    return {
        "size": len(ids),
        "fmin": fmin(points, metric, ids),
        "fsum": fsum(points, metric, ids),
        "coverage": coverage_ratio(points, metric, ids, radius),
        "representation_error": representation_error(points, metric, ids),
    }

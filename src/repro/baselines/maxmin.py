"""Greedy MaxMin diversification (Section 4 comparison).

MaxMin selects k objects maximising ``f_Min = min dist(p_i, p_j)`` over
the selected pairs.  The paper compares DisC against the standard greedy
heuristic (farthest-point / Gonzalez), which carries the classic 2-
approximation guarantee for the dispersion problem and is the
implementation the paper cites as achieving good solutions [10].

The heuristic is O(n·k): maintain each object's distance to the closest
selected object and repeatedly select the farthest object.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.distance import get_metric

__all__ = ["maxmin_select", "maxmin_value"]


def maxmin_select(
    points: np.ndarray,
    metric,
    k: int,
    *,
    seed: Optional[int] = None,
    exact_init: bool = False,
) -> List[int]:
    """Select ``k`` objects with the greedy MaxMin (farthest-point) rule.

    Parameters
    ----------
    seed:
        Seeds the choice of the starting object; ``None`` starts from
        object 0 (deterministic).
    exact_init:
        Start from the true farthest pair (O(n^2); small inputs only)
        instead of the two-pass approximation.
    """
    metric = get_metric(metric)
    points = np.asarray(points)
    n = points.shape[0]
    if not 0 < k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    if k == n:
        return list(range(n))

    if exact_init:
        matrix = metric.pairwise(points)
        first, second = np.unravel_index(int(np.argmax(matrix)), matrix.shape)
        first, second = int(first), int(second)
    else:
        rng = np.random.default_rng(seed)
        start = int(rng.integers(n)) if seed is not None else 0
        # Two hops of farthest-first approximate the diameter endpoints.
        first = int(np.argmax(metric.to_point(points, points[start])))
        second = int(np.argmax(metric.to_point(points, points[first])))

    selected = [first]
    closest = metric.to_point(points, points[first])
    if k >= 2:
        selected.append(second)
        np.minimum(closest, metric.to_point(points, points[second]), out=closest)
    while len(selected) < k:
        closest[selected] = -np.inf  # never re-select
        pick = int(np.argmax(closest))
        selected.append(pick)
        np.minimum(closest, metric.to_point(points, points[pick]), out=closest)
    return selected


def maxmin_value(points: np.ndarray, metric, selected: List[int]) -> float:
    """``f_Min``: the minimum pairwise distance within the selection."""
    metric = get_metric(metric)
    points = np.asarray(points)
    ids = list(selected)
    if len(ids) < 2:
        return float("inf")
    matrix = metric.pairwise(points[ids])
    upper = matrix[np.triu_indices(len(ids), k=1)]
    return float(upper.min())

"""High-level public API: the typed request pipeline and sessions.

The pipeline has three layers:

1. **Requests** (:mod:`repro.requests`): :class:`~repro.requests.SelectRequest`
   + :class:`~repro.requests.EngineSpec` are typed, validated,
   JSON-round-trippable descriptions of a diversification request.
   ``validate()`` runs once, up front, and fails identically on empty
   and non-empty data.
2. **Engines** (:mod:`repro.engines`): index engines self-register with
   capability descriptors; ``engine="auto"`` is a registry policy over
   capabilities and workload shape (paper-fidelity M-tree at paper
   scale, CSR/blocked engines beyond it or under ``accelerate=True``),
   not a hard-coded default.
3. **Sessions**: :class:`DiscSession` is the stateful façade for the
   paper's interactive mode (Section 3) — index once, then select /
   zoom / compare.  It installs a radius-keyed LRU adjacency cache so
   zoom and repeated-radius selects reuse the materialised CSR/blocked
   adjacency instead of rebuilding it, and offers ``select_many`` for
   batch selection over the shared index.

:func:`execute_request` is the one-shot entry point a service would
expose: request in, :class:`~repro.core.result.DiscResult` out (both
sides serialisable via ``to_dict``/``from_dict``).

Backwards-compatible shims
--------------------------
:func:`build_index` and :func:`disc_select` keep their historical
signatures and delegate to the pipeline.  :class:`DiscDiversifier` is
the old name of :class:`DiscSession`; it still works but emits a
``DeprecationWarning``.

Example
-------
>>> from repro import DiscSession, uniform_dataset
>>> data = uniform_dataset(n=500, seed=1)
>>> session = DiscSession(data)
>>> result = session.select(radius=0.1)
>>> finer = session.zoom_in(0.05)
>>> assert set(result.selected) <= set(finer.selected)

Input contracts
---------------
Unknown engines, engine options and method keywords are rejected with
the registry's capability-derived messages.  Radii are validated where
they are consumed: NaN and ±inf raise ``ValueError`` from every entry
point, 0 is a valid degenerate radius, and an empty dataset yields an
empty result instead of erroring — after the *whole* request has been
validated, so a typo never ships green until the first real request.
"""

from __future__ import annotations

import warnings
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.baselines import (
    kmedoids_select,
    maxmin_select,
    maxsum_select,
    solution_summary,
)
from repro.core import (
    DiscResult,
    greedy_c,
    local_zoom,
    verify_disc,
    zoom_in,
    zoom_out,
)
from repro.datasets import Dataset
from repro.distance import get_metric
from repro.engines import AdjacencyCache
from repro.index import NeighborIndex
from repro.index.base import IndexStats
from repro.requests import METHODS, EngineSpec, SelectRequest
from repro.validation import validate_radius

__all__ = [
    "build_index",
    "disc_select",
    "execute_request",
    "DiscSession",
    "DiscDiversifier",
]


def resolve_data(data, metric):
    """Accept a Dataset or a raw array (+ metric) uniformly.

    Resolution is idempotent: an already-resolved ``(ndarray, Metric)``
    pair passes through unchanged (``get_metric`` accepts
    :class:`~repro.distance.Metric` instances), so layered entry points
    resolve exactly once — no double-resolution of metric objects.
    """
    if isinstance(data, Dataset):
        return data.points, data.metric
    if metric is None:
        raise ValueError("metric is required when passing a raw point array")
    return np.asarray(data), get_metric(metric)


# Backwards-compatible private alias (pre-pipeline name).
_resolve = resolve_data


def build_index(
    data: Union[Dataset, np.ndarray],
    metric=None,
    *,
    engine: str = "auto",
    **engine_options,
) -> NeighborIndex:
    """Construct a neighbor index over ``data`` (thin registry shim).

    ``engine`` is a registered engine name (``"brute"``, ``"grid"``,
    ``"kdtree"``, ``"mtree"``) or ``"auto"`` — the capability policy of
    :mod:`repro.engines.registry`: the M-tree (the paper's substrate,
    exact node-access accounting) up to paper scale, a CSR-capable
    engine beyond it.  Extra keyword options go to the engine
    constructor (e.g. ``capacity=...`` for the M-tree, ``cell_size=...``
    for the grid, ``leafsize=...`` for the KD-tree) and also *constrain*
    ``auto``: only engines accepting the given option names are
    considered, so ``engine="auto", capacity=10`` still lands on the
    M-tree.

    ``accelerate`` (in ``engine_options``) gates the CSR neighborhood
    engine of :mod:`repro.graph.csr`: ``"auto"`` (default) lets every
    CSR-capable engine materialise the fixed-radius adjacency once and
    run the heuristics as vectorised array ops (upgrading to the
    blocked adjacency of :mod:`repro.graph.blocked` on clustered
    workloads); ``False`` forces the legacy per-query path; ``True``
    insists on the engine and is rejected for engines with no CSR
    builder (the M-tree, whose per-query node-access accounting is the
    paper's cost metric).
    """
    points, resolved_metric = resolve_data(data, metric)
    spec = EngineSpec(name=engine, options=engine_options).validate()
    return spec.build(points, resolved_metric)


def _empty_result(request: SelectRequest) -> DiscResult:
    """The degenerate answer for an empty dataset (validated request)."""
    return DiscResult(
        selected=[],
        radius=request.radius,
        algorithm=request.empty_result_label(),
        stats=IndexStats(),
        meta={"empty_input": True},
    )


def execute_request(
    data: Union[Dataset, np.ndarray],
    request: Union[SelectRequest, dict],
    *,
    metric=None,
) -> DiscResult:
    """Run one :class:`~repro.requests.SelectRequest` end to end.

    The service entry point: validates the request (radius, method,
    method keywords, engine spec — all before touching the data),
    resolves the engine through the registry, builds the index and runs
    the heuristic.  An empty dataset returns an empty
    :class:`~repro.core.result.DiscResult` carrying the same
    variant-aware algorithm label a real run would have produced.

    ``request`` may be a :class:`~repro.requests.SelectRequest` or its
    ``to_dict()`` form (the wire format).
    """
    request = SelectRequest.coerce(request).validate()
    points, resolved_metric = resolve_data(data, metric)
    if points.shape[0] == 0:
        # Nothing to cover: the unique r-DisC diverse subset is empty.
        # The request was already validated in full above, so a typo'd
        # engine, engine option or heuristic kwarg fails here exactly
        # as it would on non-empty data.
        return _empty_result(request)
    index = request.engine.build(points, resolved_metric, radius=request.radius)
    algorithm = METHODS[request.method]
    return algorithm(index, request.radius, **dict(request.method_options))


def disc_select(
    data: Union[Dataset, np.ndarray],
    radius: float,
    *,
    metric=None,
    method: str = "greedy",
    engine: str = "auto",
    engine_options: Optional[dict] = None,
    **method_options,
) -> DiscResult:
    """One-shot DisC diversification (thin :func:`execute_request` shim).

    ``method`` is one of ``"basic"``, ``"greedy"``, ``"greedy-c"``,
    ``"fast-c"``; remaining keyword arguments go to the heuristic
    (``prune=True``, ``update_variant="white"``, ``lazy=True``, ...).

    The radius must be finite and non-negative; an empty dataset yields
    an empty result, so service callers need no special-casing on
    either side.  Equivalent to building a
    :class:`~repro.requests.SelectRequest` and calling
    :func:`execute_request` — which is exactly what it does.
    """
    request = SelectRequest(
        radius=radius,
        method=method,
        method_options=method_options,
        engine=EngineSpec(name=engine, options=engine_options or {}),
    )
    return execute_request(data, request, metric=metric)


class DiscSession:
    """Stateful façade: index once, then select / zoom / compare.

    The paper's interactive mode (Section 3) is a session workload:
    select once, then zoom in/out adaptively.  A session builds the
    index a single time, keeps the last :class:`DiscResult` so zooming
    picks up from the solution the user is looking at, and installs a
    radius-keyed LRU adjacency cache (:class:`~repro.engines.cache.
    AdjacencyCache`) on the index so repeated radii — the zoom
    back-and-forth pattern — reuse the materialised CSR/blocked
    adjacency instead of rebuilding it.

    Parameters
    ----------
    data, metric:
        A :class:`~repro.datasets.base.Dataset`, or a raw point array
        plus a metric (name or :class:`~repro.distance.Metric`
        instance — resolution is idempotent).
    engine:
        Registered engine name or ``"auto"`` (registry policy).
    cache_radii:
        LRU budget: how many radii worth of adjacency to keep
        materialised at once (default 8; the cache is also installed
        for engines that never materialise adjacency, where it is
        simply never filled).
    adjacency_cache:
        An :class:`~repro.engines.cache.AdjacencyCache` to install
        instead of the session-private LRU — in particular a
        :class:`~repro.service.cache.SharedCacheView`, which lets many
        sessions over the same dataset share one process-wide
        adjacency store (the multi-user serving pattern of
        :mod:`repro.service`).  When given, ``cache_radii`` is
        ignored; the cache's own budgets apply.
    engine_options:
        Engine constructor options; ``accelerate`` is extracted and
        applied as the CSR gate.
    """

    def __init__(
        self,
        data: Union[Dataset, np.ndarray],
        metric=None,
        *,
        engine: str = "auto",
        cache_radii: int = 8,
        adjacency_cache: Optional[AdjacencyCache] = None,
        **engine_options,
    ):
        self.points, self.metric = resolve_data(data, metric)
        self.spec = EngineSpec(name=engine, options=engine_options).validate()
        entry, accelerate, options = self.spec.resolve(
            n=int(self.points.shape[0]), metric=self.metric
        )
        self.index = entry.create(self.points, self.metric, accelerate, options)
        self.engine = entry.name
        if adjacency_cache is None:
            adjacency_cache = AdjacencyCache(max_entries=cache_radii)
        self.index.set_adjacency_cache(adjacency_cache)
        self.last_result: Optional[DiscResult] = None

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def execute(self, request: Union[SelectRequest, dict]) -> DiscResult:
        """Run a :class:`~repro.requests.SelectRequest` on this session.

        The session's index is the substrate, so the request's engine
        spec must be satisfiable by it: the name must be ``"auto"`` or
        the session's resolved engine, the ``accelerate`` gate must be
        ``"auto"`` or the session's own, and any engine options must
        match the session's — a session cannot silently honour a
        request configured for a different substrate.  Method options
        gain the session default ``track_closest_black=True`` (zooming
        needs the closest-black distances of Section 5.2) unless the
        request sets it.
        """
        request = SelectRequest.coerce(request).validate()
        spec = request.engine  # already a validated EngineSpec
        mismatches = []
        if spec.name not in ("auto", self.engine):
            mismatches.append(f"engine {spec.name!r} (session: {self.engine!r})")
        if spec.accelerate != "auto" and spec.accelerate != self.spec.accelerate:
            mismatches.append(
                f"accelerate={spec.accelerate!r} "
                f"(session: {self.spec.accelerate!r})"
            )
        if spec.options and dict(spec.options) != dict(self.spec.options):
            mismatches.append(
                f"options {dict(spec.options)!r} "
                f"(session: {dict(self.spec.options)!r})"
            )
        if mismatches:
            raise ValueError(
                "request is not satisfiable by this session — "
                + "; ".join(mismatches)
                + "; use execute_request() for one-shot cross-engine requests"
            )
        request = request.with_options(track_closest_black=True)
        algorithm = METHODS[request.method]
        self.last_result = algorithm(
            self.index, request.radius, **dict(request.method_options)
        )
        return self.last_result

    def select(self, radius: float, *, method: str = "greedy", **options) -> DiscResult:
        """Compute a fresh DisC diverse subset at ``radius``."""
        return self.execute(
            SelectRequest(radius=radius, method=method, method_options=options)
        )

    def select_many(
        self, radii: Sequence[float], *, method: str = "greedy", **options
    ) -> List[DiscResult]:
        """Batch selection over the shared index, one result per radius.

        Repeated radii hit the session's adjacency cache, so a zoom
        sequence like ``[r, r/2, r, r/2]`` builds each adjacency once.
        ``last_result`` ends at the final radius, matching a sequence
        of :meth:`select` calls.
        """
        return [self.select(r, method=method, **options) for r in radii]

    # ------------------------------------------------------------------
    # Zooming
    # ------------------------------------------------------------------
    def _require_last(self) -> DiscResult:
        if self.last_result is None:
            raise RuntimeError("call select() before zooming")
        return self.last_result

    def zoom_in(self, new_radius: float, *, greedy: bool = True) -> DiscResult:
        """Adapt the current solution to a smaller radius (more results)."""
        self.last_result = zoom_in(
            self.index, self._require_last(), new_radius, greedy=greedy
        )
        return self.last_result

    def zoom_out(self, new_radius: float, *, variant: Optional[str] = "a") -> DiscResult:
        """Adapt the current solution to a larger radius (fewer results)."""
        self.last_result = zoom_out(
            self.index, self._require_last(), new_radius, greedy_variant=variant
        )
        return self.last_result

    def local_zoom(self, center_id: int, new_radius: float, *, greedy: bool = True) -> DiscResult:
        """Re-diversify only the area around one selected object."""
        self.last_result = local_zoom(
            self.index, self._require_last(), center_id, new_radius, greedy=greedy
        )
        return self.last_result

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def cache_info(self) -> dict:
        """Hit/miss/eviction counters of the adjacency LRU."""
        return self.index.adjacency_cache.info()

    def verify(self, result: Optional[DiscResult] = None):
        """Check Definition 1 on a result (defaults to the last one)."""
        result = result or self._require_last()
        return verify_disc(self.points, self.metric, result.selected, result.radius)

    def compare_methods(self, radius: float, *, seed: int = 0) -> dict:
        """Run DisC + the Section 4 baselines at matched k (Figure 6).

        DisC determines the subset size; MaxMin, MaxSum and k-medoids
        are then run with that k so their quality metrics are
        comparable.  The DisC solution goes through the session path
        (:meth:`select`, with its ``track_closest_black`` default), and
        an existing ``last_result`` holding a (grey) Greedy-DisC
        solution at this radius is reused instead of recomputed.  The
        comparison is read-only with respect to the zoom state:
        ``last_result`` is unchanged afterwards, so a follow-up zoom
        still adapts the view the user was looking at.
        """
        radius = validate_radius(radius)
        previous = self.last_result
        if (
            previous is not None
            and previous.radius == radius
            # Only the grey update family selects the same subset as
            # the reference Greedy-DisC (lazy/pruned variants are
            # selection-identical by construction; the white variant
            # is a different algorithm and must not stand in for it).
            and "Grey-Greedy-DisC" in previous.algorithm
        ):
            disc = previous
        else:
            disc = self.select(radius)
            self.last_result = previous
        k = max(disc.size, 1)
        rows = {
            "DisC": disc.selected,
            "r-C": greedy_c(self.index, radius).selected,
            "MaxMin": maxmin_select(self.points, self.metric, k),
            "MaxSum": maxsum_select(self.points, self.metric, k),
            "k-medoids": kmedoids_select(self.points, self.metric, k, seed=seed),
        }
        return {
            name: solution_summary(self.points, self.metric, selected, radius)
            for name, selected in rows.items()
        }

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"{type(self).__name__}(n={self.points.shape[0]}, "
            f"engine={self.engine!r}, metric={self.metric.name})"
        )


class DiscDiversifier(DiscSession):
    """Deprecated alias of :class:`DiscSession` (pre-pipeline name).

    Same constructor, same behaviour; emits a ``DeprecationWarning`` so
    service code migrates to the session vocabulary.
    """

    def __init__(
        self,
        data: Union[Dataset, np.ndarray],
        metric=None,
        *,
        engine: str = "auto",
        cache_radii: int = 8,
        adjacency_cache: Optional[AdjacencyCache] = None,
        **engine_options,
    ):
        warnings.warn(
            "DiscDiversifier has been renamed DiscSession; the old name is "
            "a shim and will be removed in a future release",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(
            data,
            metric,
            engine=engine,
            cache_radii=cache_radii,
            adjacency_cache=adjacency_cache,
            **engine_options,
        )

"""High-level public API.

Most users want three things: build an index over their query result,
compute a DisC diverse subset, and zoom.  :class:`DiscDiversifier` wraps
that workflow; the free functions serve one-shot use.

Example
-------
>>> from repro import DiscDiversifier, uniform_dataset
>>> data = uniform_dataset(n=500, seed=1)
>>> diversifier = DiscDiversifier(data)
>>> result = diversifier.select(radius=0.1)
>>> finer = diversifier.zoom_in(0.05)
>>> assert set(result.selected) <= set(finer.selected)
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.baselines import (
    kmedoids_select,
    maxmin_select,
    maxsum_select,
    solution_summary,
)
from repro.core import (
    DiscResult,
    basic_disc,
    fast_c,
    greedy_c,
    greedy_disc,
    local_zoom,
    verify_disc,
    zoom_in,
    zoom_out,
)
from repro.datasets import Dataset
from repro.distance import get_metric
from repro.index import BruteForceIndex, GridIndex, KDTreeIndex, NeighborIndex
from repro.index.base import validate_accelerate
from repro.mtree import MTreeIndex

__all__ = ["build_index", "disc_select", "DiscDiversifier"]

_METHODS = {
    "basic": basic_disc,
    "greedy": greedy_disc,
    "greedy-c": greedy_c,
    "fast-c": fast_c,
}


def _resolve(data, metric):
    """Accept a Dataset or a raw array (+ metric) uniformly."""
    if isinstance(data, Dataset):
        return data.points, data.metric
    if metric is None:
        raise ValueError("metric is required when passing a raw point array")
    return np.asarray(data), get_metric(metric)


def build_index(
    data: Union[Dataset, np.ndarray],
    metric=None,
    *,
    engine: str = "auto",
    **engine_options,
) -> NeighborIndex:
    """Construct a neighbor index over ``data``.

    ``engine`` is one of ``"auto"``, ``"brute"``, ``"grid"``,
    ``"kdtree"``, ``"mtree"``.  ``auto`` picks the M-tree (the paper's
    substrate) — it works for any metric and enables pruning and zooming
    accelerations.  Extra keyword options go to the engine constructor
    (e.g. ``capacity=...``, ``split_policy=...``, ``build_radius=...``
    for the M-tree; ``cell_size=...`` for the grid; ``leafsize=...`` for
    the KD-tree).

    Performance & engines
    ---------------------
    ``accelerate`` (in ``engine_options``) gates the CSR neighborhood
    engine of :mod:`repro.graph.csr`: ``"auto"`` (default) lets every
    simple engine (brute, grid, kdtree) materialise the fixed-radius
    adjacency once as int32 CSR arrays and run Greedy-DisC / Greedy-C /
    zooming as vectorised array ops — identical selections, ~10-100x
    faster at paper scale (see ``results/BENCH_perf.json``).
    ``False`` forces the legacy per-query path (the parity baseline);
    ``True`` insists on the engine and is rejected for the M-tree,
    whose per-query node-access accounting is the paper's cost metric
    and must stay exact.  Batched neighborhoods for many centers are
    available on every index via
    ``index.range_query_batch(ids, radius)``.
    """
    points, resolved_metric = _resolve(data, metric)
    engine = engine.lower()
    accelerate = validate_accelerate(engine_options.pop("accelerate", "auto"))
    if engine in ("auto", "mtree"):
        if accelerate is True:
            raise ValueError(
                "the M-tree has no CSR engine (its per-query node-access "
                "accounting is the paper's cost metric); pick a simple "
                'engine for accelerate=True or use accelerate="auto"'
            )
        index = MTreeIndex(points, resolved_metric, **engine_options)
    elif engine == "brute":
        # Pass through the constructor so a ctor-time ``cache_radius``
        # precompute already lands on the requested path.
        index = BruteForceIndex(
            points, resolved_metric, accelerate=accelerate, **engine_options
        )
    elif engine == "grid":
        index = GridIndex(points, resolved_metric, **engine_options)
    elif engine == "kdtree":
        index = KDTreeIndex(points, resolved_metric, **engine_options)
    else:
        raise ValueError(
            f"unknown engine {engine!r}; expected auto, brute, grid, kdtree or mtree"
        )
    index.accelerate = accelerate
    return index


def disc_select(
    data: Union[Dataset, np.ndarray],
    radius: float,
    *,
    metric=None,
    method: str = "greedy",
    engine: str = "auto",
    engine_options: Optional[dict] = None,
    **method_options,
) -> DiscResult:
    """One-shot DisC diversification.

    ``method`` is one of ``"basic"``, ``"greedy"``, ``"greedy-c"``,
    ``"fast-c"``; remaining keyword arguments go to the heuristic
    (``prune=True``, ``update_variant="white"``, ``lazy=True``, ...).
    """
    try:
        algorithm = _METHODS[method.lower()]
    except KeyError:
        raise ValueError(
            f"unknown method {method!r}; expected one of {sorted(_METHODS)}"
        ) from None
    index = build_index(data, metric, engine=engine, **(engine_options or {}))
    return algorithm(index, radius, **method_options)


class DiscDiversifier:
    """Stateful façade: index once, then select / zoom / compare.

    Keeps the last :class:`DiscResult` so that zooming picks up from the
    solution the user is looking at, matching the paper's interactive
    mode of operation (Section 3).
    """

    def __init__(
        self,
        data: Union[Dataset, np.ndarray],
        metric=None,
        *,
        engine: str = "auto",
        **engine_options,
    ):
        self.points, self.metric = _resolve(data, metric)
        self.index = build_index(self.points, self.metric, engine=engine, **engine_options)
        self.last_result: Optional[DiscResult] = None

    # ------------------------------------------------------------------
    def select(self, radius: float, *, method: str = "greedy", **options) -> DiscResult:
        """Compute a fresh DisC diverse subset at ``radius``."""
        try:
            algorithm = _METHODS[method.lower()]
        except KeyError:
            raise ValueError(
                f"unknown method {method!r}; expected one of {sorted(_METHODS)}"
            ) from None
        options.setdefault("track_closest_black", True)
        self.last_result = algorithm(self.index, radius, **options)
        return self.last_result

    def _require_last(self) -> DiscResult:
        if self.last_result is None:
            raise RuntimeError("call select() before zooming")
        return self.last_result

    def zoom_in(self, new_radius: float, *, greedy: bool = True) -> DiscResult:
        """Adapt the current solution to a smaller radius (more results)."""
        self.last_result = zoom_in(
            self.index, self._require_last(), new_radius, greedy=greedy
        )
        return self.last_result

    def zoom_out(self, new_radius: float, *, variant: Optional[str] = "a") -> DiscResult:
        """Adapt the current solution to a larger radius (fewer results)."""
        self.last_result = zoom_out(
            self.index, self._require_last(), new_radius, greedy_variant=variant
        )
        return self.last_result

    def local_zoom(self, center_id: int, new_radius: float, *, greedy: bool = True) -> DiscResult:
        """Re-diversify only the area around one selected object."""
        self.last_result = local_zoom(
            self.index, self._require_last(), center_id, new_radius, greedy=greedy
        )
        return self.last_result

    # ------------------------------------------------------------------
    def verify(self, result: Optional[DiscResult] = None):
        """Check Definition 1 on a result (defaults to the last one)."""
        result = result or self._require_last()
        return verify_disc(self.points, self.metric, result.selected, result.radius)

    def compare_methods(self, radius: float, *, seed: int = 0) -> dict:
        """Run DisC + the Section 4 baselines at matched k (Figure 6).

        DisC determines the subset size; MaxMin, MaxSum and k-medoids are
        then run with that k so their quality metrics are comparable.
        """
        disc = greedy_disc(self.index, radius)
        k = max(disc.size, 1)
        rows = {
            "DisC": disc.selected,
            "r-C": greedy_c(self.index, radius).selected,
            "MaxMin": maxmin_select(self.points, self.metric, k),
            "MaxSum": maxsum_select(self.points, self.metric, k),
            "k-medoids": kmedoids_select(self.points, self.metric, k, seed=seed),
        }
        return {
            name: solution_summary(self.points, self.metric, selected, radius)
            for name, selected in rows.items()
        }

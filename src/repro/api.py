"""High-level public API.

Most users want three things: build an index over their query result,
compute a DisC diverse subset, and zoom.  :class:`DiscDiversifier` wraps
that workflow; the free functions serve one-shot use.

Example
-------
>>> from repro import DiscDiversifier, uniform_dataset
>>> data = uniform_dataset(n=500, seed=1)
>>> diversifier = DiscDiversifier(data)
>>> result = diversifier.select(radius=0.1)
>>> finer = diversifier.zoom_in(0.05)
>>> assert set(result.selected) <= set(finer.selected)
"""

from __future__ import annotations

import inspect
from typing import Optional, Sequence, Union

import numpy as np

from repro.baselines import (
    kmedoids_select,
    maxmin_select,
    maxsum_select,
    solution_summary,
)
from repro.core import (
    DiscResult,
    basic_disc,
    fast_c,
    greedy_c,
    greedy_disc,
    local_zoom,
    verify_disc,
    zoom_in,
    zoom_out,
)
from repro.datasets import Dataset
from repro.distance import get_metric
from repro.index import BruteForceIndex, GridIndex, KDTreeIndex, NeighborIndex
from repro.index.base import IndexStats, validate_accelerate
from repro.mtree import MTreeIndex
from repro.validation import validate_radius

__all__ = ["build_index", "disc_select", "DiscDiversifier"]

_METHODS = {
    "basic": basic_disc,
    "greedy": greedy_disc,
    "greedy-c": greedy_c,
    "fast-c": fast_c,
}

#: Algorithm labels used when a heuristic is answered degenerately
#: (empty input) without running; match each heuristic's default name.
_METHOD_NAMES = {
    "basic": "Basic-DisC",
    "greedy": "Grey-Greedy-DisC",
    "greedy-c": "Greedy-C",
    "fast-c": "Fast-C",
}


def _empty_input_label(method: str, options: dict) -> str:
    """The algorithm label the heuristic itself would have reported.

    Callers key logs on ``result.algorithm``, so the degenerate
    empty-input answer must carry the same variant-aware name as a real
    run of the identical request.
    """
    if method == "greedy":
        from repro.core.greedy import _variant_name

        update_variant = options.get("update_variant", "grey")
        if update_variant not in ("grey", "white"):
            raise ValueError(f"unknown update_variant {update_variant!r}")
        return _variant_name(
            update_variant,
            bool(options.get("lazy", False)),
            bool(options.get("prune", False)),
        )
    if method == "basic" and options.get("prune"):
        return "Basic-DisC (Pruned)"
    return _METHOD_NAMES[method]

_ENGINE_CLASSES = {
    "auto": MTreeIndex,
    "mtree": MTreeIndex,
    "brute": BruteForceIndex,
    "grid": GridIndex,
    "kdtree": KDTreeIndex,
}


def _check_engine_options(engine: str, cls, options: dict) -> None:
    """Reject unknown engine keywords with the valid names spelled out.

    Without this, a typo like ``index="kdtree"`` surfaces as an opaque
    ``MTreeIndex.__init__() got an unexpected keyword argument`` from
    whatever engine ``auto`` picked — the caller never asked for an
    M-tree and has no idea which signature to read.
    """
    params = inspect.signature(cls.__init__).parameters
    valid = sorted(
        name
        for name, param in params.items()
        if name not in ("self", "points", "metric")
        and param.kind
        not in (inspect.Parameter.VAR_POSITIONAL, inspect.Parameter.VAR_KEYWORD)
    )
    unknown = sorted(set(options) - set(valid) - {"accelerate"})
    if unknown:
        raise ValueError(
            f"unknown engine option(s) {', '.join(map(repr, unknown))} for "
            f"engine {engine!r} ({cls.__name__}); valid options: "
            f"{', '.join(sorted(set(valid) | {'accelerate'}))}"
        )


def _validate_engine_request(engine: str, engine_options: dict):
    """Validate an engine choice + options without building anything.

    The single validation path shared by :func:`build_index` and the
    empty-dataset fast path of :func:`disc_select`, so a bad request
    fails identically whether or not there is data to index.  Returns
    ``(engine, engine_cls, accelerate, options)`` with ``accelerate``
    already popped out of ``options``.
    """
    engine = engine.lower()
    options = dict(engine_options)
    accelerate = validate_accelerate(options.pop("accelerate", "auto"))
    try:
        engine_cls = _ENGINE_CLASSES[engine]
    except KeyError:
        raise ValueError(
            f"unknown engine {engine!r}; expected auto, brute, grid, kdtree or mtree"
        ) from None
    _check_engine_options(engine, engine_cls, options)
    if engine in ("auto", "mtree") and accelerate is True:
        raise ValueError(
            "the M-tree has no CSR engine (its per-query node-access "
            "accounting is the paper's cost metric); pick a simple "
            'engine for accelerate=True or use accelerate="auto"'
        )
    return engine, engine_cls, accelerate, options


def _resolve(data, metric):
    """Accept a Dataset or a raw array (+ metric) uniformly."""
    if isinstance(data, Dataset):
        return data.points, data.metric
    if metric is None:
        raise ValueError("metric is required when passing a raw point array")
    return np.asarray(data), get_metric(metric)


def build_index(
    data: Union[Dataset, np.ndarray],
    metric=None,
    *,
    engine: str = "auto",
    **engine_options,
) -> NeighborIndex:
    """Construct a neighbor index over ``data``.

    ``engine`` is one of ``"auto"``, ``"brute"``, ``"grid"``,
    ``"kdtree"``, ``"mtree"``.  ``auto`` picks the M-tree (the paper's
    substrate) — it works for any metric and enables pruning and zooming
    accelerations.  Extra keyword options go to the engine constructor
    (e.g. ``capacity=...``, ``split_policy=...``, ``build_radius=...``
    for the M-tree; ``cell_size=...`` for the grid; ``leafsize=...`` for
    the KD-tree).

    Performance & engines
    ---------------------
    ``accelerate`` (in ``engine_options``) gates the CSR neighborhood
    engine of :mod:`repro.graph.csr`: ``"auto"`` (default) lets every
    simple engine (brute, grid, kdtree) materialise the fixed-radius
    adjacency once as int32 CSR arrays and run Greedy-DisC / Greedy-C /
    zooming as vectorised array ops — identical selections, ~10-100x
    faster at paper scale (see ``results/BENCH_perf.json``).  On
    clustered workloads whose edge mass concentrates in provably-dense
    grid-cell pairs, the grid-backed builders transparently upgrade to
    the *blocked* adjacency of :mod:`repro.graph.blocked` — the dense
    pairs stay implicit (id arrays instead of hundreds of millions of
    edges) while selections remain byte-identical.
    ``False`` forces the legacy per-query path (the parity baseline);
    ``True`` insists on the engine and is rejected for the M-tree,
    whose per-query node-access accounting is the paper's cost metric
    and must stay exact.  Batched neighborhoods for many centers are
    available on every index via
    ``index.range_query_batch(ids, radius)``.

    Input contracts
    ---------------
    Unknown keyword options are rejected with the chosen engine's valid
    option names (rather than an opaque ``TypeError`` from whatever
    engine ``auto`` picked).  Radii are validated where they are
    consumed: NaN and ±inf raise ``ValueError`` from every entry point
    (:func:`disc_select`, the heuristics, the CSR builders), 0 is a
    valid degenerate radius, and :func:`disc_select` on an empty
    dataset returns an empty result instead of erroring.
    """
    points, resolved_metric = _resolve(data, metric)
    engine, _, accelerate, engine_options = _validate_engine_request(
        engine, engine_options
    )
    if engine in ("auto", "mtree"):
        index = MTreeIndex(points, resolved_metric, **engine_options)
    elif engine == "brute":
        # Pass through the constructor so a ctor-time ``cache_radius``
        # precompute already lands on the requested path.
        index = BruteForceIndex(
            points, resolved_metric, accelerate=accelerate, **engine_options
        )
    elif engine == "grid":
        index = GridIndex(points, resolved_metric, **engine_options)
    else:  # kdtree (the unknown-name case raised above)
        index = KDTreeIndex(points, resolved_metric, **engine_options)
    index.accelerate = accelerate
    return index


def disc_select(
    data: Union[Dataset, np.ndarray],
    radius: float,
    *,
    metric=None,
    method: str = "greedy",
    engine: str = "auto",
    engine_options: Optional[dict] = None,
    **method_options,
) -> DiscResult:
    """One-shot DisC diversification.

    ``method`` is one of ``"basic"``, ``"greedy"``, ``"greedy-c"``,
    ``"fast-c"``; remaining keyword arguments go to the heuristic
    (``prune=True``, ``update_variant="white"``, ``lazy=True``, ...).

    The radius must be finite and non-negative (NaN used to sail
    through the ``radius < 0`` guards and return the *entire dataset*
    as "diverse"); an empty dataset yields an empty result, so service
    callers need no special-casing on either side.
    """
    try:
        algorithm = _METHODS[method.lower()]
    except KeyError:
        raise ValueError(
            f"unknown method {method!r}; expected one of {sorted(_METHODS)}"
        ) from None
    radius = validate_radius(radius)
    points, _ = _resolve(data, metric)
    if points.shape[0] == 0:
        # Nothing to cover: the unique r-DisC diverse subset is empty.
        # Still validate the whole request first — a typo'd engine,
        # engine option or heuristic kwarg must fail here exactly as it
        # would on non-empty data, not ship green until the first real
        # request.
        _validate_engine_request(engine, engine_options or {})
        params = inspect.signature(algorithm).parameters
        keyword_only = {
            name
            for name, param in params.items()
            if param.kind == inspect.Parameter.KEYWORD_ONLY
        }
        unknown = sorted(set(method_options) - keyword_only)
        if unknown:
            raise TypeError(
                f"{algorithm.__name__}() got unexpected keyword argument(s) "
                f"{', '.join(map(repr, unknown))}"
            )
        return DiscResult(
            selected=[],
            radius=radius,
            algorithm=_empty_input_label(method.lower(), method_options),
            stats=IndexStats(),
            meta={"empty_input": True},
        )
    index = build_index(data, metric, engine=engine, **(engine_options or {}))
    return algorithm(index, radius, **method_options)


class DiscDiversifier:
    """Stateful façade: index once, then select / zoom / compare.

    Keeps the last :class:`DiscResult` so that zooming picks up from the
    solution the user is looking at, matching the paper's interactive
    mode of operation (Section 3).
    """

    def __init__(
        self,
        data: Union[Dataset, np.ndarray],
        metric=None,
        *,
        engine: str = "auto",
        **engine_options,
    ):
        self.points, self.metric = _resolve(data, metric)
        self.index = build_index(self.points, self.metric, engine=engine, **engine_options)
        self.last_result: Optional[DiscResult] = None

    # ------------------------------------------------------------------
    def select(self, radius: float, *, method: str = "greedy", **options) -> DiscResult:
        """Compute a fresh DisC diverse subset at ``radius``."""
        try:
            algorithm = _METHODS[method.lower()]
        except KeyError:
            raise ValueError(
                f"unknown method {method!r}; expected one of {sorted(_METHODS)}"
            ) from None
        options.setdefault("track_closest_black", True)
        self.last_result = algorithm(self.index, radius, **options)
        return self.last_result

    def _require_last(self) -> DiscResult:
        if self.last_result is None:
            raise RuntimeError("call select() before zooming")
        return self.last_result

    def zoom_in(self, new_radius: float, *, greedy: bool = True) -> DiscResult:
        """Adapt the current solution to a smaller radius (more results)."""
        self.last_result = zoom_in(
            self.index, self._require_last(), new_radius, greedy=greedy
        )
        return self.last_result

    def zoom_out(self, new_radius: float, *, variant: Optional[str] = "a") -> DiscResult:
        """Adapt the current solution to a larger radius (fewer results)."""
        self.last_result = zoom_out(
            self.index, self._require_last(), new_radius, greedy_variant=variant
        )
        return self.last_result

    def local_zoom(self, center_id: int, new_radius: float, *, greedy: bool = True) -> DiscResult:
        """Re-diversify only the area around one selected object."""
        self.last_result = local_zoom(
            self.index, self._require_last(), center_id, new_radius, greedy=greedy
        )
        return self.last_result

    # ------------------------------------------------------------------
    def verify(self, result: Optional[DiscResult] = None):
        """Check Definition 1 on a result (defaults to the last one)."""
        result = result or self._require_last()
        return verify_disc(self.points, self.metric, result.selected, result.radius)

    def compare_methods(self, radius: float, *, seed: int = 0) -> dict:
        """Run DisC + the Section 4 baselines at matched k (Figure 6).

        DisC determines the subset size; MaxMin, MaxSum and k-medoids are
        then run with that k so their quality metrics are comparable.
        """
        disc = greedy_disc(self.index, radius)
        k = max(disc.size, 1)
        rows = {
            "DisC": disc.selected,
            "r-C": greedy_c(self.index, radius).selected,
            "MaxMin": maxmin_select(self.points, self.metric, k),
            "MaxSum": maxsum_select(self.points, self.metric, k),
            "k-medoids": kmedoids_select(self.points, self.metric, k, seed=seed),
        }
        return {
            name: solution_summary(self.points, self.metric, selected, radius)
            for name, selected in rows.items()
        }

"""A thread-safe metrics registry with Prometheus text export.

Three instrument kinds — :class:`Counter` (monotonic), :class:`Gauge`
(set/add), :class:`Histogram` (fixed cumulative buckets + sum/count) —
live in a :class:`MetricsRegistry`.  Registration is get-or-create
(two call sites asking for ``repro_cache_lookups_total`` share one
counter); names must match ``repro_[a-z0-9_]+`` (enforced here *and*
by the ``span-discipline`` lint rule, so a typo'd name is a red CI
lane, not a dark metric).

Export paths:

* ``registry.render()`` — the Prometheus text format behind
  ``GET /metrics``;
* ``registry.snapshot()`` — a JSON-able dict folded into ``/stats``;
* :func:`merge_snapshots` + :func:`render_snapshot` — the supervisor
  aggregates per-worker snapshots (counters/gauges sum, histograms
  sum bucket-wise) and renders the cluster view at the front.

A process-wide default registry (:func:`registry`) keeps the
instrumentation seams plumbing-free; components accept an explicit
registry for isolated tests.  Stdlib-only, and must never import
:mod:`repro.service`.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "METRIC_NAME_RE",
    "MetricsRegistry",
    "merge_snapshots",
    "registry",
    "render_snapshot",
]

#: Names must be ``repro_``-prefixed lowercase snake case.
METRIC_NAME_RE = re.compile(r"repro_[a-z0-9_]+\Z")

#: Latency buckets in seconds (sub-ms to 10 s; +Inf is implicit).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")


def _escape_label(value: Any) -> str:
    text = str(value)
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_key(labelnames: Tuple[str, ...], labels: Dict[str, Any]) -> Tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"expected labels {sorted(labelnames)}, got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class _Metric:
    """Base: a named family of samples keyed by label values.

    All mutation happens under the owning registry's lock (shared so a
    snapshot is a consistent cut across every instrument).
    """

    kind = "untyped"

    _GUARDED_BY = {"_samples": "self._lock"}

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str],
        lock: threading.Lock,
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        for label in self.labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self._lock = lock
        self._samples: Dict[Tuple[str, ...], Any] = {}


class Counter(_Metric):
    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            return float(self._samples.get(key, 0.0))


class Gauge(_Metric):
    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._samples[key] = float(value)

    def add(self, amount: float, **labels: Any) -> None:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            return float(self._samples.get(key, 0.0))


class Histogram(_Metric):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str],
        lock: threading.Lock,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames, lock)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be sorted, unique, non-empty")
        if any(math.isinf(b) for b in bounds):
            raise ValueError("+Inf bucket is implicit; do not pass it")
        self.buckets = bounds

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            sample = self._samples.get(key)
            if sample is None:
                # counts has one slot per finite bucket plus +Inf.
                sample = {"counts": [0] * (len(self.buckets) + 1), "sum": 0.0}
                self._samples[key] = sample
            idx = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    idx = i
                    break
            sample["counts"][idx] += 1
            sample["sum"] += value

    def value(self, **labels: Any) -> Dict[str, Any]:
        """``{"count": n, "sum": s}`` for one label set (0/0 if unseen)."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            sample = self._samples.get(key)
            if sample is None:
                return {"count": 0, "sum": 0.0}
            return {"count": sum(sample["counts"]), "sum": sample["sum"]}


class MetricsRegistry:
    """Get-or-create instrument registry with a consistent snapshot."""

    _GUARDED_BY = {"_metrics": "self._lock"}

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    # -- registration --------------------------------------------------
    def _get_or_create(self, cls, name, help, labelnames, **kwargs) -> _Metric:
        """Caller does *not* hold ``self._lock``; this takes it."""
        if not METRIC_NAME_RE.fullmatch(name):
            raise ValueError(
                f"metric name {name!r} must match {METRIC_NAME_RE.pattern!r}"
            )
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.labelnames}"
                    )
                return existing
            metric = cls(name, help, labelnames, self._lock, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames, buckets=buckets)

    # -- export --------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A JSON-able consistent cut of every instrument."""
        out: Dict[str, Any] = {}
        with self._lock:
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                entry: Dict[str, Any] = {
                    "type": metric.kind,
                    "help": metric.help,
                    "labelnames": list(metric.labelnames),
                    "samples": [],
                }
                for key in sorted(metric._samples):
                    labels = dict(zip(metric.labelnames, key))
                    raw = metric._samples[key]
                    if metric.kind == "histogram":
                        entry["samples"].append(
                            {
                                "labels": labels,
                                "buckets": [
                                    [b, c]
                                    for b, c in zip(metric.buckets, raw["counts"])
                                ],
                                "inf": raw["counts"][-1],
                                "sum": raw["sum"],
                                "count": sum(raw["counts"]),
                            }
                        )
                    else:
                        entry["samples"].append({"labels": labels, "value": raw})
                out[name] = entry
        return out

    def render(self) -> str:
        """The Prometheus text exposition of :meth:`snapshot`."""
        return render_snapshot(self.snapshot())

    def reset(self) -> None:
        """Drop every instrument (test isolation for the default
        registry; production code never calls this)."""
        with self._lock:
            self._metrics.clear()


def _render_labels(labels: Dict[str, Any], extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = [(k, labels[k]) for k in sorted(labels)]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_snapshot(snapshot: Dict[str, Any]) -> str:
    """Render a snapshot (one registry's, or a merged cluster one) as
    Prometheus text format."""
    lines: List[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        if entry.get("help"):
            lines.append(f"# HELP {name} {entry['help']}")
        lines.append(f"# TYPE {name} {entry['type']}")
        for sample in entry["samples"]:
            labels = sample.get("labels", {})
            if entry["type"] == "histogram":
                cumulative = 0
                for bound, count in sample["buckets"]:
                    cumulative += count
                    label_str = _render_labels(labels, ("le", _format_value(bound)))
                    lines.append(f"{name}_bucket{label_str} {cumulative}")
                cumulative += sample["inf"]
                label_str = _render_labels(labels, ("le", "+Inf"))
                lines.append(f"{name}_bucket{label_str} {cumulative}")
                lines.append(
                    f"{name}_sum{_render_labels(labels)} {_format_value(sample['sum'])}"
                )
                lines.append(f"{name}_count{_render_labels(labels)} {sample['count']}")
            else:
                lines.append(
                    f"{name}{_render_labels(labels)} {_format_value(sample['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge registry snapshots: counters and gauges sum per label set,
    histograms sum bucket-wise (buckets matched by bound).

    Gauges *sum* deliberately — the cluster-level reading of
    ``repro_inflight_requests`` or queue depth is the total across
    workers, which is what capacity planning wants.
    """
    merged: Dict[str, Any] = {}
    for snap in snapshots:
        if not snap:
            continue
        for name, entry in snap.items():
            target = merged.get(name)
            if target is None:
                target = {
                    "type": entry["type"],
                    "help": entry.get("help", ""),
                    "labelnames": list(entry.get("labelnames", [])),
                    "_samples": {},
                }
                merged[name] = target
            for sample in entry["samples"]:
                key = tuple(sorted(sample.get("labels", {}).items()))
                slot = target["_samples"].get(key)
                if entry["type"] == "histogram":
                    if slot is None:
                        slot = {
                            "labels": dict(sample.get("labels", {})),
                            "buckets": {},
                            "inf": 0,
                            "sum": 0.0,
                            "count": 0,
                        }
                        target["_samples"][key] = slot
                    for bound, count in sample["buckets"]:
                        slot["buckets"][float(bound)] = (
                            slot["buckets"].get(float(bound), 0) + count
                        )
                    slot["inf"] += sample["inf"]
                    slot["sum"] += sample["sum"]
                    slot["count"] += sample["count"]
                else:
                    if slot is None:
                        slot = {"labels": dict(sample.get("labels", {})), "value": 0.0}
                        target["_samples"][key] = slot
                    slot["value"] += sample["value"]
    out: Dict[str, Any] = {}
    for name in sorted(merged):
        entry = merged[name]
        samples = []
        for key in sorted(entry["_samples"]):
            slot = entry["_samples"][key]
            if entry["type"] == "histogram":
                samples.append(
                    {
                        "labels": slot["labels"],
                        "buckets": [
                            [b, slot["buckets"][b]] for b in sorted(slot["buckets"])
                        ],
                        "inf": slot["inf"],
                        "sum": slot["sum"],
                        "count": slot["count"],
                    }
                )
            else:
                samples.append({"labels": slot["labels"], "value": slot["value"]})
        out[name] = {
            "type": entry["type"],
            "help": entry["help"],
            "labelnames": entry["labelnames"],
            "samples": samples,
        }
    return out


_DEFAULT = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _DEFAULT

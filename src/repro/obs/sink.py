"""Trace sink: completed traces as size-capped JSONL, plus the rollup
behind ``repro trace summarize`` and the CI schema validator.

One line per completed request (``--trace-log PATH``):

.. code-block:: json

    {"schema": "repro-trace-v1", "trace_id": "9f…", "ts_unix": 1754650000.123,
     "method": "POST", "path": "/select", "status": 200,
     "worker": {"worker_id": 1, "pid": 4242},
     "features": {"dataset": "clustered", "n": 20000, "radius": 0.05,
                  "metric": "euclidean", "engine": "grid", "method": "greedy"},
     "duration_ms": 41.7,
     "spans": [{"name": "validate", "duration_ms": 0.2},
               {"name": "selection", "duration_ms": 38.1,
                "children": [{"name": "adjacency-build", "duration_ms": 30.4}]}],
     "annotations": {"coalesced": false}}

``schema`` is the version field — bump :data:`TRACE_SCHEMA` on any
shape change.  These records carry the request feature vector next to
measured phase durations: exactly what a future ``bench --tune``
policy campaign fits against (ROADMAP, workload-adaptive policy).

Rotation is size-capped: when the file would exceed ``max_bytes`` the
current log is renamed to ``PATH.1`` (replacing any previous one) and
a fresh file starts — bounded disk, and the newest records always in
``PATH``.  Stdlib-only; must never import :mod:`repro.service`.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, Iterable, Iterator, List, Optional

from repro.obs.trace import Span

__all__ = [
    "TRACE_SCHEMA",
    "TraceSink",
    "build_record",
    "iter_trace_records",
    "render_trace_summary",
    "summarize_traces",
    "validate_trace_record",
]

#: Version stamp carried by every record.
TRACE_SCHEMA = "repro-trace-v1"


def build_record(
    root: Span,
    status: int,
    method: str,
    path: str,
    worker: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the JSONL record for a finished request span."""
    annotations = dict(root.annotations)
    features = annotations.pop("features", {})
    record: Dict[str, Any] = {
        "schema": TRACE_SCHEMA,
        "trace_id": root.trace_id,
        "span_id": root.span_id,
        "ts_unix": round(root.started_unix, 6),
        "method": method,
        "path": path,
        "status": int(status),
        "worker": worker,
        "features": features,
        "duration_ms": round(root.elapsed_ms(), 3),
        "spans": [child.to_dict() for child in root.children],
    }
    if root.parent_id is not None:
        record["parent_span_id"] = root.parent_id
    if annotations:
        record["annotations"] = annotations
    return record


class TraceSink:
    """Append-only JSONL writer with size-capped rotation."""

    _GUARDED_BY = {
        "_file": "self._lock",
        "_size": "self._lock",
        "written": "self._lock",
    }

    def __init__(
        self, path: str, max_bytes: int = 16 * 1024 * 1024
    ) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.path = path
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._file = open(path, "a", encoding="utf-8")
        self._size = self._file.tell()
        self.written = 0

    def emit(self, record: Dict[str, Any]) -> None:
        """Append one record; rotate first if it would burst the cap."""
        line = json.dumps(record, separators=(",", ":"), sort_keys=True) + "\n"
        data = line.encode("utf-8")
        with self._lock:
            if self._file.closed:
                return
            if self._size + len(data) > self.max_bytes and self._size > 0:
                self._rotate()
            self._file.write(line)
            self._file.flush()
            self._size += len(data)
            self.written += 1

    def _rotate(self) -> None:
        """Caller holds ``self._lock``."""
        self._file.close()
        backup = self.path + ".1"
        try:
            os.replace(self.path, backup)
        except OSError:
            pass
        self._file = open(self.path, "a", encoding="utf-8")
        self._size = self._file.tell()

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()


# ----------------------------------------------------------------------
# Validation (the CI lane runs this over every emitted log)
# ----------------------------------------------------------------------
def _check_span(span: Any, problems: List[str], where: str) -> None:
    if not isinstance(span, dict):
        problems.append(f"{where}: span is not an object")
        return
    if not isinstance(span.get("name"), str) or not span.get("name"):
        problems.append(f"{where}: missing span name")
    if not isinstance(span.get("duration_ms"), (int, float)) or span["duration_ms"] < 0:
        problems.append(f"{where}: bad duration_ms")
    for i, child in enumerate(span.get("children", [])):
        _check_span(child, problems, f"{where}.children[{i}]")


def validate_trace_record(record: Any) -> List[str]:
    """Problems with one parsed record; empty list means valid."""
    problems: List[str] = []
    if not isinstance(record, dict):
        return ["record is not an object"]
    if record.get("schema") != TRACE_SCHEMA:
        problems.append(
            f"schema is {record.get('schema')!r}, expected {TRACE_SCHEMA!r}"
        )
    if not isinstance(record.get("trace_id"), str) or not record.get("trace_id"):
        problems.append("missing trace_id")
    if not isinstance(record.get("ts_unix"), (int, float)):
        problems.append("missing ts_unix")
    if not isinstance(record.get("method"), str):
        problems.append("missing method")
    if not isinstance(record.get("path"), str):
        problems.append("missing path")
    if not isinstance(record.get("status"), int):
        problems.append("missing status")
    duration = record.get("duration_ms")
    if not isinstance(duration, (int, float)) or duration < 0:
        problems.append("bad duration_ms")
    if not isinstance(record.get("features"), dict):
        problems.append("features must be an object")
    spans = record.get("spans")
    if not isinstance(spans, list):
        problems.append("spans must be a list")
    else:
        for i, span in enumerate(spans):
            _check_span(span, problems, f"spans[{i}]")
    return problems


def iter_trace_records(path: str) -> Iterator[Dict[str, Any]]:
    """Yield parsed records from one JSONL file (blank lines skipped;
    a torn final line from a killed process is ignored)."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                continue


# ----------------------------------------------------------------------
# Summaries (`repro trace summarize`)
# ----------------------------------------------------------------------
def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, max(0, int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[idx]


def _walk_record_spans(record: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    stack = list(record.get("spans", []))
    while stack:
        span = stack.pop()
        if isinstance(span, dict):
            yield span
            stack.extend(span.get("children", []))


def summarize_traces(paths: Iterable[str], top: int = 10) -> Dict[str, Any]:
    """Aggregate trace logs into per-phase rollups + slowest traces."""
    phase_samples: Dict[str, List[float]] = {}
    traces: List[Dict[str, Any]] = []
    records = invalid = 0
    statuses: Dict[str, int] = {}
    for path in paths:
        for record in iter_trace_records(path):
            if validate_trace_record(record):
                invalid += 1
                continue
            records += 1
            statuses[str(record["status"])] = statuses.get(str(record["status"]), 0) + 1
            for span in _walk_record_spans(record):
                phase_samples.setdefault(span["name"], []).append(
                    float(span["duration_ms"])
                )
            slowest_phase = None
            slowest_ms = -1.0
            for span in _walk_record_spans(record):
                if float(span["duration_ms"]) > slowest_ms:
                    slowest_ms = float(span["duration_ms"])
                    slowest_phase = span["name"]
            traces.append(
                {
                    "trace_id": record["trace_id"],
                    "path": record["path"],
                    "status": record["status"],
                    "duration_ms": float(record["duration_ms"]),
                    "slowest_phase": slowest_phase,
                }
            )
    phases: Dict[str, Any] = {}
    for name, samples in phase_samples.items():
        samples.sort()
        phases[name] = {
            "count": len(samples),
            "total_ms": round(sum(samples), 3),
            "mean_ms": round(sum(samples) / len(samples), 3),
            "p50_ms": round(_percentile(samples, 0.5), 3),
            "p90_ms": round(_percentile(samples, 0.9), 3),
            "max_ms": round(samples[-1], 3),
        }
    traces.sort(key=lambda t: t["duration_ms"], reverse=True)
    return {
        "records": records,
        "invalid": invalid,
        "statuses": statuses,
        "phases": phases,
        "slowest": traces[:top],
    }


def render_trace_summary(summary: Dict[str, Any]) -> str:
    """Human-readable slowest-span rollup."""
    lines = [
        f"traces: {summary['records']} valid, {summary['invalid']} invalid",
        "statuses: "
        + (
            ", ".join(
                f"{code}={count}" for code, count in sorted(summary["statuses"].items())
            )
            or "none"
        ),
        "",
        f"{'phase':<20} {'count':>7} {'total_ms':>10} {'mean_ms':>9} "
        f"{'p50_ms':>9} {'p90_ms':>9} {'max_ms':>9}",
    ]
    by_total = sorted(
        summary["phases"].items(), key=lambda kv: kv[1]["total_ms"], reverse=True
    )
    for name, stats in by_total:
        lines.append(
            f"{name:<20} {stats['count']:>7} {stats['total_ms']:>10.3f} "
            f"{stats['mean_ms']:>9.3f} {stats['p50_ms']:>9.3f} "
            f"{stats['p90_ms']:>9.3f} {stats['max_ms']:>9.3f}"
        )
    if summary["slowest"]:
        lines.append("")
        lines.append("slowest traces:")
        for trace in summary["slowest"]:
            lines.append(
                f"  {trace['duration_ms']:>9.3f} ms  {trace['status']}  "
                f"{trace['path']:<10} {trace['trace_id']}  "
                f"(slowest phase: {trace['slowest_phase']})"
            )
    return "\n".join(lines)

"""Request tracing: an ambient, contextvars-based span tree.

A *trace* is one logical request; a *span* is one timed phase of it.
The root span is opened by the first HTTP handler that sees the
request (:func:`request_scope`); nested phases open children
(:func:`phase`).  The ambient current span lives in a
:class:`contextvars.ContextVar` — exactly the pattern of
:mod:`repro.cancellation` — so library code deep in the stack can
annotate or open sub-phases without any plumbed-through handle, and
code running outside a request (unit tests, batch scripts) pays a
single ``ContextVar.get`` returning ``None``.

Cross-process propagation uses the ``X-Repro-Trace`` header
(``<trace_id>`` or ``<trace_id>:<parent_span_id>``): the supervisor
front mints the id, stamps the header on the proxied worker request
(re-stamped identically on every replay attempt), and the worker's
root span adopts it — one id then correlates the front span, the
worker that died mid-request, and the replica that answered.

Thread hop: ``loop.run_in_executor`` does not copy context, so the
server captures :func:`current_span` on the event loop and re-enters
it inside the executor thunk with :func:`attach`.  A request's phases
run sequentially (loop -> one executor thread -> loop), so ``Span``
needs no lock.

Dependency-free by design: this module must never import
:mod:`repro.service` (the service imports *us*).
"""

from __future__ import annotations

import contextlib
import os
import time
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "TRACE_HEADER",
    "Span",
    "annotate",
    "annotate_root",
    "attach",
    "current_span",
    "format_trace_header",
    "new_span_id",
    "new_trace_id",
    "parse_trace_header",
    "phase",
    "phase_totals",
    "record_phase",
    "request_scope",
]

#: Request/response header carrying ``trace_id[:span_id]``.
TRACE_HEADER = "X-Repro-Trace"

_HEX = set("0123456789abcdef")

_CURRENT: ContextVar[Optional["Span"]] = ContextVar(
    "repro_trace_span", default=None
)


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id."""
    return os.urandom(8).hex()


def new_span_id() -> str:
    """A fresh 8-hex-char span id."""
    return os.urandom(4).hex()


def _is_hex(value: str) -> bool:
    return bool(value) and set(value) <= _HEX


def parse_trace_header(value: Optional[str]) -> Tuple[Optional[str], Optional[str]]:
    """Parse an ``X-Repro-Trace`` value into ``(trace_id, parent_span_id)``.

    Malformed values yield ``(None, None)`` — a bad header mints a new
    trace rather than erroring the request.
    """
    if not value:
        return None, None
    parts = value.strip().lower().split(":")
    if len(parts) > 2 or not _is_hex(parts[0]) or len(parts[0]) > 32:
        return None, None
    parent = None
    if len(parts) == 2:
        if not _is_hex(parts[1]) or len(parts[1]) > 32:
            return None, None
        parent = parts[1]
    return parts[0], parent


def format_trace_header(span: "Span") -> str:
    """Render ``trace_id:span_id`` for the outgoing hop."""
    return f"{span.trace_id}:{span.span_id}"


class Span:
    """One timed phase of a trace; a node in the request's span tree."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "annotations",
        "children",
        "started_unix",
        "duration_ms",
        "_t0",
        "_root",
    )

    def __init__(
        self,
        name: str,
        trace_id: Optional[str] = None,
        parent: Optional["Span"] = None,
    ) -> None:
        self.name = name
        if parent is not None:
            self.trace_id = parent.trace_id
            self.parent_id: Optional[str] = parent.span_id
            self._root: "Span" = parent._root
        else:
            self.trace_id = trace_id or new_trace_id()
            self.parent_id = None
            self._root = self
        self.span_id = new_span_id()
        self.annotations: Dict[str, Any] = {}
        self.children: List["Span"] = []
        self.started_unix = time.time()
        self.duration_ms: Optional[float] = None
        self._t0 = time.perf_counter()

    @property
    def root(self) -> "Span":
        return self._root

    def child(self, name: str) -> "Span":
        span = Span(name, parent=self)
        self.children.append(span)
        return span

    def annotate(self, **kv: Any) -> None:
        self.annotations.update(kv)

    def elapsed_ms(self) -> float:
        """Duration so far (or the final duration once finished)."""
        if self.duration_ms is not None:
            return self.duration_ms
        return (time.perf_counter() - self._t0) * 1000.0

    def finish(self) -> "Span":
        if self.duration_ms is None:
            self.duration_ms = (time.perf_counter() - self._t0) * 1000.0
        return self

    def walk(self) -> Iterator["Span"]:
        """Yield this span and every descendant, depth-first."""
        stack = [self]
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "duration_ms": round(self.elapsed_ms(), 3),
        }
        if self.annotations:
            out["annotations"] = dict(self.annotations)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, trace_id={self.trace_id!r}, "
            f"span_id={self.span_id!r}, duration_ms={self.duration_ms})"
        )


def current_span() -> Optional[Span]:
    """The ambient span, or ``None`` outside any request scope."""
    return _CURRENT.get()


@contextlib.contextmanager
def request_scope(
    name: str,
    header: Optional[str] = None,
    trace_id: Optional[str] = None,
) -> Iterator[Span]:
    """Open the *root* span of a request and install it ambiently.

    ``header`` (an incoming ``X-Repro-Trace`` value) wins over
    ``trace_id``; absent both, a fresh id is minted.  The span is
    finished on exit — the handler reads ``span.duration_ms`` / emits
    the sink record *after* the ``with`` block.
    """
    if header is not None:
        parsed_id, parent_id = parse_trace_header(header)
        if parsed_id is not None:
            trace_id = parsed_id
    else:
        parent_id = None
    span = Span(name, trace_id=trace_id)
    if header is not None and parent_id is not None:
        span.parent_id = parent_id
    handle = _CURRENT.set(span)
    try:
        yield span
    finally:
        _CURRENT.reset(handle)
        span.finish()


@contextlib.contextmanager
def phase(name: str, **annotations: Any) -> Iterator[Optional[Span]]:
    """Open a child span under the ambient one; no-op without a trace.

    Yields the new span (or ``None`` when tracing is inactive, which
    costs one ``ContextVar.get``).
    """
    parent = _CURRENT.get()
    if parent is None:
        yield None
        return
    span = parent.child(name)
    if annotations:
        span.annotations.update(annotations)
    handle = _CURRENT.set(span)
    try:
        yield span
    finally:
        _CURRENT.reset(handle)
        span.finish()


@contextlib.contextmanager
def attach(span: Optional[Span]) -> Iterator[Optional[Span]]:
    """Re-enter ``span`` in another context (the executor-thunk hop).

    ``attach(None)`` is a no-op scope, so callers can capture
    ``current_span()`` unconditionally and wrap the thunk either way.
    """
    if span is None:
        yield None
        return
    handle = _CURRENT.set(span)
    try:
        yield span
    finally:
        _CURRENT.reset(handle)


def annotate(**kv: Any) -> None:
    """Annotate the ambient span; silently no-op outside a trace."""
    span = _CURRENT.get()
    if span is not None:
        span.annotations.update(kv)


def annotate_root(**kv: Any) -> None:
    """Annotate the *root* of the ambient trace (feature vectors live
    on the root so the sink record finds them in one place)."""
    span = _CURRENT.get()
    if span is not None:
        span.root.annotations.update(kv)


def record_phase(name: str, duration_ms: float, **annotations: Any) -> Optional[Span]:
    """Append an already-measured phase as a finished child span.

    For code that timed work before tracing could wrap it — e.g. the
    shared cache knows an adjacency build's duration only at publish
    time.  No-op (returns ``None``) outside a trace.
    """
    parent = _CURRENT.get()
    if parent is None:
        return None
    span = parent.child(name)
    span.duration_ms = float(duration_ms)
    if annotations:
        span.annotations.update(annotations)
    return span


def phase_totals(root: Span) -> Dict[str, float]:
    """Sum finished descendant durations by span name (ms).

    The root itself is excluded — it is the total, not a phase.  This
    feeds the ``Server-Timing`` response header: ``build`` is the
    ``adjacency-build`` (+ ``shm-attach``) total, ``select`` is the
    ``selection`` total net of builds nested inside it.
    """
    totals: Dict[str, float] = {}
    for span in root.walk():
        if span is root or span.duration_ms is None:
            continue
        totals[span.name] = totals.get(span.name, 0.0) + span.duration_ms
    return totals

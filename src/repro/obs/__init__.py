"""Observability: request tracing, metrics, and phase-level profiling.

The serving stack (PRs 5-9) accumulated *counters* — hits, builds,
replays — but no answer to "where did this request's latency go?".
This package is the measurement substrate the ROADMAP's
workload-adaptive policy item needs:

* :mod:`repro.obs.trace` — a contextvars-based span tree.  A trace id
  is minted at the first process that sees the request (the supervisor
  front under ``--workers N``), propagated across the front→worker hop
  in an ``X-Repro-Trace`` header, and preserved through retries and
  replays, so one id correlates the front span, the worker that died,
  and the replica that answered.  Handlers open a request scope;
  phases (validate / cache-lookup / adjacency-build / selection /
  repair / shm-attach) nest under it.
* :mod:`repro.obs.metrics` — a thread-safe registry of counters,
  gauges and fixed-bucket histograms rendered as Prometheus text
  (``GET /metrics``) and folded into ``/stats`` (the supervisor
  aggregates per-worker snapshots).  Metric names must match
  ``repro_[a-z0-9_]+`` — enforced at registration *and* by the
  ``span-discipline`` lint rule.
* :mod:`repro.obs.sink` — completed traces written as size-capped
  JSONL (``--trace-log``) carrying the request feature vector
  (n, radius, metric, engine, method) and per-phase durations —
  exactly the records a ``bench --tune`` policy campaign consumes —
  plus the rollup behind ``repro trace summarize``.

Like :mod:`repro.cancellation`, everything here is stdlib-only and
dependency-free: it must never import :mod:`repro.service` (the
service imports *us*), and every entry point is no-op cheap when no
trace is active and no sink is configured.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    merge_snapshots,
    registry,
    render_snapshot,
)
from repro.obs.sink import (
    TRACE_SCHEMA,
    TraceSink,
    build_record,
    iter_trace_records,
    render_trace_summary,
    summarize_traces,
    validate_trace_record,
)
from repro.obs.trace import (
    TRACE_HEADER,
    Span,
    annotate,
    annotate_root,
    attach,
    current_span,
    format_trace_header,
    new_trace_id,
    parse_trace_header,
    phase,
    phase_totals,
    record_phase,
    request_scope,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "MetricsRegistry",
    "Span",
    "TRACE_HEADER",
    "TRACE_SCHEMA",
    "TraceSink",
    "annotate",
    "annotate_root",
    "attach",
    "build_record",
    "current_span",
    "format_trace_header",
    "iter_trace_records",
    "merge_snapshots",
    "new_trace_id",
    "parse_trace_header",
    "phase",
    "phase_totals",
    "record_phase",
    "registry",
    "render_snapshot",
    "render_trace_summary",
    "request_scope",
    "summarize_traces",
    "validate_trace_record",
]

"""Dataset container shared by all generators.

A :class:`Dataset` bundles the point matrix with the metric the paper
pairs it with, plus human-readable metadata.  All DisC algorithms consume
``(points, metric)``; keeping them together prevents the classic mistake
of diversifying a categorical dataset with a numeric metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.distance import Metric, get_metric

__all__ = ["Dataset"]


@dataclass
class Dataset:
    """A named point collection with its companion distance metric.

    Attributes
    ----------
    name:
        Identifier used in experiment output ("Uniform", "Clustered",
        "Cities", "Cameras", ...).
    points:
        ``(n, d)`` array.  Float coordinates for numeric data, integer
        category codes for categorical data.
    metric:
        The distance metric the paper evaluates this dataset with.
    attributes:
        Optional column names (categorical datasets).
    categories:
        Optional decode tables: ``categories[attr][code] -> label``.
    meta:
        Free-form provenance information (seed, generator parameters).
    """

    name: str
    points: np.ndarray
    metric: Metric
    attributes: Optional[List[str]] = None
    categories: Optional[Dict[str, List[str]]] = None
    meta: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.points = np.asarray(self.points)
        if self.points.ndim != 2:
            raise ValueError(
                f"points must be a 2-d array, got shape {self.points.shape}"
            )
        self.metric = get_metric(self.metric)

    def __len__(self) -> int:
        return self.points.shape[0]

    @property
    def n(self) -> int:
        """Number of objects."""
        return self.points.shape[0]

    @property
    def dim(self) -> int:
        """Number of dimensions / attributes."""
        return self.points.shape[1]

    def subset(self, ids) -> np.ndarray:
        """Rows of ``points`` for the given object ids."""
        return self.points[np.asarray(list(ids), dtype=int)]

    def decode(self, object_id: int) -> Dict[str, str]:
        """Human-readable record for a categorical object.

        Only meaningful when ``attributes`` and ``categories`` are set
        (the Cameras dataset); raises ``ValueError`` otherwise.
        """
        if not self.attributes or not self.categories:
            raise ValueError(f"dataset {self.name!r} has no categorical decode tables")
        row = self.points[object_id]
        return {
            attr: self.categories[attr][int(code)]
            for attr, code in zip(self.attributes, row)
        }

    def __repr__(self) -> str:
        return (
            f"Dataset(name={self.name!r}, n={self.n}, dim={self.dim}, "
            f"metric={self.metric.name})"
        )

"""Dataset generators for the paper's evaluation (Section 6).

Synthetic "Uniform" and "Clustered" match the paper's generators; "Cities"
and "Cameras" are documented substitutes for the offline real datasets
(see DESIGN.md, "Substitutions").
"""

from repro.datasets.base import Dataset
from repro.datasets.cameras import CAMERAS_N, PAPER_FIGURE2_ROWS, cameras_dataset
from repro.datasets.cities import CITIES_N, cities_dataset
from repro.datasets.synthetic import clustered_dataset, sample_ball, uniform_dataset

__all__ = [
    "Dataset",
    "uniform_dataset",
    "clustered_dataset",
    "cities_dataset",
    "cameras_dataset",
    "sample_ball",
    "CITIES_N",
    "CAMERAS_N",
    "PAPER_FIGURE2_ROWS",
]

"""Synthetic "Cameras" dataset — substitute for the acme.com catalogue.

The paper's second real dataset has 7 categorical characteristics for 579
digital cameras scraped from acme.com/digicams (offline today), compared
under the Hamming distance, with radii the integers 1..6.

What the DisC experiments actually exercise is the *Hamming-distance
structure* of such a catalogue: a handful of dominant brands, era-typical
correlations (serial interfaces go with early low-megapixel models,
USB with later ones; brands favour storage formats), and many near-
duplicate model variants differing in one or two attributes.  This
generator reproduces that structure with exactly 579 rows over the 7
attribute columns shown in the paper's Figure 2 — seeded with the 15
concrete rows printed there — so the solution-size ladder across radii
1..6 (Table 3d: hundreds of diverse objects at r=1 collapsing to a couple
at r=6) is preserved.

Attributes are stored as integer category codes (the Hamming metric only
tests equality); :meth:`repro.datasets.base.Dataset.decode` restores the
labels.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.datasets.base import Dataset
from repro.distance import HAMMING

__all__ = ["cameras_dataset", "CAMERAS_N", "PAPER_FIGURE2_ROWS"]

#: Cardinality of the original acme.com catalogue used in the paper.
CAMERAS_N = 579

ATTRIBUTES = [
    "brand",
    "line",
    "megapixels",
    "zoom",
    "interface",
    "battery",
    "storage",
]

#: The 15 concrete camera rows printed in the paper's Figure 2,
#: in the attribute order above ("line" condenses the model family).
PAPER_FIGURE2_ROWS: List[Tuple[str, str, str, str, str, str, str]] = [
    ("Epson", "PhotoPC", "1.2", "3.0", "serial", "NiMH", "internal+CompactFlash"),
    ("Ricoh", "RDC", "2.2", "3.0", "serial+USB", "AA", "internal+SmartMedia"),
    ("Sony", "Mavica", "1.4", "5.0", "none", "lithium", "MemoryStick"),
    ("Pentax", "Optio", "3.1", "2.8", "USB", "AA+lithium", "MultiMediaCard+SecureDigital"),
    ("Toshiba", "PDR", "1.2", "no", "USB", "AA", "SmartMedia"),
    ("FujiFilm", "MX", "1.3", "3.2", "serial", "lithium", "SmartMedia"),
    ("FujiFilm", "FinePix", "6.0", "6.0", "USB+FireWire", "AA", "xD-PictureCard"),
    ("Nikon", "Coolpix", "0.8", "no", "serial", "NiCd", "CompactFlash"),
    ("Canon", "IXUS", "1.9", "3.0", "USB", "lithium", "CompactFlash"),
    ("Canon", "S", "14.0", "35.0", "USB", "lithium", "SecureDigital+SDHC"),
    ("Canon", "A", "3.9", "4.0", "USB", "AA", "MultiMediaCard+SecureDigital"),
    ("Canon", "A", "3.1", "2.2", "USB", "AA", "SecureDigital"),
    ("Canon", "ELPH", "3.9", "no", "USB", "lithium", "SecureDigital"),
    ("Canon", "A", "1.9", "no", "USB", "AA", "CompactFlash"),
    ("Canon", "S", "3.0", "3.0", "USB", "lithium", "CompactFlash"),
]

# Catalogue-wide vocabularies.  Weights loosely follow early-2000s market
# share / era frequency; they matter only through the collision rates they
# induce in Hamming space.
_BRANDS = [
    ("Canon", 0.14), ("Sony", 0.12), ("Olympus", 0.10), ("Nikon", 0.09),
    ("FujiFilm", 0.09), ("Kodak", 0.08), ("Casio", 0.06), ("Pentax", 0.05),
    ("Minolta", 0.05), ("Panasonic", 0.05), ("HP", 0.04), ("Epson", 0.03),
    ("Ricoh", 0.03), ("Toshiba", 0.03), ("Samsung", 0.02), ("Kyocera", 0.02),
]
_LINES_PER_BRAND = 4  # model families per brand
_MEGAPIXELS = [
    ("0.8", 0.05), ("1.2", 0.08), ("1.3", 0.07), ("1.4", 0.05), ("1.9", 0.07),
    ("2.0", 0.09), ("2.2", 0.07), ("3.0", 0.10), ("3.1", 0.08), ("3.9", 0.07),
    ("4.0", 0.07), ("5.0", 0.08), ("6.0", 0.06), ("8.0", 0.04), ("14.0", 0.02),
]
_ZOOMS = [
    ("no", 0.22), ("2.0", 0.08), ("2.2", 0.05), ("2.8", 0.08), ("3.0", 0.25),
    ("3.2", 0.07), ("4.0", 0.08), ("5.0", 0.07), ("6.0", 0.05), ("10.0", 0.03),
    ("35.0", 0.02),
]
_INTERFACES = [
    ("USB", 0.55), ("serial", 0.18), ("serial+USB", 0.10), ("USB+FireWire", 0.07),
    ("FireWire", 0.04), ("none", 0.06),
]
_BATTERIES = [
    ("AA", 0.36), ("lithium", 0.33), ("NiMH", 0.12), ("AA+lithium", 0.10),
    ("NiCd", 0.09),
]
_STORAGES = [
    ("CompactFlash", 0.22), ("SmartMedia", 0.14), ("SecureDigital", 0.16),
    ("MemoryStick", 0.12), ("xD-PictureCard", 0.07),
    ("MultiMediaCard+SecureDigital", 0.08), ("internal+CompactFlash", 0.05),
    ("internal+SmartMedia", 0.05), ("SecureDigital+SDHC", 0.06), ("internal", 0.05),
]

# Brand-conditioned storage preference: each brand pushes extra weight
# onto its signature format, as real catalogues do (Sony->MemoryStick...).
_BRAND_STORAGE_BIAS = {
    "Sony": "MemoryStick",
    "Olympus": "xD-PictureCard",
    "FujiFilm": "xD-PictureCard",
    "Canon": "CompactFlash",
    "Nikon": "CompactFlash",
    "Kodak": "SecureDigital",
    "Panasonic": "SecureDigital",
}


def _weighted_choice(rng: np.random.Generator, table, n: int) -> List[str]:
    labels = [label for label, _ in table]
    weights = np.array([w for _, w in table], dtype=float)
    weights /= weights.sum()
    return list(rng.choice(labels, size=n, p=weights))


def _era_consistent(rng: np.random.Generator, megapixels: str) -> Tuple[str, str]:
    """Interface and battery conditioned on the megapixel 'era'."""
    mp = float(megapixels)
    if mp < 2.0:  # early era: serial interfaces, NiMH/NiCd more common
        interface = rng.choice(
            ["serial", "serial+USB", "USB", "none"], p=[0.40, 0.20, 0.30, 0.10]
        )
        battery = rng.choice(
            ["AA", "NiMH", "NiCd", "lithium"], p=[0.35, 0.25, 0.20, 0.20]
        )
    elif mp < 4.0:  # middle era
        interface = rng.choice(
            ["USB", "serial+USB", "USB+FireWire"], p=[0.75, 0.15, 0.10]
        )
        battery = rng.choice(
            ["AA", "lithium", "AA+lithium", "NiMH"], p=[0.35, 0.35, 0.20, 0.10]
        )
    else:  # late era
        interface = rng.choice(["USB", "USB+FireWire", "FireWire"], p=[0.80, 0.15, 0.05])
        battery = rng.choice(["lithium", "AA", "AA+lithium"], p=[0.55, 0.30, 0.15])
    return str(interface), str(battery)


def _storage_for_brand(rng: np.random.Generator, brand: str) -> str:
    labels = [label for label, _ in _STORAGES]
    weights = np.array([w for _, w in _STORAGES], dtype=float)
    bias = _BRAND_STORAGE_BIAS.get(brand)
    if bias is not None:
        weights[labels.index(bias)] += 0.30
    weights /= weights.sum()
    return str(rng.choice(labels, p=weights))


def _generate_rows(rng: np.random.Generator, n: int) -> List[Tuple[str, ...]]:
    brands = _weighted_choice(rng, _BRANDS, n)
    megapixels = _weighted_choice(rng, _MEGAPIXELS, n)
    zooms = _weighted_choice(rng, _ZOOMS, n)
    rows = []
    for brand, mp, zoom in zip(brands, megapixels, zooms):
        line = f"{brand}-line-{rng.integers(_LINES_PER_BRAND)}"
        interface, battery = _era_consistent(rng, mp)
        storage = _storage_for_brand(rng, brand)
        rows.append((brand, line, mp, zoom, interface, battery, storage))
    return rows


def _near_duplicates(
    rng: np.random.Generator, rows: List[Tuple[str, ...]], n: int
) -> List[Tuple[str, ...]]:
    """Model variants: copies of existing rows with 1-2 attributes tweaked.

    Real catalogues are full of these (a camera re-released with a bigger
    sensor or a new storage slot); they are what makes r=1 Hamming balls
    non-trivial.
    """
    vocab_by_column = [sorted({row[c] for row in rows}) for c in range(7)]
    out = []
    for _ in range(n):
        base = list(rows[rng.integers(len(rows))])
        for column in rng.choice([2, 3, 5, 6], size=rng.integers(1, 3), replace=False):
            options = vocab_by_column[column]
            base[column] = options[rng.integers(len(options))]
        out.append(tuple(base))
    return out


def cameras_dataset(n: int = CAMERAS_N, seed: int = 11) -> Dataset:
    """Synthetic stand-in for the paper's 579-camera categorical dataset.

    Roughly 25% of the rows are near-duplicate model variants of other
    rows, the 15 rows of the paper's Figure 2 are always included, and
    the remainder is sampled from era/brand-consistent distributions.
    """
    if n < len(PAPER_FIGURE2_ROWS):
        raise ValueError(
            f"n must be at least {len(PAPER_FIGURE2_ROWS)} to include the "
            f"paper's Figure 2 rows, got {n}"
        )
    rng = np.random.default_rng(seed)

    rows: List[Tuple[str, ...]] = list(PAPER_FIGURE2_ROWS)
    n_variants = int(0.25 * n)
    n_fresh = n - len(rows) - n_variants
    rows.extend(_generate_rows(rng, n_fresh))
    rows.extend(_near_duplicates(rng, rows, n_variants))
    assert len(rows) == n

    # Encode labels to integer codes per column.
    categories: Dict[str, List[str]] = {}
    codes = np.empty((n, 7), dtype=np.int64)
    for column, attr in enumerate(ATTRIBUTES):
        labels = sorted({row[column] for row in rows})
        categories[attr] = labels
        lookup = {label: code for code, label in enumerate(labels)}
        codes[:, column] = [lookup[row[column]] for row in rows]

    order = rng.permutation(n)
    codes = codes[order]

    return Dataset(
        name="Cameras",
        points=codes,
        metric=HAMMING,
        attributes=list(ATTRIBUTES),
        categories=categories,
        meta={
            "seed": seed,
            "generator": "cameras-synthetic",
            "n": n,
            "substitute_for": "acme.com/digicams catalogue",
            "figure2_rows_included": True,
        },
    )

"""Synthetic "Cities" dataset — substitute for the Greek cities collection.

The paper's first real dataset is a collection of 2-d points for 5922
cities and villages in Greece (from rtreeportal.org, offline today),
normalised to ``[0, 1]``.  Its load-bearing property for the DisC
experiments is a *skewed, multi-density geography*: a few dense
metropolitan areas, many mid-size towns, village ribbons along
coastlines/valleys, island chains, and sparse interior — very different
from both the Uniform and the blob-Clustered synthetic data.

This module builds a deterministic synthetic geography with exactly 5922
points reproducing that density profile:

* 3 metropolitan areas (heavy Gaussian cores, ~25% of points),
* ~60 towns of varying size (Gaussian blobs),
* ~12 coastal/valley ribbons (points scattered along random arcs),
* 3 island chains (small clusters along an arc),
* a thin uniform backdrop of isolated villages (~6%).

The generator intentionally produces *point multi-modality at several
scales*, which is what drives the paper's Cities node-access and
solution-size curves at radii 0.001 .. 0.015.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.distance import EUCLIDEAN

__all__ = ["cities_dataset", "CITIES_N"]

#: Cardinality of the original Greek cities dataset.
CITIES_N = 5922


def _arc_points(
    rng: np.random.Generator, n: int, center: np.ndarray, radius: float, jitter: float
) -> np.ndarray:
    """Points scattered along a random circular arc (a "coastline")."""
    start = rng.uniform(0.0, 2 * np.pi)
    span = rng.uniform(0.6 * np.pi, 1.4 * np.pi)
    angles = start + span * rng.random(n)
    base = center + radius * np.column_stack([np.cos(angles), np.sin(angles)])
    return base + rng.normal(scale=jitter, size=(n, 2))


def cities_dataset(n: int = CITIES_N, seed: int = 7) -> Dataset:
    """Synthetic stand-in for the paper's 5922-point Greek cities data.

    ``n`` may be lowered for fast tests; the composition fractions are
    preserved.  Values are normalised to ``[0, 1]`` exactly as the paper
    normalises the original dataset.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    rng = np.random.default_rng(seed)

    fractions = {
        "metro": 0.25,
        "towns": 0.45,
        "ribbons": 0.18,
        "islands": 0.06,
        "villages": 0.06,
    }
    counts = {k: int(round(v * n)) for k, v in fractions.items()}
    counts["villages"] += n - sum(counts.values())  # absorb rounding drift

    chunks = []

    # Metropolitan areas: tight double-Gaussian cores.
    metro_centers = np.array([[0.55, 0.62], [0.30, 0.80], [0.72, 0.35]])
    metro_weights = np.array([0.55, 0.25, 0.20])
    metro_counts = np.floor(metro_weights * counts["metro"]).astype(int)
    metro_counts[0] += counts["metro"] - metro_counts.sum()
    for center, count in zip(metro_centers, metro_counts):
        core = rng.normal(loc=center, scale=0.012, size=(int(count * 0.6), 2))
        sprawl = rng.normal(loc=center, scale=0.045, size=(count - core.shape[0], 2))
        chunks.extend([core, sprawl])

    # Towns: many Gaussian blobs with power-law-ish populations.
    n_towns = 60
    town_centers = rng.random((n_towns, 2)) * 0.9 + 0.05
    raw = rng.pareto(1.5, size=n_towns) + 1.0
    town_counts = np.floor(raw / raw.sum() * counts["towns"]).astype(int)
    town_counts[np.argmax(town_counts)] += counts["towns"] - town_counts.sum()
    for center, count in zip(town_centers, town_counts):
        if count == 0:
            continue
        scale = rng.uniform(0.004, 0.02)
        chunks.append(rng.normal(loc=center, scale=scale, size=(count, 2)))

    # Coastal / valley ribbons.
    n_ribbons = 12
    ribbon_counts = np.full(n_ribbons, counts["ribbons"] // n_ribbons)
    ribbon_counts[: counts["ribbons"] % n_ribbons] += 1
    for count in ribbon_counts:
        if count == 0:
            continue
        center = rng.random(2) * 0.8 + 0.1
        chunks.append(
            _arc_points(rng, int(count), center, rng.uniform(0.08, 0.25), 0.006)
        )

    # Island chains: clusters of small blobs along a short arc.
    n_chains = 3
    chain_counts = np.full(n_chains, counts["islands"] // n_chains)
    chain_counts[: counts["islands"] % n_chains] += 1
    for count in chain_counts:
        if count == 0:
            continue
        chain_center = rng.random(2) * 0.7 + 0.15
        anchors = _arc_points(rng, 6, chain_center, rng.uniform(0.1, 0.2), 0.0)
        per_island = np.full(6, int(count) // 6)
        per_island[: int(count) % 6] += 1
        for anchor, island_count in zip(anchors, per_island):
            if island_count == 0:
                continue
            chunks.append(
                rng.normal(loc=anchor, scale=0.004, size=(island_count, 2))
            )

    # Isolated villages: uniform backdrop (the outliers Section 4 cares about).
    if counts["villages"]:
        chunks.append(rng.random((counts["villages"], 2)))

    points = np.vstack(chunks)
    # Normalise to [0, 1] like the paper does with the raw coordinates.
    points -= points.min(axis=0)
    span = points.max(axis=0)
    span[span == 0.0] = 1.0
    points /= span
    rng.shuffle(points)
    assert points.shape == (n, 2)

    return Dataset(
        name="Cities",
        points=points,
        metric=EUCLIDEAN,
        meta={
            "seed": seed,
            "generator": "cities-synthetic",
            "n": n,
            "substitute_for": "Greek cities and villages (rtreeportal.org)",
        },
    )

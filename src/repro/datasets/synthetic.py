"""Synthetic datasets from the paper's evaluation (Section 6).

Two families of multi-dimensional points with values in ``[0, 1]``:

* **Uniform** — points uniformly distributed in the unit hypercube.
* **Clustered** — points forming (hyper)spherical clusters of *different
  sizes*, both in member count and in spatial extent, mirroring the
  paper's description.  Cluster centres are spread with a minimum
  separation so clusters are visually distinct at the default radii.

Both generators are deterministic given a seed (the paper's defaults:
10000 objects, 2 dimensions).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.datasets.base import Dataset
from repro.distance import EUCLIDEAN

__all__ = ["uniform_dataset", "clustered_dataset", "sample_ball"]


def uniform_dataset(
    n: int = 10000,
    dim: int = 2,
    seed: int = 0,
    metric=EUCLIDEAN,
) -> Dataset:
    """Points uniformly distributed in ``[0, 1]^dim``."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if dim <= 0:
        raise ValueError(f"dim must be positive, got {dim}")
    rng = np.random.default_rng(seed)
    points = rng.random((n, dim))
    return Dataset(
        name="Uniform",
        points=points,
        metric=metric,
        meta={"seed": seed, "generator": "uniform", "n": n, "dim": dim},
    )


def sample_ball(rng: np.random.Generator, center: np.ndarray, radius: float, n: int) -> np.ndarray:
    """Sample ``n`` points uniformly from the ball around ``center``.

    Uses the standard direction/radius decomposition: a Gaussian vector
    normalised to the sphere gives the direction, and ``U^{1/d}`` scales
    the radius so the density is uniform in volume.
    """
    dim = center.shape[0]
    directions = rng.normal(size=(n, dim))
    norms = np.linalg.norm(directions, axis=1, keepdims=True)
    # A zero vector from the Gaussian is measure-zero but guard anyway.
    norms[norms == 0.0] = 1.0
    directions /= norms
    radii = radius * rng.random(n) ** (1.0 / dim)
    return center + directions * radii[:, None]


def _spread_centers(
    rng: np.random.Generator, n_clusters: int, dim: int, min_sep: float
) -> np.ndarray:
    """Pick cluster centres in [margin, 1-margin]^dim with best-effort
    pairwise separation ``min_sep`` (dart throwing with decay)."""
    margin = 0.1
    centers = []
    sep = min_sep
    attempts = 0
    while len(centers) < n_clusters:
        candidate = margin + (1 - 2 * margin) * rng.random(dim)
        if all(np.linalg.norm(candidate - c) >= sep for c in centers):
            centers.append(candidate)
        attempts += 1
        if attempts % 200 == 0:
            sep *= 0.8  # relax if the space is too crowded for min_sep
    return np.asarray(centers)


def clustered_dataset(
    n: int = 10000,
    dim: int = 2,
    n_clusters: int = 10,
    seed: int = 0,
    metric=EUCLIDEAN,
    noise_fraction: float = 0.02,
    min_cluster_separation: Optional[float] = None,
) -> Dataset:
    """Points forming hyperspherical clusters of different sizes.

    Parameters
    ----------
    n, dim, seed:
        Cardinality, dimensionality, RNG seed.
    n_clusters:
        Number of clusters; member counts follow a Dirichlet draw so
        cluster populations differ, and spatial radii vary by ~3x.
    noise_fraction:
        Fraction of points scattered uniformly (outliers the paper's
        Section 4 insists must still be covered).
    min_cluster_separation:
        Minimum distance between cluster centres; defaults to a value
        that keeps clusters distinct in 2-d and relaxes automatically in
        higher dimensions.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if dim <= 0:
        raise ValueError(f"dim must be positive, got {dim}")
    if n_clusters <= 0:
        raise ValueError(f"n_clusters must be positive, got {n_clusters}")
    if not 0.0 <= noise_fraction < 1.0:
        raise ValueError(f"noise_fraction must be in [0, 1), got {noise_fraction}")

    rng = np.random.default_rng(seed)
    n_noise = int(round(n * noise_fraction))
    n_clustered = n - n_noise

    if min_cluster_separation is None:
        min_cluster_separation = 0.25 if dim <= 3 else 0.15
    centers = _spread_centers(rng, n_clusters, dim, min_cluster_separation)

    # Unequal cluster populations (Dirichlet with alpha > 1 keeps every
    # cluster non-trivial) and unequal spatial radii.
    weights = rng.dirichlet(np.full(n_clusters, 2.0))
    counts = np.floor(weights * n_clustered).astype(int)
    counts[: n_clustered - counts.sum()] += 1  # distribute the remainder
    radii = rng.uniform(0.04, 0.13, size=n_clusters)

    chunks = []
    for center, count, radius in zip(centers, counts, radii):
        if count == 0:
            continue
        chunks.append(sample_ball(rng, center, radius, count))
    if n_noise:
        chunks.append(rng.random((n_noise, dim)))
    points = np.clip(np.vstack(chunks), 0.0, 1.0)
    # Shuffle so insertion order carries no cluster signal.
    rng.shuffle(points)

    return Dataset(
        name="Clustered",
        points=points,
        metric=metric,
        meta={
            "seed": seed,
            "generator": "clustered",
            "n": n,
            "dim": dim,
            "n_clusters": n_clusters,
            "noise_fraction": noise_fraction,
        },
    )

"""Distance metrics used throughout the DisC reproduction.

The paper (Section 2.1) models similarity through an arbitrary distance
metric ``dist``: two objects are *similar* when ``dist(p, q) <= r`` and
*dissimilar* otherwise.  The evaluation (Section 6) uses the Euclidean
distance for the numeric datasets ("Uniform", "Clustered", "Cities") and
the Hamming distance for the categorical "Cameras" dataset.  The
theoretical bounds of Lemmas 2-4 additionally cover the Manhattan
distance, so all three are first-class citizens here; Chebyshev and
generic Minkowski round out the family for experimentation.

Every metric exposes three operations, all NumPy-vectorised:

``distance(a, b)``
    scalar distance between two points,
``to_point(X, p)``
    distances from every row of ``X`` to the single point ``p``,
``pairwise(X, Y=None)``
    the full distance matrix (used by baselines and the test oracle).

Metrics are stateless and hashable, so a single module-level instance per
metric is shared freely (``EUCLIDEAN``, ``MANHATTAN``, ...).
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

__all__ = [
    "Metric",
    "EuclideanMetric",
    "ManhattanMetric",
    "ChebyshevMetric",
    "MinkowskiMetric",
    "HammingMetric",
    "EUCLIDEAN",
    "MANHATTAN",
    "CHEBYSHEV",
    "HAMMING",
    "get_metric",
    "available_metrics",
]


def _abs_diff(a, b, out=None):
    """|a - b| broadcast, reusing ``out`` as scratch when provided.

    The closed-form L1/Linf pairwise implementations fold one
    ``(len(X), len(Y))`` plane per *coordinate* into the result, so
    memory stays at two 2-d matrices regardless of dimensionality —
    unlike a full ``(n, m, d)`` broadcast, which is memory-bound, or
    the generic per-row loop, which pays a Python call per row.
    """
    diff = np.subtract(a, b, out=out)
    return np.abs(diff, out=diff)


class Metric(abc.ABC):
    """A distance metric over fixed-dimension points.

    Subclasses must satisfy the metric axioms (non-negativity, identity,
    symmetry, triangle inequality); the DisC machinery and in particular
    the M-tree's pruning rules rely on the triangle inequality being
    valid.
    """

    #: short lowercase identifier used by :func:`get_metric` and reprs.
    name: str = "abstract"

    @abc.abstractmethod
    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        """Return the distance between points ``a`` and ``b``."""

    @abc.abstractmethod
    def to_point(self, X: np.ndarray, p: np.ndarray) -> np.ndarray:
        """Return distances from every row of ``X`` to point ``p``.

        ``X`` has shape ``(n, d)`` and ``p`` shape ``(d,)``; the result
        has shape ``(n,)``.
        """

    def pairwise(self, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
        """Return the ``(len(X), len(Y))`` distance matrix.

        The generic implementation loops over the rows of the smaller
        operand and vectorises along the other; subclasses may override
        with closed forms.
        """
        X = np.asarray(X)
        Y = X if Y is None else np.asarray(Y)
        out = np.empty((X.shape[0], Y.shape[0]), dtype=float)
        for i in range(X.shape[0]):
            out[i] = self.to_point(Y, X[i])
        return out

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other)

    def __hash__(self) -> int:
        return hash(type(self).__name__)


class EuclideanMetric(Metric):
    """The L2 metric. ``G_{P,r}`` under this metric is a unit-disk graph."""

    name = "euclidean"

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        diff = np.asarray(a, dtype=float) - np.asarray(b, dtype=float)
        return float(np.sqrt(np.dot(diff, diff)))

    def to_point(self, X: np.ndarray, p: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        p = np.asarray(p, dtype=float)
        if X.shape[1] == 0:
            return np.zeros(X.shape[0], dtype=float)
        # Same coordinate-at-a-time accumulation as :meth:`pairwise`
        # (see there) so single queries and matrix blocks agree
        # bit-for-bit at any dimensionality.
        diff = np.subtract(X[:, 0], p[0])
        out = np.multiply(diff, diff)
        for k in range(1, X.shape[1]):
            np.subtract(X[:, k], p[k], out=diff)
            out += np.multiply(diff, diff, out=diff)
        return np.sqrt(out, out=out)

    def pairwise(self, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        Y = X if Y is None else np.asarray(Y, dtype=float)
        if X.shape[1] == 0:
            return np.zeros((X.shape[0], Y.shape[0]), dtype=float)
        # Direct squared-difference accumulation, one coordinate plane
        # at a time.  Unlike the ||x||^2+||y||^2-2xy closed form this
        # is bit-identical to :meth:`to_point` (same subtract/square/
        # accumulate order), so cached adjacency, CSR builds and
        # per-query scans agree even on exact radius ties — the
        # determinism contract the cross-engine tests pin.
        diff = np.subtract(X[:, 0, None], Y[None, :, 0])
        out = np.multiply(diff, diff)
        for k in range(1, X.shape[1]):
            np.subtract(X[:, k, None], Y[None, :, k], out=diff)
            out += np.multiply(diff, diff, out=diff)
        return np.sqrt(out, out=out)


class ManhattanMetric(Metric):
    """The L1 metric, covered by the paper's Lemma 3 / Lemma 4(ii)."""

    name = "manhattan"

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        return float(
            np.sum(np.abs(np.asarray(a, dtype=float) - np.asarray(b, dtype=float)))
        )

    def to_point(self, X: np.ndarray, p: np.ndarray) -> np.ndarray:
        return np.sum(
            np.abs(np.asarray(X, dtype=float) - np.asarray(p, dtype=float)), axis=1
        )

    def pairwise(self, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        Y = X if Y is None else np.asarray(Y, dtype=float)
        if X.shape[1] == 0:
            return np.zeros((X.shape[0], Y.shape[0]), dtype=float)
        out = _abs_diff(X[:, 0, None], Y[None, :, 0])
        scratch = np.empty_like(out)
        for k in range(1, X.shape[1]):
            out += _abs_diff(X[:, k, None], Y[None, :, k], out=scratch)
        return out


class ChebyshevMetric(Metric):
    """The L-infinity metric (max per-coordinate difference)."""

    name = "chebyshev"

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        return float(
            np.max(np.abs(np.asarray(a, dtype=float) - np.asarray(b, dtype=float)))
        )

    def to_point(self, X: np.ndarray, p: np.ndarray) -> np.ndarray:
        return np.max(
            np.abs(np.asarray(X, dtype=float) - np.asarray(p, dtype=float)), axis=1
        )

    def pairwise(self, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        Y = X if Y is None else np.asarray(Y, dtype=float)
        if X.shape[1] == 0:
            return np.zeros((X.shape[0], Y.shape[0]), dtype=float)
        out = _abs_diff(X[:, 0, None], Y[None, :, 0])
        scratch = np.empty_like(out)
        for k in range(1, X.shape[1]):
            np.maximum(out, _abs_diff(X[:, k, None], Y[None, :, k], out=scratch), out=out)
        return out


class MinkowskiMetric(Metric):
    """The general Lp metric for ``p >= 1`` (p < 1 violates the triangle
    inequality and is rejected)."""

    name = "minkowski"

    def __init__(self, p: float):
        if p < 1:
            raise ValueError(f"Minkowski order must be >= 1 to be a metric, got {p}")
        self.p = float(p)

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        diff = np.abs(np.asarray(a, dtype=float) - np.asarray(b, dtype=float))
        return float(np.sum(diff**self.p) ** (1.0 / self.p))

    def to_point(self, X: np.ndarray, p: np.ndarray) -> np.ndarray:
        diff = np.abs(np.asarray(X, dtype=float) - np.asarray(p, dtype=float))
        return np.sum(diff**self.p, axis=1) ** (1.0 / self.p)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"MinkowskiMetric(p={self.p})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MinkowskiMetric) and self.p == other.p

    def __hash__(self) -> int:
        return hash(("minkowski", self.p))


class HammingMetric(Metric):
    """Count of differing coordinates.

    This is the metric the paper uses for the categorical "Cameras"
    dataset: ``dist(p_i, p_j) = sum_i delta_i(p_i, p_j)`` where
    ``delta_i`` is 1 when the objects differ in the i-th attribute.
    Points are integer category codes; the distance is an integer in
    ``[0, d]``, which is why the Cameras radii in the paper are the
    integers 1..6.
    """

    name = "hamming"

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        return float(np.sum(np.asarray(a) != np.asarray(b)))

    def to_point(self, X: np.ndarray, p: np.ndarray) -> np.ndarray:
        return np.sum(np.asarray(X) != np.asarray(p), axis=1).astype(float)

    def pairwise(self, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
        X = np.asarray(X)
        Y = X if Y is None else np.asarray(Y)
        out = np.zeros((X.shape[0], Y.shape[0]), dtype=float)
        for k in range(X.shape[1]):
            out += X[:, k, None] != Y[None, :, k]
        return out


#: Shared stateless instances.
EUCLIDEAN = EuclideanMetric()
MANHATTAN = ManhattanMetric()
CHEBYSHEV = ChebyshevMetric()
HAMMING = HammingMetric()

_REGISTRY = {
    "euclidean": EUCLIDEAN,
    "l2": EUCLIDEAN,
    "manhattan": MANHATTAN,
    "l1": MANHATTAN,
    "chebyshev": CHEBYSHEV,
    "linf": CHEBYSHEV,
    "hamming": HAMMING,
}


def get_metric(name) -> Metric:
    """Resolve ``name`` to a shared :class:`Metric` instance.

    ``name`` may already be a :class:`Metric`, in which case it is
    returned unchanged — this lets API functions accept either form.
    """
    if isinstance(name, Metric):
        return name
    try:
        return _REGISTRY[str(name).lower()]
    except KeyError:
        raise ValueError(
            f"unknown metric {name!r}; available: {sorted(set(_REGISTRY))}"
        ) from None


def available_metrics() -> list:
    """Names accepted by :func:`get_metric`."""
    return sorted(set(_REGISTRY))

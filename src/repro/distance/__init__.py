"""Distance metrics (Euclidean, Manhattan, Chebyshev, Minkowski, Hamming)."""

from repro.distance.metrics import (
    CHEBYSHEV,
    EUCLIDEAN,
    HAMMING,
    MANHATTAN,
    ChebyshevMetric,
    EuclideanMetric,
    HammingMetric,
    ManhattanMetric,
    Metric,
    MinkowskiMetric,
    available_metrics,
    get_metric,
)

__all__ = [
    "Metric",
    "EuclideanMetric",
    "ManhattanMetric",
    "ChebyshevMetric",
    "MinkowskiMetric",
    "HammingMetric",
    "EUCLIDEAN",
    "MANHATTAN",
    "CHEBYSHEV",
    "HAMMING",
    "get_metric",
    "available_metrics",
]

"""Graph representation of a point set (Section 2.2).

``G_{P,r}`` joins two objects when their distance is at most r; DisC
diverse subsets are exactly the independent dominating sets of this
graph (Observation 1).  networkx graphs let the test suite cross-check
the geometric algorithms against graph-theoretic ground truth.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from repro.distance import get_metric

__all__ = [
    "build_neighborhood_graph",
    "is_independent_set",
    "is_dominating_set",
    "is_independent_dominating_set",
    "max_degree",
]


def build_neighborhood_graph(points: np.ndarray, metric, radius: float) -> nx.Graph:
    """Build ``G_{P,r}``: vertices are row indices, edges join objects at
    distance <= radius.

    O(n^2) distance evaluations — intended for analysis and tests, not
    for the algorithms themselves (those use neighbor indexes).  Edge
    extraction is a single vectorised threshold over the upper triangle
    rather than a Python double loop.
    """
    metric = get_metric(metric)
    points = np.asarray(points)
    n = points.shape[0]
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    matrix = metric.pairwise(points)
    edges = np.argwhere(np.triu(matrix <= radius, k=1))
    graph.add_edges_from((int(i), int(j)) for i, j in edges)
    return graph


def is_independent_set(graph: nx.Graph, nodes: Sequence[int]) -> bool:
    """No edge joins two members of ``nodes``."""
    node_set = set(nodes)
    return not any(
        neighbor in node_set
        for node in node_set
        for neighbor in graph.neighbors(node)
    )


def is_dominating_set(graph: nx.Graph, nodes: Sequence[int]) -> bool:
    """Every vertex is in ``nodes`` or adjacent to a member."""
    return nx.is_dominating_set(graph, set(nodes))


def is_independent_dominating_set(graph: nx.Graph, nodes: Sequence[int]) -> bool:
    """Both properties — equivalently, a maximal independent set."""
    return is_independent_set(graph, nodes) and is_dominating_set(graph, nodes)


def max_degree(graph: nx.Graph) -> int:
    """Δ of the graph — the quantity in Theorem 2's bound."""
    if graph.number_of_nodes() == 0:
        return 0
    return max(degree for _, degree in graph.degree())

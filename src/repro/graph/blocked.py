"""Two-level blocked neighborhood engine: CSR remainder + implicit
dense blocks.

On clustered data at scale the fixed-radius graph is dominated by
near-cliques: :func:`~repro.graph.csr.build_csr_grid` already *proves*
— from the min/max cell-pair distance bounds — that entire cell pairs
lie mutually within the radius, then spends almost all of its time and
memory expanding those proofs into hundreds of millions of explicit CSR
edges (ROADMAP: 200k clustered is adjacency-bound at nnz 317M).  This
module keeps the proof implicit instead:

* the *sparse remainder* — every edge whose cell pair needed a distance
  computation, plus dense pairs too small to be worth a block — stays a
  plain :class:`~repro.graph.csr.CSRNeighborhood`;
* every provably-dense cell pair becomes a **dense block**: a biclique
  ``(members_a, members_b)`` (or a within-cell clique ``(members,)``)
  recorded as id arrays only — ``O(|A| + |B|)`` memory for
  ``|A| * |B|`` edges, no edge materialisation at all.

:class:`BlockedNeighborhood` implements the same query primitives as
the flat CSR (``neighbors`` / ``neighbor_counts`` / ``decrement`` /
``cover_mask`` / ``degrees``), so every CSR fast path — Greedy-DisC,
Greedy-C, Basic-DisC, the zoom passes, the weighted extension — runs on
it unchanged and **byte-identical in selection order**: the primitives
maintain exactly the same per-object counts the flat adjacency would,
and the picks go through the same :class:`~repro.graph.priority.
MaxSegmentTree` argmax tie-breaking.  The count algebra is the
aggregate-over-groups identity

``white_neighbors(i) = csr_count(i) + Σ_blocks |white ∩ other_side(i)|``

so a batch of objects leaving the white pool costs one per-block
counter delta applied to each affected side *once per step*, instead of
once per source object — the same collapse that turns the build from
O(nnz) into O(cells²) for the dense fraction.

Internally the blocks are stored as a structure of arrays over *sides*
(a biclique contributes two sides, a clique one): ``side_ptr`` /
``side_members`` concatenate the member ids, ``side_partner[s]`` names
the side whose white count feeds the counts of side ``s``'s members
(bicliques point at each other, cliques at themselves with a
subtract-self correction), and a node→sides membership CSR drives the
per-step delta lookups.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from repro.cancellation import current_token
from repro.graph.csr import (
    CSRNeighborhood,
    _PAIR_AUTO,
    _assemble_grid_csr,
    _flat_row_positions,
    _GridPlan,
    _plan_grid,
)
from repro.validation import validate_radius

__all__ = [
    "BlockedNeighborhood",
    "build_blocked_grid",
    "build_grid_auto",
    "MIN_BLOCK_PAIRS",
    "MIN_DENSE_EDGES",
    "MIN_DENSE_FRACTION",
]

#: A provably-dense cell pair only becomes a block when it stands for at
#: least this many edges; smaller auto pairs stay in the sparse
#: remainder (they are still emitted without distance computations —
#: the block bookkeeping just would not pay below this).
MIN_BLOCK_PAIRS = 256

#: :func:`build_grid_auto` thresholds: the blocked engine is picked when
#: the provably-dense pairs stand for at least this many edges *and* at
#: least this fraction of the candidate edges.  Below either, the flat
#: CSR's single-array layout wins (its primitives have no per-block
#: Python constant).
MIN_DENSE_EDGES = 1_000_000
MIN_DENSE_FRACTION = 0.2


class BlockedNeighborhood:
    """Fixed-radius adjacency as CSR remainder + implicit dense blocks.

    Drop-in for :class:`~repro.graph.csr.CSRNeighborhood` in every
    selection fast path: same primitive semantics, same ascending
    neighbor order, identical maintained counts.  ``nnz`` reports the
    *logical* edge count (what the flat CSR would store); the actual
    footprint is ``stored_nnz`` plus one id per block-side member.
    """

    __slots__ = (
        "n",
        "sparse",
        "side_ptr",
        "side_members",
        "side_partner",
        "side_is_clique",
        "_mem_indptr",
        "_mem_side",
        "_clique_members",
        "_degrees",
        "_dense_nnz",
    )

    def __init__(
        self,
        sparse: CSRNeighborhood,
        side_ptr: np.ndarray,
        side_members: np.ndarray,
        side_partner: np.ndarray,
        side_is_clique: np.ndarray,
    ):
        self.n = sparse.n
        self.sparse = sparse
        self.side_ptr = np.asarray(side_ptr, dtype=np.int64)
        self.side_members = np.asarray(side_members, dtype=np.int32)
        self.side_partner = np.asarray(side_partner, dtype=np.int64)
        self.side_is_clique = np.asarray(side_is_clique, dtype=bool)
        if self.side_ptr.shape[0] != self.side_partner.shape[0] + 1:
            raise ValueError("side_ptr must have one more entry than sides")

        # Node -> containing sides, as a CSR over (node, side id); this
        # is what turns a batch of recolored objects into per-side
        # deltas in one gather.
        lengths = np.diff(self.side_ptr)
        owner = np.repeat(
            np.arange(self.num_sides, dtype=np.int64), lengths
        )
        order = np.argsort(self.side_members, kind="stable")
        self._mem_side = owner[order].astype(np.int32)
        self._mem_indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(self.side_members, minlength=self.n),
            out=self._mem_indptr[1:],
        )
        clique_sides = np.flatnonzero(self.side_is_clique)
        self._clique_members = (
            np.concatenate([self._side(s) for s in clique_sides]).astype(np.int64)
            if clique_sides.size
            else np.empty(0, dtype=np.int64)
        )
        self._degrees: Optional[np.ndarray] = None
        partner_len = lengths[self.side_partner] if self.num_sides else lengths
        self._dense_nnz = int(
            (lengths * partner_len).sum() - lengths[self.side_is_clique].sum()
        )

    # ------------------------------------------------------------------
    # Shared-memory transport
    # ------------------------------------------------------------------
    def to_shared_arrays(self) -> dict:
        """Flat ndarray views for zero-copy transport (shm segments).

        Only the five defining arrays travel (plus the sparse CSR pair);
        the derived membership/degree companions are rebuilt on attach —
        they are small relative to the adjacency and keeping them local
        avoids shipping redundant state.  ``side_is_clique`` travels as
        ``uint8`` because shared segments are raw bytes.
        """
        return {
            "sparse_indptr": self.sparse.indptr,
            "sparse_indices": self.sparse.indices,
            "side_ptr": self.side_ptr,
            "side_members": self.side_members,
            "side_partner": self.side_partner,
            "side_is_clique": self.side_is_clique.astype(np.uint8),
        }

    @classmethod
    def from_shared_arrays(cls, arrays: dict) -> "BlockedNeighborhood":
        """Rebuild from :meth:`to_shared_arrays` output (possibly read-only)."""
        sparse = CSRNeighborhood(
            arrays["sparse_indptr"], arrays["sparse_indices"]
        )
        return cls(
            sparse,
            arrays["side_ptr"],
            arrays["side_members"],
            arrays["side_partner"],
            arrays["side_is_clique"].astype(bool),
        )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def num_sides(self) -> int:
        return self.side_partner.shape[0]

    @property
    def num_blocks(self) -> int:
        """Dense blocks (a biclique counts once despite its two sides)."""
        bicliques = int(np.count_nonzero(~self.side_is_clique)) // 2
        return bicliques + int(np.count_nonzero(self.side_is_clique))

    def _side(self, s: int) -> np.ndarray:
        return self.side_members[self.side_ptr[s] : self.side_ptr[s + 1]]

    @property
    def nnz(self) -> int:
        """Logical (directed) edge count — what the flat CSR would store."""
        return self.sparse.nnz + self._dense_nnz

    @property
    def stored_nnz(self) -> int:
        """Explicitly materialised adjacency entries (sparse remainder)."""
        return self.sparse.nnz

    @property
    def dense_nnz(self) -> int:
        """Edges represented implicitly by the dense blocks."""
        return self._dense_nnz

    @property
    def dense_fraction(self) -> float:
        """Share of the logical edges kept implicit."""
        total = self.nnz
        return self._dense_nnz / total if total else 0.0

    @property
    def nbytes(self) -> int:
        """Resident footprint: sparse remainder + block/side id arrays.

        The cache hook read by :class:`~repro.engines.cache.
        AdjacencyCache` — this is the *stored* size (the whole point of
        the blocked form is that it is far below the logical ``nnz``).
        """
        total = self.sparse.nbytes + (
            self.side_ptr.nbytes
            + self.side_members.nbytes
            + self.side_partner.nbytes
            + self.side_is_clique.nbytes
            + self._mem_indptr.nbytes
            + self._mem_side.nbytes
            + self._clique_members.nbytes
        )
        if self._degrees is not None:
            total += self._degrees.nbytes
        return int(total)

    @property
    def degrees(self) -> np.ndarray:
        """``|N_r(p_i)|`` for every object (self excluded; cached)."""
        if self._degrees is None:
            deg = self.sparse.degrees.astype(np.int64)
            token = current_token()
            for s in range(self.num_sides):
                if token is not None and s % 256 == 0:
                    token.checkpoint()
                members = self._side(self.side_partner[s])
                deg[members] += self.side_ptr[s + 1] - self.side_ptr[s]
                if self.side_is_clique[s]:
                    deg[members] -= 1
            self._degrees = deg
        return self._degrees

    # ------------------------------------------------------------------
    # Row materialisation
    # ------------------------------------------------------------------
    def neighbors(self, object_id: int) -> np.ndarray:
        """The neighbor ids of one object (ascending, int32).

        Materialised on demand: the sparse row merged with the other
        side of every block the object belongs to.  An edge lives in
        exactly one of the two levels, so the merge is a plain sort
        with no dedup.
        """
        lo, hi = self._mem_indptr[object_id], self._mem_indptr[object_id + 1]
        row = self.sparse.neighbors(object_id)
        if lo == hi:
            return row
        parts = [row]
        for s in self._mem_side[lo:hi]:
            other = self._side(self.side_partner[s])
            if self.side_is_clique[s]:
                pos = int(np.searchsorted(other, object_id))
                parts.append(other[:pos])
                parts.append(other[pos + 1 :])
            else:
                parts.append(other)
        out = np.concatenate(parts)
        out.sort()
        return out

    def gather(self, ids: np.ndarray) -> np.ndarray:
        """Concatenated neighbor lists of ``ids`` (duplicates preserved).

        Materialises every requested row — fine for the occasional bulk
        probe, but the hot paths (:meth:`decrement`,
        :meth:`cover_mask`) work block-wise instead of expanding.
        """
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size == 0:
            return np.empty(0, dtype=np.int32)
        return np.concatenate([self.neighbors(int(i)) for i in ids])

    # ------------------------------------------------------------------
    # Bulk primitives (same contracts as CSRNeighborhood)
    # ------------------------------------------------------------------
    def _member_sides(self, ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(node, side id) pairs for every block membership of ``ids``."""
        ids = np.asarray(ids, dtype=np.int64)
        positions, lengths = _flat_row_positions(self._mem_indptr, ids)
        if positions.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        return np.repeat(ids, lengths), self._mem_side[positions].astype(np.int64)

    def neighbor_counts(self, mask: np.ndarray) -> np.ndarray:
        """Per-object count of neighbors selected by the boolean ``mask``.

        The sparse remainder goes through the CSR bincount; each block
        side then adds its partner's white population to its members in
        one weighted bincount — the ``csr_count + Σ |white ∩
        other_side|`` identity, evaluated without touching an edge.
        """
        mask = np.asarray(mask, dtype=bool)
        counts = self.sparse.neighbor_counts(mask).astype(np.int64)
        if self.num_sides == 0:
            return counts
        hits = mask[self.side_members].astype(np.int64)
        side_white = np.add.reduceat(hits, self.side_ptr[:-1])
        received = side_white[self.side_partner]
        lengths = np.diff(self.side_ptr)
        counts += np.bincount(
            self.side_members,
            weights=np.repeat(received, lengths).astype(np.float64),
            minlength=self.n,
        ).astype(np.int64)
        if self._clique_members.size:
            # A clique member is not its own neighbor.
            counts[self._clique_members] -= mask[self._clique_members]
        return counts

    def decrement(
        self, counts: np.ndarray, sources: np.ndarray, eligible: np.ndarray
    ) -> np.ndarray:
        """Batch count maintenance for the grey update rule.

        Semantically identical to the CSR version — every source
        decrements each of its neighbors once — but the dense level is
        applied as per-block deltas: ``d`` sources leaving a side
        subtract ``d`` from every member of the partner side in one
        vector op, so a side is touched once per *step*, not once per
        source.  Clique sides add the subtract-self correction (a
        source is not its own neighbor).  Returns the touched ids
        filtered to ``eligible``; like the CSR contract, counts of
        ineligible objects are garbage the callers never read.
        """
        sources = np.asarray(sources, dtype=np.int64)
        touched_sparse = self.sparse.decrement(counts, sources, eligible)
        if self.num_sides == 0 or sources.size == 0:
            return touched_sparse
        nodes, side_ids = self._member_sides(sources)
        if side_ids.size == 0:
            return touched_sparse
        delta = np.bincount(side_ids, minlength=self.num_sides)
        touched_parts: List[np.ndarray] = []
        for s in np.flatnonzero(delta):
            members = self._side(self.side_partner[s])
            counts[members] -= delta[s]
            touched_parts.append(members)
        clique_hits = self.side_is_clique[side_ids]
        if clique_hits.any():
            np.add.at(counts, nodes[clique_hits], 1)
        touched = np.unique(np.concatenate(touched_parts).astype(np.int64))
        touched = touched[eligible[touched]]
        if touched_sparse.size == 0:
            return touched
        return np.unique(np.concatenate((touched_sparse, touched)))

    def cover_mask(
        self, ids: np.ndarray, *, include_sources: bool = True
    ) -> np.ndarray:
        """Boolean mask of everything within one hop of ``ids``."""
        # Dedupe up front: the mask is duplicate-insensitive by nature,
        # but the lone-clique-member test below counts ids per side and
        # must not mistake a repeated id for two distinct members.
        ids = np.unique(np.asarray(ids, dtype=np.int64))
        mask = self.sparse.cover_mask(ids, include_sources=False)
        if ids.size and self.num_sides:
            nodes, side_ids = self._member_sides(ids)
            hit = np.bincount(side_ids, minlength=self.num_sides)
            for s in np.flatnonzero(hit):
                members = self._side(self.side_partner[s])
                if self.side_is_clique[s] and hit[s] == 1:
                    # The lone id in this clique is not its own neighbor.
                    lone = int(nodes[side_ids == s][0])
                    pos = int(np.searchsorted(members, lone))
                    mask[members[:pos]] = True
                    mask[members[pos + 1 :]] = True
                else:
                    mask[members] = True
        if include_sources and ids.size:
            mask[ids] = True
        return mask

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"BlockedNeighborhood(n={self.n}, nnz={self.nnz}, "
            f"stored_nnz={self.stored_nnz}, blocks={self.num_blocks})"
        )


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def _blocked_pair_mask(
    plan: _GridPlan, min_block_pairs: int, products: Optional[np.ndarray] = None
) -> np.ndarray:
    """Directed cell pairs worth storing implicitly: provably inside the
    radius and standing for at least ``min_block_pairs`` edges.  The
    predicate is symmetric (classification and products both are), so a
    pair and its mirror always land on the same side of the cut.
    ``products`` lets callers that already hold ``plan.pair_products()``
    avoid recomputing it."""
    if products is None:
        products = plan.pair_products()
    return (plan.pair_cls == _PAIR_AUTO) & (products >= min_block_pairs)


def _finish_blocked(
    points: np.ndarray,
    metric,
    radius: float,
    plan: _GridPlan,
    pair_blocked: np.ndarray,
    stats,
) -> BlockedNeighborhood:
    """Assemble the sparse remainder and the block side arrays."""
    csr = _assemble_grid_csr(
        points, metric, radius, plan, stats=stats, pair_keep=~pair_blocked
    )
    undirected = pair_blocked & (plan.pair_src <= plan.pair_dst)
    sides: List[np.ndarray] = []
    partner: List[int] = []
    is_clique: List[bool] = []
    token = current_token()
    for pair_no, (src, dst) in enumerate(zip(
        plan.pair_src[np.flatnonzero(undirected)],
        plan.pair_dst[np.flatnonzero(undirected)],
    )):
        if token is not None and pair_no % 256 == 0:
            token.checkpoint()
        if src == dst:
            sides.append(plan.groups[src])
            partner.append(len(sides) - 1)
            is_clique.append(True)
        else:
            sides.append(plan.groups[src])
            sides.append(plan.groups[dst])
            partner.extend((len(sides) - 1, len(sides) - 2))
            is_clique.extend((False, False))
    side_ptr = np.zeros(len(sides) + 1, dtype=np.int64)
    if sides:
        np.cumsum(
            np.fromiter((s.size for s in sides), dtype=np.int64, count=len(sides)),
            out=side_ptr[1:],
        )
        side_members = np.concatenate(sides).astype(np.int32)
    else:
        side_members = np.empty(0, dtype=np.int32)
    return BlockedNeighborhood(
        csr,
        side_ptr,
        side_members,
        np.asarray(partner, dtype=np.int64),
        np.asarray(is_clique, dtype=bool),
    )


def build_blocked_grid(
    points: np.ndarray,
    metric,
    radius: float,
    *,
    stats=None,
    resolution: Optional[int] = None,
    min_block_pairs: Optional[int] = None,
) -> BlockedNeighborhood:
    """Blocked adjacency via the shared grid plan.

    Identical graph to :func:`~repro.graph.csr.build_csr_grid` — the
    cell-pair classification is literally the same plan — but every
    provably-dense pair of at least ``min_block_pairs`` edges is
    recorded as an implicit block instead of being expanded.  Distance
    computations are identical to the flat build (auto pairs never
    computed distances anyway); what the blocks save is the edge
    expansion itself: memory and assembly time drop by the dense
    fraction.
    """
    radius = validate_radius(radius)
    points = np.asarray(points, dtype=float)
    if points.shape[0] == 0:
        return BlockedNeighborhood(
            CSRNeighborhood.empty(),
            np.zeros(1, dtype=np.int64),
            np.empty(0, dtype=np.int32),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=bool),
        )
    if min_block_pairs is None:
        min_block_pairs = MIN_BLOCK_PAIRS
    plan = _plan_grid(points, metric, radius, resolution)
    pair_blocked = _blocked_pair_mask(plan, min_block_pairs)
    return _finish_blocked(points, metric, radius, plan, pair_blocked, stats)


def build_grid_auto(
    points: np.ndarray,
    metric,
    radius: float,
    *,
    stats=None,
    resolution: Optional[int] = None,
    min_block_pairs: Optional[int] = None,
    min_dense_edges: Optional[int] = None,
    min_dense_fraction: Optional[float] = None,
) -> Union[CSRNeighborhood, BlockedNeighborhood]:
    """Plan once, then pick flat CSR or blocked by the dense-edge share.

    The decision costs nothing extra: the plan already knows every
    provably-dense pair and every cell population, so the dense edge
    count is a couple of array reductions.  Blocked wins when the dense
    pairs stand for at least ``min_dense_edges`` edges *and*
    ``min_dense_fraction`` of all candidate edges; otherwise the flat
    layout's loop-free primitives win and the same plan is expanded as
    before.
    """
    radius = validate_radius(radius)
    points = np.asarray(points, dtype=float)
    if points.shape[0] == 0:
        return CSRNeighborhood.empty()
    # None defaults resolve against the module constants at call time
    # so deployments (and tests) can retune the cut globally.
    if min_block_pairs is None:
        min_block_pairs = MIN_BLOCK_PAIRS
    if min_dense_edges is None:
        min_dense_edges = MIN_DENSE_EDGES
    if min_dense_fraction is None:
        min_dense_fraction = MIN_DENSE_FRACTION
    plan = _plan_grid(points, metric, radius, resolution)
    products = plan.pair_products()
    pair_blocked = _blocked_pair_mask(plan, min_block_pairs, products)
    dense_edges = int(products[pair_blocked].sum())
    candidate_edges = int(products.sum())
    if dense_edges >= min_dense_edges and dense_edges >= min_dense_fraction * max(
        candidate_edges, 1
    ):
        return _finish_blocked(points, metric, radius, plan, pair_blocked, stats)
    return _assemble_grid_csr(points, metric, radius, plan, stats=stats)

"""Incrementally maintained fixed-radius adjacency (live datasets).

:func:`repro.graph.csr.build_csr_grid` answers the static question —
materialise ``G_{P,r}`` once for an immutable point set.  A *live*
dataset (``repro.live``) appends and deletes points while the serving
layer keeps selling selections against the current version, and a full
rebuild per mutation batch would charge every request O(build) for a
delta that touched a handful of grid cells.

:class:`IncrementalNeighborhood` retains the grid plan of the initial
build — origin, cell edge, offset classification — and maintains the
adjacency under mutation:

* **append**: new points are binned with the *original* origin/cell
  (keys may go negative; the cell directory is keyed by tuple, so the
  lattice extends for free).  Each batch emits edges only against the
  occupied cells within reach of the touched cells, reusing the
  :func:`~repro.graph.csr._classify_offsets` bound classes — provably
  in-radius cell pairs contribute edges *without computing a distance*,
  boundary pairs fall back to one vectorised ``metric.pairwise`` block.
  Cost is proportional to the touched cells' neighborhoods, not n.
* **delete**: a deletion is an alive-mask concern, not a structural
  one — edges are geometric facts about points, so nothing is unlinked.
  :meth:`snapshot_csr` filters dead endpoints out when compacting.

Rows stay ascending without any re-sorting: every appended batch holds
strictly larger ids than everything before it, so a row is (base part)
+ (overlay chunks in arrival order) — each chunk's smallest id exceeds
the previous chunk's largest.

The edge set is *identical* to a fresh
:func:`~repro.graph.csr.build_csr_grid` /
:func:`~repro.graph.csr.build_csr_pairwise` over the same alive points
(both are exact ``<= radius`` tests under the same metric), which is
what lets the serving layer migrate cached adjacencies across dataset
versions while keeping selections byte-identical to a recompute.  Like
the grid builder, the cell-pair bounds assume a Minkowski-family
metric (per-coordinate distance never exceeds the total) — callers
gate on the metric family.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.cancellation import current_token
from repro.graph.csr import (
    CSRNeighborhood,
    _assemble_grid_csr,
    _classify_offsets,
    _PAIR_AUTO,
    _plan_grid,
    group_points_by_cell,
    pairwise_row_chunk,
)
from repro.validation import validate_radius

__all__ = ["IncrementalNeighborhood"]


class IncrementalNeighborhood:
    """Fixed-radius adjacency over a growing point set with tombstones.

    ``points`` is the full (alive + dead) coordinate array at
    construction; ids are arrival positions and never change.  The
    structure keeps a *reference* to the caller's current full array
    via :meth:`append` (the live dataset owns the coordinates; this
    class owns the adjacency and the cell directory).
    """

    def __init__(self, points: np.ndarray, metric, radius: float) -> None:
        radius = validate_radius(radius)
        points = np.asarray(points, dtype=float)
        if points.ndim != 2:
            raise ValueError("points must be a 2-d array")
        self.metric = metric
        self.radius = float(radius)
        self.n = int(points.shape[0])
        self.dim = int(points.shape[1])
        self._points = points
        #: Appends since construction, as (row -> extra neighbor chunks).
        #: Chunk ids are strictly increasing across chunks, so rows stay
        #: ascending by construction.
        self._overlay: Dict[int, List[np.ndarray]] = {}
        self._overlay_nnz = 0

        if self.n:
            plan = _plan_grid(points, metric, radius, None)
            self.cell = plan.cell
            self.resolution = plan.resolution
        else:
            self.resolution = 1
            self.cell = float(radius) if radius > 0 else 1.0
        # The origin is pinned forever: later points may bin to negative
        # keys, which the tuple-keyed directory handles transparently.
        self._origin = (
            points.min(axis=0) if self.n else np.zeros(self.dim, dtype=float)
        )
        self._offsets, self._classes = _classify_offsets(
            metric, radius, self.cell, self.dim, self.resolution
        )
        #: Occupied cell -> member id chunks (append-ordered, ascending).
        self._cells: Dict[Tuple[int, ...], List[np.ndarray]] = {}
        if self.n:
            keys = np.floor((points - self._origin) / self.cell).astype(np.int64)
            token = current_token()
            for i, group in enumerate(group_points_by_cell(keys)):
                if token is not None and i % 64 == 0:
                    token.checkpoint()
                self._cells[tuple(keys[group[0]].tolist())] = [
                    group.astype(np.int32)
                ]
            self._base = _assemble_grid_csr(points, metric, radius, plan)
        else:
            self._base = CSRNeighborhood.empty()

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Directed adjacency entries, base plus overlay."""
        return self._base.nnz + self._overlay_nnz

    @property
    def nbytes(self) -> int:
        overlay = sum(
            chunk.nbytes
            for chunks in self._overlay.values()
            for chunk in chunks
        )
        return int(self._base.nbytes + overlay)

    def row(self, object_id: int) -> np.ndarray:
        """All neighbor ids of ``object_id`` (ascending, alive or not)."""
        parts: List[np.ndarray] = []
        if object_id < self._base.n:
            parts.append(self._base.neighbors(object_id))
        parts.extend(self._overlay.get(int(object_id), ()))
        if not parts:
            return np.empty(0, dtype=np.int32)
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(self, points: np.ndarray, count: int) -> np.ndarray:
        """Admit the ``count`` newest rows of ``points`` into the graph.

        ``points`` is the live dataset's *full* coordinate array after
        the mutation (the new rows are its tail); the reference replaces
        the one held so far.  Returns the new ids.  Cost: candidate
        gathering over the cells within reach of the touched cells only.
        """
        points = np.asarray(points, dtype=float)
        if points.shape[0] != self.n + count or points.shape[1] != self.dim:
            raise ValueError(
                f"expected {self.n + count} x {self.dim} points, "
                f"got {points.shape}"
            )
        start = self.n
        self._points = points
        self.n += int(count)
        new_ids = np.arange(start, start + count, dtype=np.int32)
        if count == 0:
            return new_ids
        new_points = points[start:]
        keys = np.floor((new_points - self._origin) / self.cell).astype(np.int64)
        groups = group_points_by_cell(keys)
        # Register the batch in the cell directory first, so batch-mates
        # in reach of each other are candidates like anyone else.
        token = current_token()
        for i, group in enumerate(groups):
            if token is not None and i % 64 == 0:
                token.checkpoint()
            key = tuple(keys[group[0]].tolist())
            self._cells.setdefault(key, []).append(
                (group + start).astype(np.int32)
            )

        auto = self._classes == _PAIR_AUTO
        for i, group in enumerate(groups):
            if token is not None and i % 16 == 0:
                token.checkpoint()
            key = keys[group[0]]
            members = (group + start).astype(np.int64)
            cand_chunks: List[np.ndarray] = []
            auto_flags: List[bool] = []
            for off, is_auto in zip(self._offsets, auto):
                chunks = self._cells.get(tuple((key + off).tolist()))
                if chunks is None:
                    continue
                cand_chunks.extend(chunks)
                auto_flags.extend([bool(is_auto)] * len(chunks))
            if not cand_chunks:
                continue
            candidates = np.concatenate(cand_chunks).astype(np.int64)
            auto_mask = np.repeat(
                np.asarray(auto_flags, dtype=bool),
                np.fromiter(
                    (c.size for c in cand_chunks),
                    dtype=np.int64,
                    count=len(cand_chunks),
                ),
            )
            order = np.argsort(candidates)
            candidates = candidates[order]
            auto_mask = auto_mask[order]
            self._emit_group(members, candidates, auto_mask, start)
        return new_ids

    def _emit_group(
        self,
        members: np.ndarray,
        candidates: np.ndarray,
        auto_mask: np.ndarray,
        batch_start: int,
    ) -> None:
        """Edges of one touched cell's members against its candidates.

        Forward rows (member -> hits) become the members' overlay
        chunks; reverse edges are grouped per *pre-batch* candidate and
        appended to those rows — batch-mates already see each other
        through their own forward pass, so reverse-linking them too
        would double the edge.
        """
        compute_idx = np.flatnonzero(~auto_mask)
        compute_points = self._points[candidates[compute_idx]]
        chunk = pairwise_row_chunk(max(1, candidates.size), self.dim)
        token = current_token()
        for s in range(0, members.size, chunk):  # repro-lint: disable=checkpoint-in-hot-loop -- one block per iteration is bounded work; the caller's group loop checkpoints
            sub = members[s : s + chunk]
            hits = np.empty((sub.size, candidates.size), dtype=bool)
            hits[:] = auto_mask
            if compute_idx.size:
                block = self.metric.pairwise(
                    self._points[sub], compute_points
                )
                hits[:, compute_idx] = block <= self.radius
            # Mask each member's own entry (distance zero, or an auto
            # column when the self cell-pair is provably dense).
            self_pos = np.searchsorted(candidates, sub)
            in_range = self_pos < candidates.size
            rows_ok = np.flatnonzero(in_range)
            rows_ok = rows_ok[candidates[self_pos[rows_ok]] == sub[rows_ok]]
            hits[rows_ok, self_pos[rows_ok]] = False

            local_rows, local_cols = np.nonzero(hits)
            cols = candidates[local_cols]
            counts = np.bincount(local_rows, minlength=sub.size)
            # Forward: each member's full (sorted) neighbor row so far.
            bounds = np.zeros(sub.size + 1, dtype=np.int64)
            np.cumsum(counts, out=bounds[1:])
            for j, member in enumerate(sub.tolist()):  # repro-lint: disable=checkpoint-in-hot-loop -- bounded by the pairwise chunk height; the caller's group loop checkpoints
                row = cols[bounds[j] : bounds[j + 1]].astype(np.int32)
                if row.size:
                    self._overlay.setdefault(member, []).append(row)
                    self._overlay_nnz += row.size
            # Reverse: group the pre-batch endpoints by column.
            old_mask = cols < batch_start
            if not np.any(old_mask):
                continue
            old_cols = cols[old_mask]
            old_rows = sub[local_rows[old_mask]].astype(np.int32)
            order = np.argsort(old_cols, kind="stable")
            old_cols = old_cols[order]
            old_rows = old_rows[order]
            boundaries = np.flatnonzero(np.diff(old_cols)) + 1
            col_starts = np.concatenate(
                ([0], boundaries, [old_cols.size])
            )
            for j in range(col_starts.size - 1):  # repro-lint: disable=checkpoint-in-hot-loop -- one touched pre-batch row per iteration; the caller's group loop checkpoints
                lo, hi = col_starts[j], col_starts[j + 1]
                target = int(old_cols[lo])
                chunk_ids = old_rows[lo:hi]
                self._overlay.setdefault(target, []).append(chunk_ids)
                self._overlay_nnz += chunk_ids.size

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def snapshot_csr(self, alive: np.ndarray) -> CSRNeighborhood:
        """The alive-only adjacency in *local* (compacted) id space.

        ``alive`` is the boolean mask over all ``n`` ids; local id ``i``
        is the i-th alive global id (``np.flatnonzero(alive)``).  The
        result equals a fresh grid/pairwise build over the alive points
        — same edges, same ascending rows — so cached snapshots can be
        migrated across dataset versions without breaking byte parity.
        """
        alive = np.asarray(alive, dtype=bool)
        if alive.shape[0] != self.n:
            raise ValueError(
                f"alive mask has {alive.shape[0]} entries for {self.n} ids"
            )
        alive_ids = np.flatnonzero(alive)
        lookup = np.full(self.n, -1, dtype=np.int64)
        lookup[alive_ids] = np.arange(alive_ids.size, dtype=np.int64)

        rows_acc: List[np.ndarray] = []
        cols_acc: List[np.ndarray] = []
        base = self._base
        if base.nnz:
            base_rows = base.row_ids().astype(np.int64)
            # int64 temporaries for alive/lookup fancy indexing; the
            # assembled CSR re-narrows indices to int32 in from_edges.
            base_cols = base.indices.astype(np.int64)  # repro-lint: disable=dtype-discipline -- widened only for index arithmetic
            keep = alive[base_rows] & alive[base_cols]
            rows_acc.append(base_rows[keep])
            cols_acc.append(base_cols[keep])
        token = current_token()
        for i, (row_id, chunks) in enumerate(self._overlay.items()):
            if token is not None and i % 256 == 0:
                token.checkpoint()
            if not alive[row_id]:
                continue
            cols = (
                chunks[0].astype(np.int64)
                if len(chunks) == 1
                else np.concatenate(chunks).astype(np.int64)
            )
            cols = cols[alive[cols]]
            if cols.size == 0:
                continue
            # Chunks of one batch may interleave (reverse edges arrive
            # per touched cell); a per-row sort restores the ascending
            # order the sort-free assembly below relies on.
            cols.sort()
            rows_acc.append(np.full(cols.size, row_id, dtype=np.int64))
            cols_acc.append(cols)
        if not rows_acc:
            return CSRNeighborhood(
                np.zeros(alive_ids.size + 1, dtype=np.int64),
                np.empty(0, dtype=np.int32),
            )
        rows = lookup[np.concatenate(rows_acc)]
        cols = lookup[np.concatenate(cols_acc)]
        # Each row's columns are already ascending in stream order: the
        # base CSR contributes (row-grouped, ascending) edges first, a
        # pre-base row's overlay ids all exceed its base ids (appends
        # only ever add newer ids), appended rows are overlay-only, and
        # the local remap is monotone — so the assembly only needs the
        # stable row grouping, not the full fused-key sort.
        return CSRNeighborhood.from_edges(
            rows, cols, int(alive_ids.size), cols_sorted_within_rows=True
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"IncrementalNeighborhood(n={self.n}, radius={self.radius}, "
            f"nnz={self.nnz}, cells={len(self._cells)})"
        )

"""Sublinear max-priority structure for the greedy selection loops.

Greedy-DisC is the textbook "repeatedly extract the candidate with the
largest uncovered-neighbor count, then decrement the counts of a batch
of nearby candidates" loop.  PR 1 executed every extraction as a full
``np.argmax`` over a dense score array — O(n) per selected object, which
is exactly the term that dominates selection wall-clock once the
adjacency itself is cheap (ROADMAP: selection at 50k is argmax-bound).

:class:`MaxSegmentTree` replaces that scan with a fixed-capacity
*implicit segment tree* (a complete binary tree in one flat array, no
pointers):

* ``argmax`` descends root-to-leaf in O(log n), preferring the left
  child on ties so the returned leaf is always the **lowest id among
  the maxima** — byte-compatible with ``np.argmax`` and with the legacy
  ``LazyMaxHeap`` ordering (both break ties on the smaller object id);
* ``update_many`` rewrites a batch of leaves and repairs the O(k log n)
  affected internal maxima with one vectorised ``np.maximum`` per tree
  level — no Python work per element, which is what lets the greedy
  loops push the full ``decrement_many`` result from a CSR gather into
  the structure every round.

The alternative "bucketed lazy heap" (per-count buckets with lazy
invalidation) was benchmarked during development and loses: its per-push
Python cost on the decrement batches exceeds the whole vectorised level
sweep, and its worst case degrades with the count range (clustered data
reaches degree ~1600).  The segment tree is insensitive to the score
distribution, supports negative priorities (zoom-out's
fewest-red-neighbors variant), and its capacity is fixed at build time —
matching the immutable CSR adjacency it rides on.

Scores are ``int64``; callers encode ineligibility as a sentinel lower
than every real score (the greedy paths use -1, the red pass uses
:data:`NEG_INF`).  The structure itself never interprets scores.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MaxSegmentTree", "NEG_INF"]

#: Sentinel below any realistic priority (safe to subtract from without
#: wrapping).  Callers mark permanently ineligible leaves with it.
NEG_INF = np.int64(-(2**62))


class MaxSegmentTree:
    """Fixed-capacity implicit segment tree over ``int64`` priorities.

    ``tree`` is one flat array of ``2 * size`` entries where ``size`` is
    the capacity rounded up to a power of two: node ``i`` has children
    ``2i`` / ``2i + 1``, leaves live at ``size + id``, and padding leaves
    beyond ``n`` hold :data:`NEG_INF` so they can never win an argmax.
    """

    __slots__ = ("n", "size", "tree")

    def __init__(self, scores: np.ndarray):
        scores = np.asarray(scores, dtype=np.int64)
        if scores.ndim != 1 or scores.shape[0] == 0:
            raise ValueError("scores must be a non-empty 1-d array")
        self.n = scores.shape[0]
        self.size = 1 << (self.n - 1).bit_length() if self.n > 1 else 1
        self.tree = np.full(2 * self.size, NEG_INF, dtype=np.int64)
        self.tree[self.size : self.size + self.n] = scores
        # One vectorised max per level builds all internal nodes in O(n).
        level = self.size
        while level > 1:  # repro-lint: disable=checkpoint-in-hot-loop -- O(log n) level sweep at build time
            half = level >> 1
            np.maximum(
                self.tree[level : 2 * level : 2],
                self.tree[level + 1 : 2 * level : 2],
                out=self.tree[half:level],
            )
            level = half

    # ------------------------------------------------------------------
    @property
    def max_value(self) -> int:
        """The current maximum priority (root of the tree)."""
        return int(self.tree[1])

    def value_of(self, object_id: int) -> int:
        """The stored priority of one leaf."""
        return int(self.tree[self.size + object_id])

    def argmax(self) -> int:
        """The id holding the maximum priority, lowest id on ties.

        Root-to-leaf descent preferring the left child when the two
        children tie; because leaf order equals id order, the first
        maximum — i.e. exactly ``np.argmax`` — wins.
        """
        tree = self.tree
        item = tree.item  # scalar reads as plain Python ints
        node = 1
        size = self.size
        while node < size:  # repro-lint: disable=checkpoint-in-hot-loop -- O(log n) root-to-leaf descent; callers checkpoint per pop
            left = node << 1
            node = left if item(left) >= item(left + 1) else left + 1
        return node - size

    def update_many(self, ids: np.ndarray, values: np.ndarray) -> None:
        """Set ``tree[ids] = values`` and repair ancestor maxima.

        Duplicate ids are allowed (the last write wins at the leaf and
        every internal node is recomputed from its children, so repeats
        are merely redundant).  Cost: one fancy assignment plus one
        ``np.maximum`` gather per tree level over the touched paths.
        """
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size == 0:
            return
        tree = self.tree
        tree[ids + self.size] = values
        if self.size == 1:
            return  # a single leaf is its own root
        # Leaves all share one level, so the frontier stays level-aligned
        # as it climbs: one vectorised gather/compare per level.  Nodes
        # whose maximum did not move drop out of the frontier (their
        # ancestors cannot have moved either), which usually drains the
        # climb long before the root.
        pos = (ids + self.size) >> 1
        if pos.shape[0] > 64:
            # Count updates from block deltas arrive as whole dense
            # sides (the blocked engine refreshes every member of an
            # affected side at once); those ids are near-contiguous, so
            # sibling leaves share parents and deduping the entry
            # frontier halves the gather width before the climb starts.
            pos = np.unique(pos)
        while True:  # repro-lint: disable=checkpoint-in-hot-loop -- climbs tree levels (O(log n)); callers checkpoint per update
            left = pos << 1
            new = np.maximum(tree[left], tree[left + 1])
            changed = tree[pos] != new
            if not changed.all():
                if not changed.any():
                    break
                pos = pos[changed]
                new = new[changed]
            tree[pos] = new
            if pos[0] == 1:
                break
            pos = np.unique(pos) >> 1 if pos.shape[0] > 64 else pos >> 1

    def update_one(self, object_id: int, value: int) -> None:
        """Scalar fast path of :meth:`update_many` (the lazy verify
        loop calls this tens of thousands of times per run)."""
        tree = self.tree
        item = tree.item
        pos = object_id + self.size
        tree[pos] = value
        pos >>= 1
        while pos:  # repro-lint: disable=checkpoint-in-hot-loop -- O(log n) ancestor climb; callers checkpoint per pop
            left = pos << 1
            lv, rv = item(left), item(left + 1)
            new = lv if lv >= rv else rv
            if item(pos) == new:
                break  # ancestors unchanged from here up
            tree[pos] = new
            pos >>= 1

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"MaxSegmentTree(n={self.n}, max={self.max_value})"

"""CSR neighborhood engine — the shared fast substrate for DisC.

Every DisC heuristic reduces to repeated fixed-radius neighborhood
operations over ``G_{P,r}``: "how many white neighbors does p have?",
"which neighbors of p are still white?", "decrement the counts of
everything adjacent to these objects".  Done one Python ``list`` at a
time those operations cap the reproduction at paper scale (~10k
objects); done as array primitives over a compressed-sparse-row
adjacency they run at production scale.

:class:`CSRNeighborhood` stores the fixed-radius adjacency (self
excluded, rows ascending by neighbor id) as ``int64 indptr`` /
``int32 indices`` arrays and implements the three primitives the
heuristics need — per-object neighbor counts, batched count decrements
and cover masks — as single NumPy expressions (``np.bincount``,
boolean masks, fancy slicing) instead of per-neighbor Python loops.

Builders
--------
:func:`build_csr_pairwise`
    chunked vectorised ``metric.pairwise`` over row blocks; exact for
    every metric and the default for :class:`BruteForceIndex`.
:meth:`CSRNeighborhood.from_edges` / :meth:`from_rows`
    assemble a CSR from edge arrays or per-row neighbor lists; used by
    the grid (cell-blocked candidate generation) and KD-tree
    (``query_pairs``) indexes.

The adjacency is immutable once built; algorithms carry their mutable
state (colors, counts) in separate dense arrays.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

__all__ = [
    "CSRNeighborhood",
    "build_csr_pairwise",
    "build_csr_grid",
    "group_points_by_cell",
    "pairwise_row_chunk",
]

#: Soft memory budget (bytes) for one pairwise distance block.  The
#: chunk height is derived from this, the candidate count *and* the
#: dimensionality, so high-d workloads do not blow up on the ``(chunk,
#: n, d)`` broadcast intermediates of the Lp metrics.
DEFAULT_BLOCK_BYTES = 32_000_000


def pairwise_row_chunk(
    n_cols: int, dim: int, itemsize: int = 8, budget: int = DEFAULT_BLOCK_BYTES
) -> int:
    """Rows per pairwise block so ``chunk * n_cols * dim * itemsize``
    stays within ``budget`` (always at least 1)."""
    per_row = max(1, n_cols) * max(1, dim) * itemsize
    return max(1, int(budget // per_row))


class CSRNeighborhood:
    """Fixed-radius adjacency in compressed-sparse-row form.

    ``indptr`` has length ``n + 1``; the neighbors of object ``i`` are
    ``indices[indptr[i]:indptr[i+1]]``, ascending, never containing
    ``i`` itself.  All query primitives are pure NumPy.
    """

    __slots__ = ("n", "indptr", "indices", "_row_ids")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray):
        indptr = np.asarray(indptr, dtype=np.int64)
        if indptr.ndim != 1 or indptr.shape[0] < 2:
            raise ValueError("indptr must be 1-d with at least two entries")
        if indptr[0] != 0 or int(indptr[-1]) != len(indices):
            raise ValueError("indptr must start at 0 and end at len(indices)")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        self.n = indptr.shape[0] - 1
        self.indptr = indptr
        self.indices = np.asarray(indices, dtype=np.int32)
        self._row_ids: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        n: int,
        *,
        cols_sorted_within_rows: bool = False,
    ) -> "CSRNeighborhood":
        """Assemble from parallel edge arrays (directed, self-free).

        The edges may arrive in any order; they are sorted by (row,
        col) so every row comes out ascending.  Builders that already
        emit each row's columns in ascending order (and each row
        contiguously or not at all interleaved per row) can pass
        ``cols_sorted_within_rows`` to replace the composite-key sort
        with a single stable radix pass over the rows.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if rows.shape != cols.shape:
            raise ValueError("rows and cols must have the same shape")
        if cols_sorted_within_rows:
            order = np.argsort(rows, kind="stable")
        else:
            # One radix sort on a fused (row, col) key beats np.lexsort
            # by ~2x at typical nnz.
            order = np.argsort(rows * np.int64(n) + cols, kind="stable")
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=n), out=indptr[1:])
        return cls(indptr, cols[order].astype(np.int32))

    @classmethod
    def from_rows(cls, rows: Sequence[Iterable[int]]) -> "CSRNeighborhood":
        """Assemble from per-object neighbor iterables (index = object id)."""
        arrays = [np.asarray(row, dtype=np.int64) for row in rows]
        lengths = np.fromiter(
            (a.shape[0] for a in arrays), dtype=np.int64, count=len(arrays)
        )
        indptr = np.zeros(len(arrays) + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        if arrays:
            indices = np.concatenate(arrays).astype(np.int32)
        else:
            indices = np.empty(0, dtype=np.int32)
        return cls(indptr, indices)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored (directed) adjacency entries."""
        return int(self.indptr[-1])

    @property
    def degrees(self) -> np.ndarray:
        """``|N_r(p_i)|`` for every object (self excluded)."""
        return np.diff(self.indptr)

    def neighbors(self, object_id: int) -> np.ndarray:
        """The neighbor ids of one object (ascending, int32 view)."""
        return self.indices[self.indptr[object_id] : self.indptr[object_id + 1]]

    def row_ids(self) -> np.ndarray:
        """Source id of every adjacency entry (cached ``np.repeat``).

        int32 like :attr:`indices` — the cache lives as long as the
        adjacency, so at production nnz the narrower dtype matters.
        """
        if self._row_ids is None:
            self._row_ids = np.repeat(
                np.arange(self.n, dtype=np.int32), self.degrees
            )
        return self._row_ids

    # ------------------------------------------------------------------
    # Bulk primitives
    # ------------------------------------------------------------------
    def gather(self, ids: np.ndarray) -> np.ndarray:
        """Concatenated neighbor lists of ``ids`` (duplicates preserved).

        Equivalent to ``np.concatenate([self.neighbors(i) for i in
        ids])`` without the per-id Python loop: the flat positions of
        every requested row are generated arithmetically.
        """
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size == 0:
            return np.empty(0, dtype=np.int32)
        starts = self.indptr[ids]
        lengths = self.indptr[ids + 1] - starts
        total = int(lengths.sum())
        if total == 0:
            return np.empty(0, dtype=np.int32)
        offsets = np.zeros(ids.shape[0], dtype=np.int64)
        np.cumsum(lengths[:-1], out=offsets[1:])
        positions = (
            np.arange(total, dtype=np.int64)
            - np.repeat(offsets, lengths)
            + np.repeat(starts, lengths)
        )
        return self.indices[positions]

    def neighbor_counts(self, mask: np.ndarray) -> np.ndarray:
        """Per-object count of neighbors selected by the boolean ``mask``.

        ``counts[i] = |{ q in N_r(p_i) : mask[q] }|`` — with an all-True
        mask this is :attr:`degrees`.  Greedy-DisC seeds its priority
        structure with ``neighbor_counts(white_mask)``.
        """
        mask = np.asarray(mask, dtype=bool)
        hits = mask[self.indices]
        return np.bincount(self.row_ids()[hits], minlength=self.n)

    def decrement(
        self, counts: np.ndarray, sources: np.ndarray, eligible: np.ndarray
    ) -> np.ndarray:
        """Batch count maintenance for the grey update rule.

        For every object in ``sources`` (objects that just stopped
        being white), decrement ``counts`` of each of its neighbors
        that is still ``eligible`` — once per adjacency, so an object
        adjacent to several sources loses several counts, exactly like
        the per-neighbor loop it replaces.  Returns the unique touched
        eligible ids (for priority refresh).
        """
        touched = self.gather(sources)
        if touched.size == 0:
            return np.empty(0, dtype=np.int64)
        touched = touched[eligible[touched]]
        if touched.size == 0:
            return np.empty(0, dtype=np.int64)
        counts -= np.bincount(touched, minlength=self.n)
        return np.unique(touched).astype(np.int64)

    def cover_mask(
        self, ids: np.ndarray, *, include_sources: bool = True
    ) -> np.ndarray:
        """Boolean mask of everything within one hop of ``ids``.

        With ``include_sources`` the selected objects themselves are in
        the mask — i.e. the mask of objects covered when ``ids`` are
        selected at this radius (``N+_r`` union).
        """
        ids = np.asarray(ids, dtype=np.int64)
        mask = np.zeros(self.n, dtype=bool)
        mask[self.gather(ids)] = True
        if include_sources and ids.size:
            mask[ids] = True
        return mask

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"CSRNeighborhood(n={self.n}, nnz={self.nnz})"


def build_csr_pairwise(
    points: np.ndarray,
    metric,
    radius: float,
    *,
    stats=None,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
) -> CSRNeighborhood:
    """Exact CSR adjacency via chunked vectorised ``metric.pairwise``.

    Row blocks are sized from the cardinality *and* dimensionality so
    peak memory stays near ``block_bytes`` regardless of the metric's
    broadcast intermediates.  When ``stats`` (an
    :class:`~repro.index.base.IndexStats`) is given, the evaluated
    distances are charged to ``distance_computations``.
    """
    points = np.asarray(points)
    n = points.shape[0]
    dim = points.shape[1] if points.ndim == 2 else 1
    chunk = pairwise_row_chunk(n, dim)
    rows_acc: List[np.ndarray] = []
    cols_acc: List[np.ndarray] = []
    for start in range(0, n, chunk):
        block = metric.pairwise(points[start : start + chunk], points)
        if stats is not None:
            stats.distance_computations += block.size
        local_rows, cols = np.nonzero(block <= radius)
        rows = local_rows.astype(np.int64) + start
        keep = rows != cols
        rows_acc.append(rows[keep])
        cols_acc.append(cols[keep])
    rows = np.concatenate(rows_acc) if rows_acc else np.empty(0, dtype=np.int64)
    cols = np.concatenate(cols_acc) if cols_acc else np.empty(0, dtype=np.int64)
    # Blocks are generated in ascending row order with ascending cols,
    # so only the cheap stable row pass is needed.
    return CSRNeighborhood.from_edges(rows, cols, n, cols_sorted_within_rows=True)


def group_points_by_cell(keys: np.ndarray) -> List[np.ndarray]:
    """Group row indices by identical integer cell keys.

    One index array per occupied cell; the stable sort keeps row ids
    ascending within each group.  Shared by the grid-binned CSR
    builder and :class:`~repro.index.grid.GridIndex`'s batch queries.
    """
    keys = np.asarray(keys)
    order = np.lexsort(keys.T[::-1])
    sorted_keys = keys[order]
    boundaries = (
        np.nonzero(np.any(np.diff(sorted_keys, axis=0) != 0, axis=1))[0] + 1
    )
    return np.split(order, boundaries)


def build_csr_grid(
    points: np.ndarray,
    metric,
    radius: float,
    *,
    stats=None,
) -> CSRNeighborhood:
    """Exact CSR adjacency via grid-binned candidate generation.

    For Minkowski-family metrics a ball of radius r fits inside the
    L-infinity box of half-width r, so with cells of edge ``radius``
    every neighbor of a point lies in the point's own cell or one of
    the ``3^d`` adjacent cells.  One vectorised ``metric.pairwise``
    block per occupied cell then replaces the full O(n^2) matrix —
    near-linear work at fixed density, which is what makes 50k+ object
    workloads practical.  Exact only when per-coordinate distance never
    exceeds total distance (true for all Lp, false for e.g. weighted
    metrics — callers gate on the metric family).
    """
    points = np.asarray(points, dtype=float)
    n, dim = points.shape
    cell = float(radius) if radius > 0 else 1.0
    origin = points.min(axis=0)
    keys = np.floor((points - origin) / cell).astype(np.int64)
    groups = group_points_by_cell(keys)
    buckets = {tuple(keys[g[0]]): g for g in groups}
    offsets = np.stack(
        np.meshgrid(*([np.arange(-1, 2)] * dim), indexing="ij"), axis=-1
    ).reshape(-1, dim)
    rows_acc: List[np.ndarray] = []
    cols_acc: List[np.ndarray] = []
    for key, members in buckets.items():
        key_arr = np.asarray(key)
        candidate_groups = [
            buckets.get(tuple(key_arr + off))
            for off in offsets
        ]
        candidates = np.sort(
            np.concatenate([g for g in candidate_groups if g is not None])
        )
        # Dense cells (clustered data) can hold thousands of members
        # against tens of thousands of candidates; honour the block
        # budget by chunking members like every other pairwise path.
        chunk = pairwise_row_chunk(candidates.size, dim)
        for start in range(0, members.size, chunk):
            sub = members[start : start + chunk]
            block = metric.pairwise(points[sub], points[candidates])
            if stats is not None:
                stats.distance_computations += block.size
            local_rows, local_cols = np.nonzero(block <= radius)
            rows = sub[local_rows]
            cols = candidates[local_cols]
            keep = rows != cols
            rows_acc.append(rows[keep])
            cols_acc.append(cols[keep])
    rows = np.concatenate(rows_acc) if rows_acc else np.empty(0, dtype=np.int64)
    cols = np.concatenate(cols_acc) if cols_acc else np.empty(0, dtype=np.int64)
    # Each object's edges all come from its own cell's block, where its
    # columns are ascending (candidates sorted above) — the stable row
    # pass restores global CSR order.
    return CSRNeighborhood.from_edges(rows, cols, n, cols_sorted_within_rows=True)

"""CSR neighborhood engine — the shared fast substrate for DisC.

Every DisC heuristic reduces to repeated fixed-radius neighborhood
operations over ``G_{P,r}``: "how many white neighbors does p have?",
"which neighbors of p are still white?", "decrement the counts of
everything adjacent to these objects".  Done one Python ``list`` at a
time those operations cap the reproduction at paper scale (~10k
objects); done as array primitives over a compressed-sparse-row
adjacency they run at production scale.

:class:`CSRNeighborhood` stores the fixed-radius adjacency (self
excluded, rows ascending by neighbor id) as ``int64 indptr`` /
``int32 indices`` arrays and implements the three primitives the
heuristics need — per-object neighbor counts, batched count decrements
and cover masks — as single NumPy expressions (``np.bincount``,
boolean masks, fancy slicing) instead of per-neighbor Python loops.

Builders
--------
:func:`build_csr_pairwise`
    chunked vectorised ``metric.pairwise`` over row blocks; exact for
    every metric and the default for :class:`BruteForceIndex`.
:meth:`CSRNeighborhood.from_edges` / :meth:`from_rows`
    assemble a CSR from edge arrays or per-row neighbor lists; used by
    the grid (cell-blocked candidate generation) and KD-tree
    (``query_pairs``) indexes.

The adjacency is immutable once built; algorithms carry their mutable
state (colors, counts) in separate dense arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.cancellation import current_token
from repro.validation import validate_radius

__all__ = [
    "CSRNeighborhood",
    "build_csr_pairwise",
    "build_csr_grid",
    "group_points_by_cell",
    "pairwise_row_chunk",
]

#: Soft memory budget (bytes) for one pairwise distance block.  The
#: chunk height is derived from this, the candidate count *and* the
#: dimensionality, so high-d workloads do not blow up on the ``(chunk,
#: n, d)`` broadcast intermediates of the Lp metrics.
DEFAULT_BLOCK_BYTES = 32_000_000


def pairwise_row_chunk(
    n_cols: int, dim: int, itemsize: int = 8, budget: int = DEFAULT_BLOCK_BYTES
) -> int:
    """Rows per pairwise block so ``chunk * n_cols * dim * itemsize``
    stays within ``budget`` (always at least 1)."""
    per_row = max(1, n_cols) * max(1, dim) * itemsize
    return max(1, int(budget // per_row))


def _flat_row_positions(indptr: np.ndarray, ids: np.ndarray, dtype=np.int64):
    """Flat positions of every entry of the requested CSR rows.

    The fused start/offset arithmetic shared by the gather paths (one
    ``np.repeat`` pass over the full length, no per-id Python loop):
    returns ``(positions, lengths)`` where ``positions`` indexes the
    layout's value array and ``lengths`` is each requested row's size.
    ``dtype`` narrows the position array when the caller knows the
    total entry count fits (int32 halves the traffic at large nnz).
    """
    starts = indptr[ids]
    lengths = indptr[ids + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=dtype), lengths
    offsets = np.zeros(ids.shape[0], dtype=np.int64)
    np.cumsum(lengths[:-1], out=offsets[1:])
    positions = np.arange(total, dtype=dtype)
    positions += np.repeat((starts - offsets).astype(dtype), lengths)
    return positions, lengths


class CSRNeighborhood:
    """Fixed-radius adjacency in compressed-sparse-row form.

    ``indptr`` has length ``n + 1``; the neighbors of object ``i`` are
    ``indices[indptr[i]:indptr[i+1]]``, ascending, never containing
    ``i`` itself.  All query primitives are pure NumPy.
    """

    __slots__ = ("n", "indptr", "indices", "_row_ids")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray):
        indptr = np.asarray(indptr, dtype=np.int64)
        # A single-entry indptr is the valid empty adjacency (n = 0):
        # builders return it for empty point sets so service callers
        # need no special-casing.
        if indptr.ndim != 1 or indptr.shape[0] < 1:
            raise ValueError("indptr must be 1-d with at least one entry")
        if indptr[0] != 0 or int(indptr[-1]) != len(indices):
            raise ValueError("indptr must start at 0 and end at len(indices)")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        self.n = indptr.shape[0] - 1
        self.indptr = indptr
        self.indices = np.asarray(indices, dtype=np.int32)
        self._row_ids: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        n: int,
        *,
        cols_sorted_within_rows: bool = False,
    ) -> "CSRNeighborhood":
        """Assemble from parallel edge arrays (directed, self-free).

        The edges may arrive in any order; they are sorted by (row,
        col) so every row comes out ascending.  Builders that already
        emit each row's columns in ascending order (and each row
        contiguously or not at all interleaved per row) can pass
        ``cols_sorted_within_rows`` to replace the composite-key sort
        with a single stable radix pass over the rows.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if rows.shape != cols.shape:
            raise ValueError("rows and cols must have the same shape")
        if cols_sorted_within_rows:
            order = np.argsort(rows, kind="stable")
        else:
            # One radix sort on a fused (row, col) key beats np.lexsort
            # by ~2x at typical nnz.
            order = np.argsort(rows * np.int64(n) + cols, kind="stable")
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=n), out=indptr[1:])
        return cls(indptr, cols[order].astype(np.int32))

    @classmethod
    def from_rows(cls, rows: Sequence[Iterable[int]]) -> "CSRNeighborhood":
        """Assemble from per-object neighbor iterables (index = object id)."""
        arrays = [np.asarray(row, dtype=np.int64) for row in rows]
        lengths = np.fromiter(
            (a.shape[0] for a in arrays), dtype=np.int64, count=len(arrays)
        )
        indptr = np.zeros(len(arrays) + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        if arrays:
            indices = np.concatenate(arrays).astype(np.int32)
        else:
            indices = np.empty(0, dtype=np.int32)
        return cls(indptr, indices)

    @classmethod
    def empty(cls) -> "CSRNeighborhood":
        """The n = 0 adjacency (what every builder returns for no points)."""
        return cls(np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int32))

    # ------------------------------------------------------------------
    # Shared-memory transport
    # ------------------------------------------------------------------
    def to_shared_arrays(self) -> dict:
        """Flat ndarray views for zero-copy transport (shm segments).

        The counterpart of :meth:`from_shared_arrays`; both ends agree
        on the key names, dtypes are preserved by the segment layout.
        """
        return {"indptr": self.indptr, "indices": self.indices}

    @classmethod
    def from_shared_arrays(cls, arrays: dict) -> "CSRNeighborhood":
        """Rebuild from :meth:`to_shared_arrays` output.

        The arrays may be read-only views over a shared-memory segment;
        the constructor never copies matching-dtype inputs, so workers
        attach zero-copy.
        """
        return cls(arrays["indptr"], arrays["indices"])

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored (directed) adjacency entries."""
        return int(self.indptr[-1])

    @property
    def nbytes(self) -> int:
        """Resident footprint of the adjacency arrays.

        The cache hook read by :class:`~repro.engines.cache.
        AdjacencyCache` when a byte budget bounds how many radii a
        session keeps materialised; includes the lazily-built row-id
        companion when present.
        """
        total = self.indptr.nbytes + self.indices.nbytes
        if self._row_ids is not None:
            total += self._row_ids.nbytes
        return int(total)

    @property
    def degrees(self) -> np.ndarray:
        """``|N_r(p_i)|`` for every object (self excluded)."""
        return np.diff(self.indptr)

    def neighbors(self, object_id: int) -> np.ndarray:
        """The neighbor ids of one object (ascending, int32 view)."""
        return self.indices[self.indptr[object_id] : self.indptr[object_id + 1]]

    def row_ids(self) -> np.ndarray:
        """Source id of every adjacency entry (cached ``np.repeat``).

        int32 like :attr:`indices` — the cache lives as long as the
        adjacency, so at production nnz the narrower dtype matters.
        """
        if self._row_ids is None:
            self._row_ids = np.repeat(
                np.arange(self.n, dtype=np.int32), self.degrees
            )
        return self._row_ids

    # ------------------------------------------------------------------
    # Bulk primitives
    # ------------------------------------------------------------------
    def gather(self, ids: np.ndarray) -> np.ndarray:
        """Concatenated neighbor lists of ``ids`` (duplicates preserved).

        Equivalent to ``np.concatenate([self.neighbors(i) for i in
        ids])`` without the per-id Python loop: the flat positions of
        every requested row are generated arithmetically.
        """
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size == 0:
            return np.empty(0, dtype=np.int32)
        dtype = np.int32 if self.nnz <= np.iinfo(np.int32).max else np.int64
        positions, _ = _flat_row_positions(self.indptr, ids, dtype=dtype)
        if positions.size == 0:
            return np.empty(0, dtype=np.int32)
        return self.indices[positions]

    def neighbor_counts(self, mask: np.ndarray) -> np.ndarray:
        """Per-object count of neighbors selected by the boolean ``mask``.

        ``counts[i] = |{ q in N_r(p_i) : mask[q] }|`` — with an all-True
        mask this is :attr:`degrees`.  Greedy-DisC seeds its priority
        structure with ``neighbor_counts(white_mask)``.
        """
        mask = np.asarray(mask, dtype=bool)
        hits = mask[self.indices]
        return np.bincount(self.row_ids()[hits], minlength=self.n)

    def decrement(
        self, counts: np.ndarray, sources: np.ndarray, eligible: np.ndarray
    ) -> np.ndarray:
        """Batch count maintenance for the grey update rule.

        For every object in ``sources`` (objects that just stopped
        being white), decrement ``counts`` of each of its neighbors —
        once per adjacency, so an object adjacent to several sources
        loses several counts, exactly like the per-neighbor loop it
        replaces.  Returns the unique touched ids filtered to
        ``eligible`` (for priority refresh).

        Ineligible neighbors are decremented too — filtering them out
        of the full gather would cost more than the whole decrement —
        which is sound because every caller treats the counts of
        objects that left the candidate pool as garbage: a grey/black
        object can never become a candidate again, so its count is
        never read.
        """
        touched = self.gather(sources)
        if touched.size == 0:
            return np.empty(0, dtype=np.int64)
        # Two equivalent ways to apply the same per-id decrements; pick
        # by batch size so the cost is O(k log k) for small updates and
        # O(n + k) (no sort) for the huge clustered-cell batches.
        if touched.size < self.n // 4:
            uniq, hits = np.unique(touched, return_counts=True)
            uniq = uniq.astype(np.int64)
            counts[uniq] -= hits
        else:
            delta = np.bincount(touched, minlength=self.n)
            counts -= delta
            uniq = np.flatnonzero(delta)
        return uniq[eligible[uniq]]

    def cover_mask(
        self, ids: np.ndarray, *, include_sources: bool = True
    ) -> np.ndarray:
        """Boolean mask of everything within one hop of ``ids``.

        With ``include_sources`` the selected objects themselves are in
        the mask — i.e. the mask of objects covered when ``ids`` are
        selected at this radius (``N+_r`` union).
        """
        ids = np.asarray(ids, dtype=np.int64)
        mask = np.zeros(self.n, dtype=bool)
        mask[self.gather(ids)] = True
        if include_sources and ids.size:
            mask[ids] = True
        return mask

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"CSRNeighborhood(n={self.n}, nnz={self.nnz})"


def build_csr_pairwise(
    points: np.ndarray,
    metric,
    radius: float,
    *,
    stats=None,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
) -> CSRNeighborhood:
    """Exact CSR adjacency via chunked vectorised ``metric.pairwise``.

    Row blocks are sized from the cardinality *and* dimensionality so
    peak memory stays near ``block_bytes`` regardless of the metric's
    broadcast intermediates.  When ``stats`` (an
    :class:`~repro.index.base.IndexStats`) is given, the evaluated
    distances are charged to ``distance_computations``.
    """
    radius = validate_radius(radius)
    points = np.asarray(points)
    n = points.shape[0]
    if n == 0:
        return CSRNeighborhood.empty()
    dim = points.shape[1] if points.ndim == 2 else 1
    chunk = pairwise_row_chunk(n, dim)
    rows_acc: List[np.ndarray] = []
    cols_acc: List[np.ndarray] = []
    token = current_token()
    for start in range(0, n, chunk):
        # Adjacency builds dominate cold-cache request latency, so the
        # chunk loop is a cancellation checkpoint: a deadline expiring
        # mid-build frees the worker instead of finishing a matrix
        # nobody will read.
        if token is not None:
            token.checkpoint()
        block = metric.pairwise(points[start : start + chunk], points)
        if stats is not None:
            stats.distance_computations += block.size
        local_rows, cols = np.nonzero(block <= radius)
        rows = local_rows.astype(np.int64) + start
        keep = rows != cols
        rows_acc.append(rows[keep])
        cols_acc.append(cols[keep])
    rows = np.concatenate(rows_acc) if rows_acc else np.empty(0, dtype=np.int64)
    cols = np.concatenate(cols_acc) if cols_acc else np.empty(0, dtype=np.int64)
    # Blocks are generated in ascending row order with ascending cols,
    # so only the cheap stable row pass is needed.
    return CSRNeighborhood.from_edges(rows, cols, n, cols_sorted_within_rows=True)


def group_points_by_cell(keys: np.ndarray) -> List[np.ndarray]:
    """Group row indices by identical integer cell keys.

    One index array per occupied cell; the stable sort keeps row ids
    ascending within each group.  Shared by the grid-binned CSR
    builder and :class:`~repro.index.grid.GridIndex`'s batch queries.
    """
    keys = np.asarray(keys)
    order = np.lexsort(keys.T[::-1])
    sorted_keys = keys[order]
    boundaries = (
        np.nonzero(np.any(np.diff(sorted_keys, axis=0) != 0, axis=1))[0] + 1
    )
    return np.split(order, boundaries)


#: Relative safety margin applied to the analytic cell-pair distance
#: bounds, covering the FP noise in key assignment and norm evaluation.
#: Pairs near the margin fall back to explicit distance computation,
#: never the other way around, so the margin only costs work.
_BOUND_EPS = 1e-9

#: Offset classifications for :func:`_classify_offsets`.
_PAIR_AUTO, _PAIR_COMPUTE = 0, 1


def _grid_resolution(dim: int) -> int:
    """Cells per radius for the pruned grid build.

    Sub-radius cells are what give the min/max cell-pair bounds their
    discriminating power (at ``cell == radius`` no pair is ever fully
    inside the radius under L2); the offset count grows as
    ``(2k+1)^d``, so the resolution backs off with dimensionality.
    """
    if dim <= 2:
        return 4
    if dim == 3:
        return 2
    return 1


def _classify_offsets(metric, radius: float, cell: float, dim: int, resolution: int):
    """Enumerate candidate cell offsets with their distance-bound class.

    For a pair of cells whose integer keys differ by ``delta`` the
    per-coordinate separation of any two points lies in
    ``[max(0, |delta| - 1), |delta| + 1] * cell`` (strictly, but the
    closed interval is the safe direction), so the metric applied to
    those corner vectors brackets every point-pair distance:

    * lower bound > radius — the pair holds no edges: **skipped**;
    * upper bound <= radius — every pair is an edge: **auto** (edges
      emitted without computing a single distance);
    * otherwise — **compute** (vectorised pairwise, as before).

    Offsets are bounded per-dimension by ``resolution`` cells: an Lp
    neighbor within ``radius`` moves at most ``radius`` along any
    coordinate, i.e. at most ``resolution`` key steps (the same
    soundness argument as the classic 3^d enumeration at
    ``cell == radius``).
    """
    span = np.arange(-resolution, resolution + 1)
    offsets = np.stack(
        np.meshgrid(*([span] * dim), indexing="ij"), axis=-1
    ).reshape(-1, dim)
    zeros = np.zeros(dim)
    kept: List[np.ndarray] = []
    classes: List[int] = []
    for off in offsets:
        magnitude = np.abs(off)
        lower = metric.distance(np.maximum(0, magnitude - 1) * cell, zeros)
        if lower * (1.0 - _BOUND_EPS) > radius:
            continue
        upper = metric.distance((magnitude + 1) * cell, zeros)
        kept.append(off)
        classes.append(
            _PAIR_AUTO if upper * (1.0 + _BOUND_EPS) <= radius else _PAIR_COMPUTE
        )
    return np.asarray(kept, dtype=np.int64), np.asarray(classes, dtype=np.int64)


def _cell_pair_table(ukeys: np.ndarray, offsets: np.ndarray, classes: np.ndarray):
    """All occupied (source cell, neighbor cell) pairs per kept offset.

    Returns ``(src, dst, cls)`` parallel arrays of cell indices sorted
    by source cell.  Cell keys are fused into one scalar per cell so
    each offset resolves through a single vectorised ``searchsorted``;
    when the key ranges would overflow the int64 fusion (extreme spans
    in high dimensions) a dict lookup covers the same ground.
    """
    m, dim = ukeys.shape
    kmin = ukeys.min(axis=0)
    # Digit headroom must cover the largest offset magnitude on both
    # sides, else out-of-range digits alias neighboring cells when a
    # dimension's key span is small (e.g. thin-strip data).
    reach = int(np.abs(offsets).max()) if offsets.size else 1
    shifted = ukeys - kmin + reach + 1
    spans = shifted.max(axis=0) + 2 * (reach + 1)
    src_acc: List[np.ndarray] = []
    dst_acc: List[np.ndarray] = []
    cls_acc: List[np.ndarray] = []
    if np.log2(spans.astype(float)).sum() <= 62:

        def fuse(keys: np.ndarray) -> np.ndarray:
            out = np.zeros(keys.shape[0], dtype=np.int64)
            for j in range(dim):  # repro-lint: disable=checkpoint-in-hot-loop -- loops over key dimensionality, not data
                out = out * spans[j] + (keys[:, j] - kmin[j] + reach + 1)
            return out

        fused = fuse(ukeys)  # ascending: ukeys arrive in lex order
        for off, cls in zip(offsets, classes):
            target = fuse(ukeys + off)
            pos = np.searchsorted(fused, target)
            pos_clipped = np.minimum(pos, m - 1)
            hit = fused[pos_clipped] == target
            src = np.flatnonzero(hit)
            src_acc.append(src)
            dst_acc.append(pos_clipped[hit])
            cls_acc.append(np.full(src.size, cls, dtype=np.int64))
    else:  # pragma: no cover - extreme key ranges only
        lookup = {tuple(key): i for i, key in enumerate(ukeys)}
        for off, cls in zip(offsets, classes):
            pairs = [
                (i, lookup[tuple(key)])
                for i, key in enumerate(ukeys + off)
                if tuple(key) in lookup
            ]
            src = np.asarray([p[0] for p in pairs], dtype=np.int64)
            dst = np.asarray([p[1] for p in pairs], dtype=np.int64)
            src_acc.append(src)
            dst_acc.append(dst)
            cls_acc.append(np.full(src.size, cls, dtype=np.int64))
    src = np.concatenate(src_acc)
    dst = np.concatenate(dst_acc)
    cls = np.concatenate(cls_acc)
    order = np.argsort(src, kind="stable")
    return src[order], dst[order], cls[order]


@dataclass
class _GridPlan:
    """Everything the grid builders share before edge emission.

    The plan is the product of binning, the sparse-occupancy fallback
    and the cell-pair classification; both the flat CSR builder and the
    blocked builder (:mod:`repro.graph.blocked`) consume one plan, so
    their notion of "provably dense cell pair" is identical by
    construction.
    """

    n: int
    dim: int
    cell: float
    resolution: int
    groups: List[np.ndarray]
    sizes: np.ndarray
    pair_src: np.ndarray
    pair_dst: np.ndarray
    pair_cls: np.ndarray
    cell_ptr: np.ndarray

    @property
    def m(self) -> int:
        """Occupied cell count."""
        return len(self.groups)

    def pair_products(self) -> np.ndarray:
        """Candidate-pair count of every directed cell pair (self pairs
        counted as ``s * (s - 1)``: no self loops)."""
        products = self.sizes[self.pair_src] * self.sizes[self.pair_dst]
        self_pairs = self.pair_src == self.pair_dst
        products[self_pairs] -= self.sizes[self.pair_src[self_pairs]]
        return products


def _plan_grid(
    points: np.ndarray, metric, radius: float, resolution: Optional[int]
) -> _GridPlan:
    """Bin points, pick the effective resolution and classify cell pairs."""
    n, dim = points.shape
    if resolution is None:
        resolution = _grid_resolution(dim) if radius > 0 else 1
    if resolution < 1:
        raise ValueError(f"resolution must be >= 1, got {resolution}")
    cell = float(radius) / resolution if radius > 0 else 1.0
    origin = points.min(axis=0)
    keys = np.floor((points - origin) / cell).astype(np.int64)
    groups = group_points_by_cell(keys)
    if resolution > 1 and len(groups) > n // 4:
        # Sparse occupancy: mostly-singleton cells mean the auto class
        # almost never fires while the finer grid multiplies the cell
        # loop; fall back to radius-sized cells.
        resolution = 1
        cell = float(radius) if radius > 0 else 1.0
        keys = np.floor((points - origin) / cell).astype(np.int64)
        groups = group_points_by_cell(keys)

    m = len(groups)
    sizes = np.fromiter((g.size for g in groups), dtype=np.int64, count=m)
    ukeys = keys[np.fromiter((g[0] for g in groups), dtype=np.int64, count=m)]
    offsets, classes = _classify_offsets(metric, radius, cell, dim, resolution)
    pair_src, pair_dst, pair_cls = _cell_pair_table(ukeys, offsets, classes)
    cell_ptr = np.searchsorted(pair_src, np.arange(m + 1))
    return _GridPlan(
        n=n, dim=dim, cell=cell, resolution=resolution, groups=groups,
        sizes=sizes, pair_src=pair_src, pair_dst=pair_dst, pair_cls=pair_cls,
        cell_ptr=cell_ptr,
    )


def _assemble_grid_csr(
    points: np.ndarray,
    metric,
    radius: float,
    plan: _GridPlan,
    *,
    stats=None,
    pair_keep: Optional[np.ndarray] = None,
) -> CSRNeighborhood:
    """Emit the (kept) cell-pair edges of a plan as a CSR adjacency.

    ``pair_keep`` (boolean over the directed pair table) lets the
    blocked builder route provably-dense pairs around the edge list;
    ``None`` keeps everything (the flat build).  Every object's row is
    produced in full (ascending columns) by its own cell's block, so
    the CSR is assembled by a counting layout — no global edge sort.
    Emitted blocks hold (members, their per-member neighbor counts,
    concatenated int32 columns).
    """
    n, dim = plan.n, plan.dim
    groups, sizes = plan.groups, plan.sizes
    pair_dst, pair_cls, cell_ptr = plan.pair_dst, plan.pair_cls, plan.cell_ptr
    degrees = np.zeros(n, dtype=np.int64)
    blocks: List[tuple] = []

    def emit(members: np.ndarray, lengths: np.ndarray, cols: np.ndarray) -> None:
        degrees[members] = lengths
        blocks.append((members, lengths, cols))

    token = current_token()
    for i in range(plan.m):
        # One cell is bounded work; checking every 64 keeps the
        # cancellation latency tiny without touching the profile.
        if token is not None and i % 64 == 0:
            token.checkpoint()
        lo, hi = cell_ptr[i], cell_ptr[i + 1]
        members = groups[i]
        dsts = pair_dst[lo:hi]
        cls = pair_cls[lo:hi]
        if pair_keep is not None:
            keep_mask = pair_keep[lo:hi]
            dsts = dsts[keep_mask]
            cls = cls[keep_mask]
        if dsts.size == 0:
            continue  # all pairs routed to dense blocks: empty rows
        # Whether the cell's own (i, i) pair survived — when it is
        # routed to a clique block the members are absent from their
        # own candidate list and need no self masking.
        has_self = bool((dsts == i).any())
        candidates = np.concatenate([groups[j] for j in dsts])
        auto_mask = np.repeat(cls == _PAIR_AUTO, sizes[dsts])
        order = np.argsort(candidates)
        candidates = candidates[order]
        auto_mask = auto_mask[order]
        candidates32 = candidates.astype(np.int32)

        compute_idx = np.flatnonzero(~auto_mask)
        if compute_idx.size == 0:
            # Every candidate is provably within the radius: the edge
            # list is pure index arithmetic, no distances at all.  Only
            # each member's self entry needs masking out.
            k = candidates.size
            cols = np.tile(candidates32, members.size)
            if has_self:
                keep = np.ones(members.size * k, dtype=bool)
                self_pos = np.searchsorted(candidates, members)
                keep[self_pos + np.arange(members.size) * k] = False
                emit(members, np.full(members.size, k - 1), cols[keep])
            else:
                emit(members, np.full(members.size, k), cols)
            continue

        # Dense cells (clustered data) can hold thousands of members
        # against tens of thousands of candidates; honour the block
        # budget by chunking members like every other pairwise path.
        compute_points = points[candidates[compute_idx]]
        chunk = pairwise_row_chunk(candidates.size, dim)
        for start in range(0, members.size, chunk):
            sub = members[start : start + chunk]
            hits = np.empty((sub.size, candidates.size), dtype=bool)
            hits[:] = auto_mask  # auto columns are edges unconditionally
            block = metric.pairwise(points[sub], compute_points)
            if stats is not None:
                stats.distance_computations += block.size
            hits[:, compute_idx] = block <= radius
            if has_self:
                # Self is always a hit (distance 0 or an auto column).
                hits[np.arange(sub.size), np.searchsorted(candidates, sub)] = False
            local_rows, local_cols = np.nonzero(hits)
            emit(
                sub,
                np.bincount(local_rows, minlength=sub.size),
                candidates32[local_cols],
            )

    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    indices = np.empty(int(indptr[-1]), dtype=np.int32)
    for members, lengths, cols in blocks:
        if cols.size == 0:
            continue
        starts = np.zeros(members.size, dtype=np.int64)
        np.cumsum(lengths[:-1], out=starts[1:])
        positions = (
            np.arange(cols.size, dtype=np.int64)
            - np.repeat(starts, lengths)
            + np.repeat(indptr[members], lengths)
        )
        indices[positions] = cols
    return CSRNeighborhood(indptr, indices)


def build_csr_grid(
    points: np.ndarray,
    metric,
    radius: float,
    *,
    stats=None,
    resolution: Optional[int] = None,
) -> CSRNeighborhood:
    """Exact CSR adjacency via grid binning with cell-pair pruning.

    Points are bucketed into cells of edge ``radius / resolution``; for
    every occupied cell pair within reach the analytic min/max distance
    bounds of :func:`_classify_offsets` decide whether the pair is
    skipped outright, emits all its member pairs as edges *without
    computing any distance* (the pair is provably inside the radius),
    or falls back to one vectorised ``metric.pairwise`` block.  On
    clustered data the dense cells sit deep inside each other's radius,
    so the quadratic pairwise blocks that previously dominated the
    build collapse into plain index arithmetic; distance computations
    are reserved for the geometric boundary shell.

    The adjacency is identical to :func:`build_csr_pairwise` for every
    Minkowski-family metric (per-coordinate distance never exceeds the
    total — callers gate on the metric family).  ``resolution`` (cells
    per radius) defaults per dimensionality, backing off to the classic
    3^d enumeration when sub-radius cells would not pay: past 3-d, or
    when occupancy is too sparse for auto pairs to matter.

    An empty point set returns the empty adjacency; see
    :func:`repro.graph.blocked.build_blocked_grid` for the variant that
    keeps the provably dense cell pairs *implicit* instead of expanding
    them into edges.
    """
    radius = validate_radius(radius)
    points = np.asarray(points, dtype=float)
    if points.shape[0] == 0:
        return CSRNeighborhood.empty()
    plan = _plan_grid(points, metric, radius, resolution)
    return _assemble_grid_csr(points, metric, radius, plan, stats=stats)

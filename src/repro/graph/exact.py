"""Exact solvers for small instances (tests and Observation 3).

Finding a minimum independent dominating set is NP-hard (Observation 1 /
[Garey & Johnson]); these branch-and-bound solvers are exponential but
fine for the ≤ 20-vertex instances the test suite uses to sandwich the
heuristics between the optimum and the Theorem 1 bound.

Both solvers branch on the lowest-numbered undominated vertex v: any
(independent) dominating set must contain some member of N+[v], so the
search tree has branching factor ≤ Δ + 1.  Bitmask sets keep the state
cheap.
"""

from __future__ import annotations

from typing import List, Optional

import networkx as nx

__all__ = ["minimum_independent_dominating_set", "minimum_dominating_set"]

_MAX_EXACT_NODES = 40


def _closed_neighborhood_masks(graph: nx.Graph) -> List[int]:
    nodes = sorted(graph.nodes())
    if nodes != list(range(len(nodes))):
        raise ValueError("exact solvers expect nodes labelled 0..n-1")
    masks = []
    for node in nodes:
        mask = 1 << node
        for neighbor in graph.neighbors(node):
            mask |= 1 << neighbor
        masks.append(mask)
    return masks


def _solve(
    graph: nx.Graph, require_independent: bool
) -> List[int]:
    n = graph.number_of_nodes()
    if n == 0:
        return []
    if n > _MAX_EXACT_NODES:
        raise ValueError(
            f"exact solver limited to {_MAX_EXACT_NODES} nodes, got {n}"
        )
    closed = _closed_neighborhood_masks(graph)
    full = (1 << n) - 1
    best: List[Optional[List[int]]] = [None]

    def lowest_unset_bit(mask: int) -> int:
        return (~mask & (mask + 1)).bit_length() - 1

    def recurse(chosen: List[int], dominated: int, blocked: int) -> None:
        if best[0] is not None and len(chosen) >= len(best[0]):
            return  # cannot improve
        if dominated == full:
            best[0] = list(chosen)
            return
        v = lowest_unset_bit(dominated)
        for u in range(n):  # repro-lint: disable=checkpoint-in-hot-loop -- exact oracle capped at 40 nodes (test instrument)
            if not (closed[v] >> u) & 1:
                continue
            if require_independent and (blocked >> u) & 1:
                continue
            chosen.append(u)
            recurse(
                chosen,
                dominated | closed[u],
                blocked | (closed[u] if require_independent else 0),
            )
            chosen.pop()

    recurse([], 0, 0)
    assert best[0] is not None, "a dominating set always exists (take all vertices)"
    return sorted(best[0])


def minimum_independent_dominating_set(graph: nx.Graph) -> List[int]:
    """A minimum-cardinality independent dominating set (exact).

    This is the optimum |S*| of Definition 2 for the corresponding
    point set.
    """
    return _solve(graph, require_independent=True)


def minimum_dominating_set(graph: nx.Graph) -> List[int]:
    """A minimum-cardinality dominating set (exact; independence not
    required).  Observation 3: this can be strictly smaller than the
    minimum *independent* dominating set."""
    return _solve(graph, require_independent=False)

"""Graph-theoretic view of DisC diversity (Section 2.2) and exact
solvers for small instances."""

from repro.graph.blocked import (
    BlockedNeighborhood,
    build_blocked_grid,
    build_grid_auto,
)
from repro.graph.csr import CSRNeighborhood, build_csr_grid, build_csr_pairwise
from repro.graph.incremental import IncrementalNeighborhood
from repro.graph.priority import MaxSegmentTree
from repro.graph.build import (
    build_neighborhood_graph,
    is_dominating_set,
    is_independent_dominating_set,
    is_independent_set,
    max_degree,
)
from repro.graph.exact import (
    minimum_dominating_set,
    minimum_independent_dominating_set,
)

__all__ = [
    "BlockedNeighborhood",
    "CSRNeighborhood",
    "IncrementalNeighborhood",
    "MaxSegmentTree",
    "build_blocked_grid",
    "build_csr_grid",
    "build_csr_pairwise",
    "build_grid_auto",
    "build_neighborhood_graph",
    "is_independent_set",
    "is_dominating_set",
    "is_independent_dominating_set",
    "max_degree",
    "minimum_independent_dominating_set",
    "minimum_dominating_set",
]
